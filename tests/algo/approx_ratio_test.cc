#include <cmath>

#include "algo/ball_cover.h"
#include "algo/exact_dp.h"
#include "algo/greedy_cover.h"
#include "data/generators/census.h"
#include "data/generators/clustered.h"
#include "data/generators/uniform.h"
#include "gtest/gtest.h"
#include "util/random.h"

/// \file
/// The approximation-guarantee property suite: on every instance small
/// enough for the exact DP, the measured ratio of each approximation
/// algorithm must respect its theorem's bound:
///   Theorem 4.1 (greedy_cover): cost <= 3k(1 + ln 2k) * OPT,
///   Theorem 4.2 (ball_cover):   cost <= 6k(1 + ln m)  * OPT.
/// (When OPT == 0 the algorithms must also pay 0: zero-diameter groups
/// have ratio 0 in the greedy cover, so they are picked first.)

namespace kanon {
namespace {

struct RatioCase {
  uint64_t seed;
  uint32_t n;
  uint32_t m;
  uint32_t alphabet;
  size_t k;
  bool clustered;
};

class RatioPropertyTest : public ::testing::TestWithParam<RatioCase> {
 protected:
  Table MakeTable(const RatioCase& c) const {
    Rng rng(c.seed);
    if (c.clustered) {
      ClusteredTableOptions opt;
      opt.num_rows = c.n;
      opt.num_columns = c.m;
      opt.alphabet = c.alphabet;
      opt.num_clusters = std::max<uint32_t>(2, c.n / 4);
      opt.noise_flips = 1;
      return ClusteredTable(opt, &rng);
    }
    UniformTableOptions opt;
    opt.num_rows = c.n;
    opt.num_columns = c.m;
    opt.alphabet = c.alphabet;
    return UniformTable(opt, &rng);
  }
};

TEST_P(RatioPropertyTest, GreedyCoverWithinTheorem41Bound) {
  const RatioCase c = GetParam();
  const Table t = MakeTable(c);
  ExactDpAnonymizer exact;
  GreedyCoverAnonymizer greedy;
  const size_t opt = exact.Run(t, c.k).cost;
  const size_t cost = ValidateResult(t, c.k, greedy.Run(t, c.k)).cost;
  if (opt == 0) {
    EXPECT_EQ(cost, 0u);
  } else {
    const double bound =
        3.0 * static_cast<double>(c.k) *
        (1.0 + std::log(2.0 * static_cast<double>(c.k)));
    EXPECT_LE(static_cast<double>(cost),
              bound * static_cast<double>(opt));
  }
}

TEST_P(RatioPropertyTest, BallCoverWithinTheorem42Bound) {
  const RatioCase c = GetParam();
  const Table t = MakeTable(c);
  ExactDpAnonymizer exact;
  BallCoverAnonymizer ball;
  const size_t opt = exact.Run(t, c.k).cost;
  const size_t cost = ValidateResult(t, c.k, ball.Run(t, c.k)).cost;
  if (opt == 0) {
    EXPECT_EQ(cost, 0u);
  } else {
    const double bound = 6.0 * static_cast<double>(c.k) *
                         (1.0 + std::log(static_cast<double>(c.m)));
    EXPECT_LE(static_cast<double>(cost),
              bound * static_cast<double>(opt));
  }
}

TEST_P(RatioPropertyTest, BothWeightModesWithinBound) {
  const RatioCase c = GetParam();
  const Table t = MakeTable(c);
  ExactDpAnonymizer exact;
  const size_t opt = exact.Run(t, c.k).cost;
  const double bound = 6.0 * static_cast<double>(c.k) *
                       (1.0 + std::log(static_cast<double>(c.m)));
  for (const BallWeightMode mode :
       {BallWeightMode::kExactDiameter, BallWeightMode::kTwiceRadius}) {
    BallCoverOptions opt_ball;
    opt_ball.weight_mode = mode;
    BallCoverAnonymizer ball(opt_ball);
    const size_t cost = ValidateResult(t, c.k, ball.Run(t, c.k)).cost;
    if (opt == 0) {
      EXPECT_EQ(cost, 0u);
    } else {
      EXPECT_LE(static_cast<double>(cost),
                bound * static_cast<double>(opt));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RatioPropertyTest,
    ::testing::Values(
        RatioCase{1, 8, 4, 2, 2, false}, RatioCase{2, 8, 4, 3, 3, false},
        RatioCase{3, 10, 5, 3, 2, false}, RatioCase{4, 10, 5, 2, 3, false},
        RatioCase{5, 12, 4, 2, 2, false}, RatioCase{6, 12, 6, 4, 3, false},
        RatioCase{7, 9, 6, 3, 2, false}, RatioCase{8, 11, 3, 2, 2, false},
        RatioCase{9, 8, 5, 4, 2, true}, RatioCase{10, 12, 5, 4, 2, true},
        RatioCase{11, 12, 6, 6, 3, true}, RatioCase{12, 10, 4, 5, 2, true},
        RatioCase{13, 12, 8, 3, 2, true}, RatioCase{14, 13, 4, 3, 2, false},
        RatioCase{15, 12, 5, 3, 4, false}, RatioCase{16, 12, 5, 4, 6, true}));

// In practice the measured ratios should be far below the worst-case
// bounds on clustered data; this guards against silent regressions that
// stay within the loose theoretical bound but destroy practical quality.
TEST(PracticalQualityTest, BallCoverNearOptimalOnCleanClusters) {
  Rng rng(20);
  ClusteredTableOptions opt;
  opt.num_rows = 12;
  opt.num_clusters = 4;
  opt.noise_flips = 0;
  const Table t = ClusteredTable(opt, &rng);
  BallCoverAnonymizer ball;
  EXPECT_EQ(ball.Run(t, 3).cost, 0u);
}

TEST(PracticalQualityTest, GreedyCoverAtMostDoubleOptOnMediumNoise) {
  // Aggregate check across seeds: the mean measured ratio on lightly
  // noised clusters stays below 2.5 (far under the Theorem 4.1 bound of
  // ~14.3 for k=2).
  double ratio_sum = 0;
  int counted = 0;
  for (uint64_t seed = 30; seed < 40; ++seed) {
    Rng rng(seed);
    ClusteredTableOptions opt;
    opt.num_rows = 10;
    opt.num_columns = 6;
    opt.num_clusters = 5;
    opt.noise_flips = 1;
    const Table t = ClusteredTable(opt, &rng);
    ExactDpAnonymizer exact;
    GreedyCoverAnonymizer greedy;
    const size_t opt_cost = exact.Run(t, 2).cost;
    if (opt_cost == 0) continue;
    ratio_sum += static_cast<double>(greedy.Run(t, 2).cost) /
                 static_cast<double>(opt_cost);
    ++counted;
  }
  ASSERT_GT(counted, 0);
  EXPECT_LE(ratio_sum / counted, 2.5);
}

}  // namespace
}  // namespace kanon
