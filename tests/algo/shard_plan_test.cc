#include "algo/shard_plan.h"

#include <algorithm>
#include <vector>

#include "data/generators/synthetic.h"
#include "data/generators/uniform.h"
#include "fault/fault.h"
#include "gtest/gtest.h"
#include "util/random.h"
#include "util/run_context.h"

/// \file
/// Planner contract: the cut is a disjoint cover of [0, n) with every
/// shard >= 2k-1 rows, deterministic from (table, k, options), bounded
/// by the requested shard count, memory-accounted, and typed on faults
/// and stops.

namespace kanon {
namespace {

Table TestTable(uint64_t rows, uint64_t seed = 7) {
  SyntheticTableOptions options;
  options.num_rows = rows;
  options.num_columns = 4;
  options.seed = seed;
  return SyntheticTable(options);
}

/// Every row of [0, n) in exactly one shard, each shard sorted, shards
/// ordered by their smallest member.
void ExpectDisjointCover(const ShardPlan& plan, size_t n, size_t k) {
  std::vector<char> seen(n, 0);
  RowId prev_front = 0;
  for (size_t s = 0; s < plan.num_shards(); ++s) {
    const Group& shard = plan.shards[s];
    ASSERT_GE(shard.size(), 2 * k - 1) << "shard " << s;
    ASSERT_TRUE(std::is_sorted(shard.begin(), shard.end()));
    if (s > 0) {
      EXPECT_GT(shard.front(), prev_front);
    }
    prev_front = shard.front();
    for (const RowId r : shard) {
      ASSERT_LT(r, n);
      EXPECT_EQ(seen[r], 0) << "row " << r << " in two shards";
      seen[r] = 1;
    }
  }
  EXPECT_EQ(std::count(seen.begin(), seen.end(), 1),
            static_cast<long>(n));
}

TEST(ShardPlanTest, CutsDisjointCoverWithMinimumShardSize) {
  const Table table = TestTable(200);
  RunContext ctx;
  StatusOr<ShardPlan> plan = PlanShards(table, 5, ShardOptions{}, &ctx);
  ASSERT_TRUE(plan.ok()) << plan.status().message();
  EXPECT_EQ(plan->num_shards(), kDefaultShardCount);
  ExpectDisjointCover(*plan, 200, 5);
}

TEST(ShardPlanTest, DeterministicCutAndFingerprint) {
  const Table table = TestTable(300, 21);
  ShardOptions options;
  options.shards = 6;
  RunContext ctx_a, ctx_b;
  StatusOr<ShardPlan> a = PlanShards(table, 4, options, &ctx_a);
  StatusOr<ShardPlan> b = PlanShards(table, 4, options, &ctx_b);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->Fingerprint(), b->Fingerprint());
  ASSERT_EQ(a->num_shards(), b->num_shards());
  for (size_t s = 0; s < a->num_shards(); ++s) {
    EXPECT_EQ(a->shards[s], b->shards[s]);
  }
}

TEST(ShardPlanTest, ResolveShardCountCapsAtFeasibleShards) {
  // n=20, k=3: floor 2k-1=5 feeds at most 4 shards.
  ShardOptions eight;
  eight.shards = 8;
  EXPECT_EQ(ResolveShardCount(20, 3, eight), 4u);
  // Default request on a tiny table degenerates to 1 (direct path).
  EXPECT_EQ(ResolveShardCount(8, 3, ShardOptions{}), 1u);
  // A generous table honors the request exactly.
  ShardOptions three;
  three.shards = 3;
  EXPECT_EQ(ResolveShardCount(1000, 5, three), 3u);
}

TEST(ShardPlanTest, HonorsRequestedShardCountOnRandomTables) {
  Rng rng(99);
  for (int trial = 0; trial < 10; ++trial) {
    UniformTableOptions table_options;
    table_options.num_rows =
        static_cast<uint32_t>(rng.UniformInt(30, 200));
    table_options.num_columns = static_cast<uint32_t>(rng.UniformInt(2, 5));
    table_options.alphabet = static_cast<uint32_t>(rng.UniformInt(2, 6));
    const Table table = UniformTable(table_options, &rng);
    const size_t k = static_cast<size_t>(rng.UniformInt(2, 5));
    ShardOptions options;
    options.shards = static_cast<size_t>(rng.UniformInt(2, 6));
    RunContext ctx;
    StatusOr<ShardPlan> plan = PlanShards(table, k, options, &ctx);
    ASSERT_TRUE(plan.ok()) << plan.status().message();
    EXPECT_EQ(plan->num_shards(),
              ResolveShardCount(table.num_rows(), k, options));
    ExpectDisjointCover(*plan, table.num_rows(), k);
  }
}

TEST(ShardPlanTest, ConstantTableStillSplitsAtIndexMedian) {
  // Every row identical: no widest column exists, but the planner must
  // still cut (the halves are equally coherent either way).
  Table table(Schema({"x", "y"}));
  for (int i = 0; i < 40; ++i) table.AppendStringRow({"a", "b"});
  ShardOptions options;
  options.shards = 4;
  RunContext ctx;
  StatusOr<ShardPlan> plan = PlanShards(table, 3, options, &ctx);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->num_shards(), 4u);
  ExpectDisjointCover(*plan, 40, 3);
}

TEST(ShardPlanTest, FaultSiteDeclinesTyped) {
  const Table table = TestTable(100);
  FaultPlan fault_plan;
  fault_plan.seed = 3;
  fault_plan.sites.push_back({.site = "shard.plan", .first_n = 1});
  ScopedFaultInjection injection(fault_plan);
  RunContext ctx;
  StatusOr<ShardPlan> plan = PlanShards(table, 3, ShardOptions{}, &ctx);
  EXPECT_FALSE(plan.ok());
  EXPECT_EQ(ctx.stop_reason(), StopReason::kBudget);
}

TEST(ShardPlanTest, ChargesAndReleasesScratchMemory) {
  const Table table = TestTable(100);
  RunContext ctx;
  ctx.set_memory_limit_bytes(1 << 20);
  StatusOr<ShardPlan> plan = PlanShards(table, 3, ShardOptions{}, &ctx);
  ASSERT_TRUE(plan.ok());
  EXPECT_GE(ctx.peak_memory_bytes(), 100 * sizeof(RowId));
  EXPECT_EQ(ctx.memory_charged_bytes(), 0u);

  RunContext tight;
  tight.set_memory_limit_bytes(8);  // cannot hold the row scratch
  StatusOr<ShardPlan> declined =
      PlanShards(table, 3, ShardOptions{}, &tight);
  EXPECT_FALSE(declined.ok());
  EXPECT_EQ(declined.status().code(), StatusCode::kResourceExhausted);
}

TEST(ShardPlanTest, CancelledContextStopsTyped) {
  const Table table = TestTable(100);
  RunContext ctx;
  ctx.RequestCancel();
  StatusOr<ShardPlan> plan = PlanShards(table, 3, ShardOptions{}, &ctx);
  EXPECT_FALSE(plan.ok());
  EXPECT_EQ(plan.status().code(), StatusCode::kCancelled);
}

TEST(ShardPlanTest, OptionsFingerprintSeparatesKnobs) {
  ShardOptions a, b;
  a.shards = 4;
  b.shards = 8;
  EXPECT_NE(a.Fingerprint(), b.Fingerprint());
  b.shards = 4;
  b.shard_parallelism = 2;
  EXPECT_NE(a.Fingerprint(), b.Fingerprint());
  b.shard_parallelism = 0;
  EXPECT_EQ(a.Fingerprint(), b.Fingerprint());
}

}  // namespace
}  // namespace kanon
