#include "algo/fallback.h"

#include <chrono>
#include <thread>

#include "algo/exact_dp.h"
#include "algo/registry.h"
#include "core/partition.h"
#include "data/generators/uniform.h"
#include "gtest/gtest.h"
#include "hypergraph/generators.h"
#include "reductions/matching_to_kanon.h"
#include "util/random.h"
#include "util/timer.h"

/// \file
/// The resilient chain's contract: it ALWAYS returns a valid k-anonymous
/// partition, including on the adversarial instances the Theorem 3.1
/// reduction generates — where the exact solver, given a tiny deadline,
/// cannot finish and a later stage must take over.

namespace kanon {
namespace {

/// Theorem 3.1 hard instance: k-ANONYMITY table built from a planted
/// perfect-matching 3-hypergraph. `vertices` rows, one column per edge.
Table HardInstance(uint32_t vertices, uint32_t extra_edges, uint64_t seed) {
  Rng rng(seed);
  const Hypergraph h = PlantedMatchingHypergraph(
      {.num_vertices = vertices, .k = 3, .extra_edges = extra_edges}, &rng);
  return BuildKAnonInstance(h);
}

TEST(FallbackTest, SmallInstanceReturnsExactOptimumCompleted) {
  const Table v = HardInstance(/*vertices=*/9, /*extra_edges=*/3, /*seed=*/1);
  const size_t k = 3;

  FallbackAnonymizer resilient;
  RunContext ctx;  // unlimited
  const AnonymizationResult result = resilient.Run(v, k, &ctx);

  EXPECT_EQ(result.termination, StopReason::kNone);
  EXPECT_TRUE(result.completed());
  EXPECT_EQ(result.stage, "exact_dp");
  ASSERT_TRUE(IsValidPartition(result.partition, v.num_rows(), k,
                               v.num_rows()));

  ExactDpAnonymizer exact;
  const AnonymizationResult optimum = exact.Run(v, k);
  EXPECT_EQ(result.cost, optimum.cost);
}

TEST(FallbackTest, HardInstanceWithTinyDeadlineDegradesButStaysValid) {
  // n = 21 rows: inside exact_dp's structural cap (so the chain really
  // attempts the 2^21-state DP) but far beyond what 50 ms allows.
  const Table v = HardInstance(/*vertices=*/21, /*extra_edges=*/6,
                               /*seed=*/7);
  const size_t k = 3;

  FallbackAnonymizer resilient;
  RunContext ctx;
  ctx.set_deadline_after_millis(50.0);
  WallTimer timer;
  const AnonymizationResult result = resilient.Run(v, k, &ctx);
  const double elapsed_ms = timer.Seconds() * 1e3;

  // A later stage produced the answer; the stop reason is recorded.
  EXPECT_NE(result.termination, StopReason::kNone);
  EXPECT_FALSE(result.completed());
  EXPECT_NE(result.stage, "exact_dp");
  EXPECT_FALSE(result.stage.empty());
  EXPECT_NE(result.notes.find("chain="), std::string::npos);

  // ... and it is still a genuine k-anonymization.
  ASSERT_TRUE(IsValidPartition(result.partition, v.num_rows(), k,
                               v.num_rows()));

  // Cooperative checkpoints bound the deadline overshoot: the whole
  // chain must come in well under the seconds the DP would need.
  EXPECT_LT(elapsed_ms, 2000.0);
}

TEST(FallbackTest, ExpiredDeadlineStillYieldsSuppressAll) {
  Rng rng(3);
  const Table t = UniformTable(
      {.num_rows = 30, .num_columns = 5, .alphabet = 3}, &rng);
  const size_t k = 4;

  FallbackAnonymizer resilient;
  RunContext ctx;
  ctx.set_deadline_after_millis(-1.0);  // already expired
  const AnonymizationResult result = resilient.Run(t, k, &ctx);

  EXPECT_EQ(result.termination, StopReason::kDeadline);
  // Terminal stage is unconditionally feasible even with no time left.
  EXPECT_EQ(result.stage, "suppress_all");
  EXPECT_TRUE(IsValidPartition(result.partition, t.num_rows(), k,
                               t.num_rows()));
}

TEST(FallbackTest, ZeroDeadlineStillYieldsValidPartitionViaSuppressAll) {
  // Deadline of exactly zero: every stage's slice of the remaining time
  // is already spent, so only the unconditionally-feasible terminal
  // stage can answer — and it must. (35 rows keeps the anytime
  // branch_bound above its structural cap; below it, its bootstrap
  // incumbent would answer even with no time left.)
  Rng rng(11);
  const Table t = UniformTable(
      {.num_rows = 35, .num_columns = 4, .alphabet = 3}, &rng);
  const size_t k = 5;

  FallbackAnonymizer resilient;
  RunContext ctx;
  ctx.set_deadline_after_millis(0.0);
  const AnonymizationResult result = resilient.Run(t, k, &ctx);

  EXPECT_EQ(result.termination, StopReason::kDeadline);
  EXPECT_EQ(result.stage, "suppress_all");
  EXPECT_NE(result.notes.find("chain="), std::string::npos);
  EXPECT_TRUE(IsValidPartition(result.partition, t.num_rows(), k,
                               t.num_rows()));
  // Full suppression: every cell starred.
  EXPECT_EQ(result.cost,
            static_cast<size_t>(t.num_rows()) * t.num_columns());
}

TEST(FallbackTest, CancellationMidRunUnwindsParallelForCleanly) {
  // A ball_cover stage on 400 rows spends tens of milliseconds in its
  // ParallelFor-backed distance/family precomputations; cancelling from
  // another thread a few ms in lands mid-flight. The chain must unwind
  // without leaks or races (this is exercised under KANON_SANITIZE in
  // CI) and still answer through the terminal stage.
  Rng rng(12);
  const Table t = UniformTable(
      {.num_rows = 400, .num_columns = 6, .alphabet = 4}, &rng);
  const size_t k = 3;

  FallbackOptions options;
  options.stages = {"ball_cover", "suppress_all"};
  FallbackAnonymizer resilient(options);
  RunContext ctx;
  std::thread canceller([&ctx] {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    ctx.RequestCancel();
  });
  const AnonymizationResult result = resilient.Run(t, k, &ctx);
  canceller.join();

  EXPECT_EQ(result.termination, StopReason::kCancelled);
  EXPECT_EQ(result.stage, "suppress_all");
  EXPECT_TRUE(IsValidPartition(result.partition, t.num_rows(), k,
                               t.num_rows()));
}

TEST(FallbackTest, CancellationPropagatesThroughChain) {
  Rng rng(4);
  const Table t = UniformTable(
      {.num_rows = 40, .num_columns = 6, .alphabet = 4}, &rng);
  const size_t k = 3;

  FallbackAnonymizer resilient;
  RunContext ctx;
  ctx.RequestCancel();  // cancelled before the run even starts
  const AnonymizationResult result = resilient.Run(t, k, &ctx);

  EXPECT_EQ(result.termination, StopReason::kCancelled);
  EXPECT_TRUE(IsValidPartition(result.partition, t.num_rows(), k,
                               t.num_rows()));
}

TEST(FallbackTest, MediumInstanceFallsThroughToGreedyCover) {
  // 40 rows exceeds exact_dp (22) and branch_bound (28) caps; on a
  // lenient chain context both decline and greedy_cover answers.
  Rng rng(5);
  const Table t = UniformTable(
      {.num_rows = 40, .num_columns = 6, .alphabet = 4}, &rng);
  const size_t k = 3;

  FallbackAnonymizer resilient;
  RunContext ctx;
  const AnonymizationResult result = resilient.Run(t, k, &ctx);

  EXPECT_EQ(result.stage, "greedy_cover");
  EXPECT_EQ(result.termination, StopReason::kBudget);  // declines latched
  EXPECT_TRUE(IsValidPartition(result.partition, t.num_rows(), k,
                               t.num_rows()));
}

TEST(FallbackTest, RegistryExposesResilient) {
  auto algo = MakeAnonymizer("resilient");
  ASSERT_NE(algo, nullptr);
  EXPECT_EQ(algo->name(), "resilient");

  Rng rng(6);
  const Table t = UniformTable(
      {.num_rows = 12, .num_columns = 4, .alphabet = 3}, &rng);
  // Back-compat 2-arg Run works on the chain too.
  const AnonymizationResult result = algo->Run(t, 3);
  EXPECT_TRUE(IsValidPartition(result.partition, t.num_rows(), 3,
                               t.num_rows()));
}

TEST(FallbackDeathTest, NestedResilientStageRejected) {
  FallbackOptions options;
  options.stages = {"resilient"};
  EXPECT_DEATH((void)FallbackAnonymizer(options),
               "fallback chain cannot nest itself");
}

}  // namespace
}  // namespace kanon
