#include "algo/reduce.h"

#include "core/cost.h"
#include "data/generators/uniform.h"
#include "gtest/gtest.h"
#include "util/random.h"

namespace kanon {
namespace {

TEST(ReduceTest, AlreadyPartitionUnchangedSemantically) {
  Rng rng(1);
  const Table t = UniformTable({.num_rows = 6, .num_columns = 4}, &rng);
  Partition cover;
  cover.groups = {{0, 1, 2}, {3, 4, 5}};
  const Partition p = ReduceCoverToPartition(t, cover, 3);
  EXPECT_TRUE(IsValidPartition(p, 6, 3, 5));
  EXPECT_EQ(DiameterSum(t, p), DiameterSum(t, cover));
}

TEST(ReduceTest, RemovesFromLargerSet) {
  Rng rng(2);
  const Table t = UniformTable({.num_rows = 5, .num_columns = 4}, &rng);
  Partition cover;
  cover.groups = {{0, 1, 2}, {2, 3, 4}};  // row 2 shared; both size 3 > k=2
  const Partition p = ReduceCoverToPartition(t, cover, 2);
  EXPECT_TRUE(IsValidPartition(p, 5, 2, 3));
  EXPECT_LE(DiameterSum(t, p), DiameterSum(t, cover));
}

TEST(ReduceTest, MergesTwoSizeKSets) {
  Rng rng(3);
  const Table t = UniformTable({.num_rows = 3, .num_columns = 4}, &rng);
  Partition cover;
  cover.groups = {{0, 1}, {1, 2}};  // both exactly k=2, share row 1
  const Partition p = ReduceCoverToPartition(t, cover, 2);
  EXPECT_TRUE(IsValidPartition(p, 3, 2, 3));
  EXPECT_EQ(p.num_groups(), 1u);
  EXPECT_EQ(p.groups[0].size(), 3u);
}

TEST(ReduceTest, TriangleInequalityBoundsMergedDiameter) {
  // Figure 1 of the paper: d(S_i ∪ S_j) <= d(S_i) + d(S_j) when they
  // intersect.
  Schema schema({"a", "b", "c", "d"});
  Table t(std::move(schema));
  t.AppendStringRow({"0", "0", "0", "0"});
  t.AppendStringRow({"0", "0", "1", "1"});
  t.AppendStringRow({"1", "1", "1", "1"});
  Partition cover;
  cover.groups = {{0, 1}, {1, 2}};
  const size_t before = DiameterSum(t, cover);  // 2 + 2
  const Partition p = ReduceCoverToPartition(t, cover, 2);
  EXPECT_EQ(p.num_groups(), 1u);
  EXPECT_LE(DiameterSum(t, p), before);  // merged diameter 4 <= 2+2
}

// Property: on random covers, Reduce yields a valid partition and never
// increases the diameter sum (the paper's Phase 2 guarantee).
class ReducePropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ReducePropertyTest, DiameterSumNeverIncreases) {
  Rng rng(GetParam());
  const uint32_t n = 14;
  const size_t k = 2 + GetParam() % 2;  // k in {2, 3}
  const Table t = UniformTable(
      {.num_rows = n, .num_columns = 6, .alphabet = 3}, &rng);
  // Build a random (k, 2k-1)-cover: keep adding random groups until all
  // rows are covered.
  Partition cover;
  std::vector<bool> covered(n, false);
  size_t covered_count = 0;
  while (covered_count < n) {
    const uint32_t size =
        static_cast<uint32_t>(k) + rng.Uniform(static_cast<uint32_t>(k));
    Group g;
    // Bias toward uncovered rows so the loop terminates quickly.
    std::vector<uint32_t> picks = rng.SampleWithoutReplacement(n, size);
    for (const uint32_t r : picks) g.push_back(r);
    for (const RowId r : g) {
      if (!covered[r]) {
        covered[r] = true;
        ++covered_count;
      }
    }
    cover.groups.push_back(std::move(g));
  }
  ASSERT_TRUE(IsValidCover(cover, n, k, 2 * k - 1));
  const Partition p = ReduceCoverToPartition(t, cover, k);
  EXPECT_TRUE(IsValidPartition(p, n, k, 2 * k - 1));
  EXPECT_LE(DiameterSum(t, p), DiameterSum(t, cover));
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReducePropertyTest,
                         ::testing::Range<uint64_t>(1, 17));

TEST(ReduceTest, LargeBallGroupsAccepted) {
  Rng rng(5);
  const Table t = UniformTable({.num_rows = 8, .num_columns = 4}, &rng);
  Partition cover;
  cover.groups = {{0, 1, 2, 3, 4, 5}, {4, 5, 6, 7}};  // sizes 6 and 4, k=2
  const Partition p = ReduceCoverToPartition(t, cover, 2);
  EXPECT_TRUE(IsValidPartition(p, 8, 2, 8));
}

TEST(ReduceDeathTest, RejectsNonCover) {
  Rng rng(6);
  const Table t = UniformTable({.num_rows = 4, .num_columns = 3}, &rng);
  Partition not_cover;
  not_cover.groups = {{0, 1}};
  EXPECT_DEATH(ReduceCoverToPartition(t, not_cover, 2), "Check failed");
}

}  // namespace
}  // namespace kanon
