#include "algo/exact_dp.h"

#include "core/bounds.h"
#include "core/cost.h"
#include "core/distance.h"
#include "data/generators/clustered.h"
#include "data/generators/uniform.h"
#include "gtest/gtest.h"
#include "util/random.h"

namespace kanon {
namespace {

Table Rows(const std::vector<std::vector<std::string>>& rows) {
  Schema schema;
  for (size_t c = 0; c < rows[0].size(); ++c) {
    schema.AddAttribute("a" + std::to_string(c));
  }
  Table t(std::move(schema));
  for (const auto& row : rows) t.AppendStringRow(row);
  return t;
}

TEST(ExactDpTest, AllIdenticalRowsCostZero) {
  const Table t = Rows({{"a", "b"}, {"a", "b"}, {"a", "b"}, {"a", "b"}});
  ExactDpAnonymizer algo;
  const auto result = ValidateResult(t, 2, algo.Run(t, 2));
  EXPECT_EQ(result.cost, 0u);
}

TEST(ExactDpTest, TwoObviousPairs) {
  // Rows 0,1 identical; rows 2,3 identical; OPT for k=2 is 0.
  const Table t = Rows({{"a", "b"}, {"a", "b"}, {"x", "y"}, {"x", "y"}});
  ExactDpAnonymizer algo;
  EXPECT_EQ(algo.Run(t, 2).cost, 0u);
}

TEST(ExactDpTest, ForcedSuppressionCost) {
  // Two rows differing in one column: k=2 forces both cells of that
  // column starred -> cost 2.
  const Table t = Rows({{"a", "b"}, {"a", "c"}});
  ExactDpAnonymizer algo;
  const auto result = ValidateResult(t, 2, algo.Run(t, 2));
  EXPECT_EQ(result.cost, 2u);
}

TEST(ExactDpTest, PicksCheaperPairing) {
  // Rows: A=(a,b), B=(a,c), C=(z,b). Pair A-B costs 2 (one column),
  // pair A-C costs 2; any pairing leaves a singleton -> k=2 needs one
  // group of 3 (cost 3*2=6) or... n=3, k=2 so the only valid partition is
  // one group of 3: cost 6? No — groups must have >= 2 members, so with
  // n=3 the single group {A,B,C} is forced; both columns disagree.
  const Table t = Rows({{"a", "b"}, {"a", "c"}, {"z", "b"}});
  ExactDpAnonymizer algo;
  const auto result = ValidateResult(t, 2, algo.Run(t, 2));
  EXPECT_EQ(result.cost, 6u);
  EXPECT_EQ(result.partition.num_groups(), 1u);
}

TEST(ExactDpTest, SplitsWhenBeneficial) {
  // Two tight pairs far apart: OPT pairs them rather than one group.
  const Table t = Rows({{"a", "a", "a"},
                        {"a", "a", "b"},
                        {"z", "z", "z"},
                        {"z", "z", "w"}});
  ExactDpAnonymizer algo;
  const auto result = ValidateResult(t, 2, algo.Run(t, 2));
  EXPECT_EQ(result.cost, 4u);  // one starred column per pair
  EXPECT_EQ(result.partition.num_groups(), 2u);
}

TEST(ExactDpTest, KEqualsNSingleGroup) {
  Rng rng(1);
  const Table t = UniformTable({.num_rows = 5, .num_columns = 4}, &rng);
  ExactDpAnonymizer algo;
  const auto result = ValidateResult(t, 5, algo.Run(t, 5));
  EXPECT_EQ(result.partition.num_groups(), 1u);
  Group all = {0, 1, 2, 3, 4};
  EXPECT_EQ(result.cost, AnonCost(t, all));
}

TEST(ExactDpTest, KOneIsFree) {
  Rng rng(2);
  const Table t = UniformTable({.num_rows = 6, .num_columns = 4}, &rng);
  ExactDpAnonymizer algo;
  EXPECT_EQ(algo.Run(t, 1).cost, 0u);
}

TEST(ExactDpTest, RespectsKnnLowerBound) {
  Rng rng(3);
  const Table t = UniformTable(
      {.num_rows = 10, .num_columns = 5, .alphabet = 3}, &rng);
  const DistanceMatrix dm(t);
  ExactDpAnonymizer algo;
  for (const size_t k : {2u, 3u}) {
    EXPECT_GE(algo.Run(t, k).cost, KnnLowerBound(t, dm, k));
  }
}

TEST(ExactDpTest, OptimalIsMinimalOverRandomPartitions) {
  // Property: no random feasible partition beats the DP optimum.
  Rng rng(4);
  const uint32_t n = 10;
  const Table t = UniformTable(
      {.num_rows = n, .num_columns = 5, .alphabet = 3}, &rng);
  ExactDpAnonymizer algo;
  const size_t opt = algo.Run(t, 2).cost;
  for (int trial = 0; trial < 30; ++trial) {
    Group all(n);
    for (RowId r = 0; r < n; ++r) all[r] = r;
    rng.Shuffle(&all);
    Partition p;
    p.groups = {all};
    p = SplitLargeGroups(p, 2);
    EXPECT_LE(opt, PartitionCost(t, p));
  }
}

TEST(ExactDpTest, MonotoneInK) {
  // OPT(k) is non-decreasing in k (larger groups are a superset
  // constraint).
  Rng rng(5);
  const Table t = UniformTable(
      {.num_rows = 9, .num_columns = 5, .alphabet = 4}, &rng);
  ExactDpAnonymizer algo;
  size_t prev = 0;
  for (size_t k = 1; k <= 4; ++k) {
    const size_t cost = algo.Run(t, k).cost;
    EXPECT_GE(cost, prev);
    prev = cost;
  }
}

TEST(ExactDpDeathTest, TooManyRowsDies) {
  Rng rng(6);
  const Table t = UniformTable({.num_rows = 30, .num_columns = 3}, &rng);
  ExactDpAnonymizer algo;
  EXPECT_DEATH(algo.Run(t, 2), "exponential in n");
}

}  // namespace
}  // namespace kanon
