#include "algo/sharded_anonymizer.h"

#include <algorithm>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "algo/shard_plan.h"

#include "algo/fallback.h"
#include "algo/registry.h"
#include "core/partition.h"
#include "data/generators/synthetic.h"
#include "fault/fault.h"
#include "gtest/gtest.h"
#include "util/fingerprint.h"
#include "util/parallel.h"
#include "util/run_context.h"

/// \file
/// Wrapper contract: sharded_<inner> always emits a valid k-anonymous
/// partition of the FULL table (or a typed decline — never an invalid
/// partition), is bit-identical to the plain inner on the shards<=1
/// direct path (golden cost + partition hash), independent of solve
/// parallelism, resumes from a wrapper snapshot with the bit-identical
/// answer, cold-starts on hostile snapshots, and degrades gracefully
/// inside the fallback chain when a shard fault fires mid-pipeline.

namespace kanon {
namespace {

/// Canonical content hash (group/row order is presentation).
uint64_t PartitionHash(const Partition& partition) {
  std::vector<Group> groups = partition.groups;
  for (Group& group : groups) std::sort(group.begin(), group.end());
  std::sort(groups.begin(), groups.end());
  uint64_t fp = kFingerprintSeed;
  for (const Group& group : groups) {
    fp = FingerprintInt(fp, group.size());
    for (const RowId row : group) fp = FingerprintInt(fp, row);
  }
  return fp;
}

/// Records every Persist in arrival order (thread-safe, so armed
/// parallel runs can emit into it) plus the latest payload per solver
/// name — tests assert both on snapshot contents and on *who* emitted.
class MemorySink : public CheckpointSink {
 public:
  Status Persist(std::string_view solver,
                 const std::string& payload) override {
    std::lock_guard<std::mutex> lock(mu_);
    solvers_.emplace_back(solver);
    latest_[std::string(solver)] = payload;
    return Status::Ok();
  }

  std::vector<std::string> solvers() const {
    std::lock_guard<std::mutex> lock(mu_);
    return solvers_;
  }
  std::string latest(const std::string& solver) const {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = latest_.find(solver);
    return it != latest_.end() ? it->second : std::string();
  }
  uint64_t persists() const {
    std::lock_guard<std::mutex> lock(mu_);
    return solvers_.size();
  }

 private:
  mutable std::mutex mu_;
  std::vector<std::string> solvers_;
  std::unordered_map<std::string, std::string> latest_;
};

Table TestTable(uint64_t rows, uint64_t seed = 11) {
  SyntheticTableOptions options;
  options.num_rows = rows;
  options.num_columns = 4;
  options.seed = seed;
  return SyntheticTable(options);
}

ShardedAnonymizer MakeWrapper(const std::string& inner = "mdav",
                              ShardOptions options = {}) {
  return ShardedAnonymizer([inner] { return MakeAnonymizer(inner); },
                           options);
}

TEST(ShardedAnonymizerTest, ProducesValidFullTablePartition) {
  const Table table = TestTable(400);
  ShardedAnonymizer algo = MakeWrapper();
  RunContext ctx;
  const AnonymizationResult result = algo.Run(table, 4, &ctx);
  ASSERT_TRUE(result.completed());
  EXPECT_TRUE(IsValidPartition(result.partition, 400, 4, 400));
  EXPECT_NE(result.notes.find("sharded shards=8"), std::string::npos);
  EXPECT_NE(result.notes.find("inner=mdav"), std::string::npos);
}

TEST(ShardedAnonymizerTest, DirectPathIsBitIdenticalToInner) {
  // Both degenerate routes — an explicit shards=1 request and a table
  // too small to feed two shards — must run the inner solver on the
  // caller's own context, bit-identical by cost and partition hash.
  std::unique_ptr<Anonymizer> plain = MakeAnonymizer("mdav");
  {
    const Table table = TestTable(200, 5);
    ShardOptions options;
    options.shards = 1;
    ShardedAnonymizer algo = MakeWrapper("mdav", options);
    RunContext ctx;
    const AnonymizationResult sharded = algo.Run(table, 4, &ctx);
    const AnonymizationResult direct = plain->Run(table, 4);
    ASSERT_TRUE(sharded.completed());
    EXPECT_NE(sharded.notes.find("sharded=direct(shards<=1)"),
              std::string::npos);
    EXPECT_EQ(sharded.cost, direct.cost);
    EXPECT_EQ(PartitionHash(sharded.partition),
              PartitionHash(direct.partition));
  }
  {
    const Table table = TestTable(16, 6);  // 16 < 2*(2*5-1): one shard
    ShardedAnonymizer algo = MakeWrapper("mdav");
    RunContext ctx;
    const AnonymizationResult sharded = algo.Run(table, 5, &ctx);
    const AnonymizationResult direct = plain->Run(table, 5);
    ASSERT_TRUE(sharded.completed());
    EXPECT_NE(sharded.notes.find("sharded=direct"), std::string::npos);
    EXPECT_EQ(sharded.cost, direct.cost);
    EXPECT_EQ(PartitionHash(sharded.partition),
              PartitionHash(direct.partition));
  }
}

/// RAII guard restoring the global parallelism level.
class ParallelismGuard {
 public:
  explicit ParallelismGuard(unsigned workers)
      : previous_(GetParallelism()) {
    SetParallelism(workers);
  }
  ~ParallelismGuard() { SetParallelism(previous_); }

 private:
  unsigned previous_;
};

TEST(ShardedAnonymizerTest, AnswerIndependentOfParallelism) {
  // The serial run and a genuinely threaded run (global parallelism
  // raised so worker threads actually spawn) must agree bit-for-bit:
  // the answer is a function of the plan, never the schedule.
  const Table table = TestTable(350, 21);
  ShardOptions serial;
  serial.shards = 6;
  serial.shard_parallelism = 1;
  ShardOptions wide = serial;
  wide.shard_parallelism = 4;
  ShardedAnonymizer a = MakeWrapper("mdav", serial);
  RunContext ctx_a;
  const AnonymizationResult ra = a.Run(table, 3, &ctx_a);

  ParallelismGuard guard(4);
  ShardedAnonymizer b = MakeWrapper("mdav", wide);
  RunContext ctx_b;
  const AnonymizationResult rb = b.Run(table, 3, &ctx_b);
  ASSERT_TRUE(ra.completed() && rb.completed());
  EXPECT_EQ(ra.cost, rb.cost);
  EXPECT_EQ(PartitionHash(ra.partition), PartitionHash(rb.partition));
}

TEST(ShardedAnonymizerTest, RegistryBuildsShardedCompositions) {
  for (const std::string name :
       {"sharded_mdav", "sharded_cluster_greedy"}) {
    std::unique_ptr<Anonymizer> algo = MakeAnonymizer(name);
    ASSERT_NE(algo, nullptr) << name;
    EXPECT_EQ(algo->name(), name);
    const auto known = KnownAnonymizers();
    EXPECT_NE(std::find(known.begin(), known.end(), name), known.end());
  }
  // Sharding a coreset pipeline is legal (shard, then sample inside).
  std::unique_ptr<Anonymizer> nested = MakeAnonymizer("sharded_coreset_mdav");
  ASSERT_NE(nested, nullptr);
  EXPECT_EQ(nested->name(), "sharded_coreset_mdav");
  // Nesting the chain or another sharded wrapper is rejected.
  EXPECT_EQ(MakeAnonymizer("sharded_resilient"), nullptr);
  EXPECT_EQ(MakeAnonymizer("sharded_sharded_mdav"), nullptr);
  EXPECT_EQ(MakeAnonymizer("sharded_nope"), nullptr);
}

TEST(ShardedAnonymizerTest, EndToEndThroughRegistryNames) {
  const Table table = TestTable(300, 21);
  for (const std::string name :
       {"sharded_mdav", "sharded_cluster_greedy",
        "sharded_coreset_mdav"}) {
    std::unique_ptr<Anonymizer> algo = MakeAnonymizer(name);
    ASSERT_NE(algo, nullptr);
    RunContext ctx;
    const AnonymizationResult result = algo->Run(table, 4, &ctx);
    EXPECT_TRUE(result.completed()) << name;
    EXPECT_TRUE(IsValidPartition(result.partition, 300, 4, 300)) << name;
  }
}

TEST(ShardedAnonymizerTest, ResumesFromWrapperSnapshotBitIdentical) {
  const Table table = TestTable(400, 33);
  ShardOptions options;
  options.shards = 4;
  options.shard_parallelism = 1;  // deterministic snapshot sequence

  MemorySink sink;
  ShardedAnonymizer golden_algo = MakeWrapper("mdav", options);
  RunContext golden_ctx;
  golden_ctx.ArmCheckpoints(&sink, /*every_polls=*/1, 0.0);
  const AnonymizationResult golden = golden_algo.Run(table, 4, &golden_ctx);
  ASSERT_TRUE(golden.completed());
  ASSERT_GE(sink.persists(), 1u);
  // Shard children are checkpoint-isolated, so the wrapper is the only
  // writer the job sink ever sees — never a bare inner-solver name.
  for (const std::string& solver : sink.solvers()) {
    EXPECT_EQ(solver, "sharded_mdav");
  }

  // A fresh incarnation resuming from that snapshot must skip the
  // completed shards and land on the bit-identical answer.
  ShardedAnonymizer resumed_algo = MakeWrapper("mdav", options);
  RunContext resumed_ctx;
  resumed_ctx.SetResume("sharded_mdav", sink.latest("sharded_mdav"));
  const AnonymizationResult resumed =
      resumed_algo.Run(table, 4, &resumed_ctx);
  ASSERT_TRUE(resumed.completed());
  EXPECT_EQ(resumed.cost, golden.cost);
  EXPECT_EQ(PartitionHash(resumed.partition),
            PartitionHash(golden.partition));
  EXPECT_NE(resumed.notes.find("resumed=1"), std::string::npos);
}

TEST(ShardedAnonymizerTest, WrapperIsTheOnlySnapshotWriter) {
  // Shard child contexts are checkpoint-isolated, so with the job root
  // armed at the tightest cadence and real worker threads running,
  // every persisted snapshot comes from the wrapper itself, serialized
  // under its state mutex. An inner-solver emission here would be a
  // concurrent, shard-local write into the job's snapshot slot — the
  // data race this test pins down (TSan catches the racing Persist).
  const Table table = TestTable(400, 33);
  ShardOptions options;
  options.shards = 4;
  options.shard_parallelism = 4;
  ParallelismGuard guard(4);
  MemorySink sink;
  ShardedAnonymizer algo = MakeWrapper("mdav", options);
  RunContext ctx;
  ctx.ArmCheckpoints(&sink, /*every_polls=*/1, 0.0);
  ASSERT_TRUE(algo.Run(table, 4, &ctx).completed());
  const std::vector<std::string> solvers = sink.solvers();
  ASSERT_GE(solvers.size(), 1u);
  for (const std::string& solver : solvers) {
    EXPECT_EQ(solver, "sharded_mdav");
  }
}

TEST(ShardedAnonymizerTest, InnerSolverNeverSeesJobRootResumePayloads) {
  // Median-cut shards routinely share sizes, and mdav validates a
  // resume payload only by (n, k) — so a shard-sized snapshot installed
  // at the job root (recovered for a different shard, or from an
  // unrelated run) passes its validation while carrying foreign
  // geometry. The isolation barrier keeps inner solvers blind to it:
  // the answer must stay bit-identical to a run with no resume state.
  const Table table = TestTable(400, 33);
  ShardOptions options;
  options.shards = 4;
  options.shard_parallelism = 1;
  ShardedAnonymizer golden_algo = MakeWrapper("mdav", options);
  RunContext golden_ctx;
  const AnonymizationResult golden = golden_algo.Run(table, 4, &golden_ctx);
  ASSERT_TRUE(golden.completed());

  // Replan the (deterministic) cut to learn a real shard size, then
  // capture a partial mdav snapshot from a donor table of exactly that
  // size but different geometry.
  RunContext plan_ctx;
  const StatusOr<ShardPlan> plan = PlanShards(table, 4, options, &plan_ctx);
  ASSERT_TRUE(plan.ok());
  const size_t shard_rows = plan.value().shards[0].size();
  MemorySink donor_sink;
  std::unique_ptr<Anonymizer> donor = MakeAnonymizer("mdav");
  const Table donor_table = TestTable(shard_rows, 77);
  RunContext donor_ctx;
  donor_ctx.ArmCheckpoints(&donor_sink, /*every_polls=*/1, 0.0);
  ASSERT_TRUE(donor->Run(donor_table, 4, &donor_ctx).completed());
  const std::string poison = donor_sink.latest("mdav");
  ASSERT_FALSE(poison.empty());

  ShardedAnonymizer algo = MakeWrapper("mdav", options);
  RunContext ctx;
  ctx.SetResume("mdav", poison);
  const AnonymizationResult result = algo.Run(table, 4, &ctx);
  ASSERT_TRUE(result.completed());
  EXPECT_EQ(result.cost, golden.cost);
  EXPECT_EQ(PartitionHash(result.partition),
            PartitionHash(golden.partition));
}

TEST(ShardedAnonymizerTest, HostileSnapshotColdStartsInsteadOfTrusting) {
  const Table table = TestTable(300, 33);
  ShardOptions options;
  options.shards = 4;
  ShardedAnonymizer golden_algo = MakeWrapper("mdav", options);
  RunContext golden_ctx;
  const AnonymizationResult golden = golden_algo.Run(table, 4, &golden_ctx);
  ASSERT_TRUE(golden.completed());

  for (const std::string& payload :
       {std::string(), std::string("garbage"),
        std::string(200, '\xff')}) {
    ShardedAnonymizer algo = MakeWrapper("mdav", options);
    RunContext ctx;
    ctx.SetResume("sharded_mdav", payload);
    const AnonymizationResult result = algo.Run(table, 4, &ctx);
    ASSERT_TRUE(result.completed());
    EXPECT_EQ(result.cost, golden.cost);
    EXPECT_EQ(PartitionHash(result.partition),
              PartitionHash(golden.partition));
    EXPECT_EQ(result.notes.find("resumed=1"), std::string::npos);
  }

  // A snapshot taken under a *different plan* (other shard count) must
  // also cold-start: the plan fingerprint stamp catches it.
  MemorySink sink;
  ShardOptions other;
  other.shards = 2;
  ShardedAnonymizer other_algo = MakeWrapper("mdav", other);
  RunContext other_ctx;
  other_ctx.ArmCheckpoints(&sink, 1, 0.0);
  ASSERT_TRUE(other_algo.Run(table, 4, &other_ctx).completed());
  ASSERT_GE(sink.persists(), 1u);
  ShardedAnonymizer algo = MakeWrapper("mdav", options);
  RunContext ctx;
  ctx.SetResume("sharded_mdav", sink.latest("sharded_mdav"));
  const AnonymizationResult result = algo.Run(table, 4, &ctx);
  ASSERT_TRUE(result.completed());
  EXPECT_EQ(result.cost, golden.cost);
  EXPECT_EQ(result.notes.find("resumed=1"), std::string::npos);
}

TEST(ShardedAnonymizerTest, ShardFaultDeclinesTypedNeverInvalid) {
  const Table table = TestTable(300);
  for (const char* site : {"shard.plan", "shard.solve", "shard.merge"}) {
    FaultPlan plan;
    plan.seed = 5;
    plan.sites.push_back({.site = site, .first_n = 1});
    ScopedFaultInjection injection(plan);
    ShardOptions options;
    options.shard_parallelism = 1;
    ShardedAnonymizer algo = MakeWrapper("mdav", options);
    RunContext ctx;
    const AnonymizationResult result = algo.Run(table, 3, &ctx);
    EXPECT_FALSE(result.completed()) << site;
    EXPECT_EQ(result.termination, StopReason::kBudget) << site;
    EXPECT_TRUE(result.partition.groups.empty()) << site;
    EXPECT_NE(result.notes.find("declined:"), std::string::npos) << site;
  }
}

TEST(ShardedAnonymizerTest, FallbackChainDegradesPastFaultedShard) {
  const Table table = TestTable(300);
  FaultPlan plan;
  plan.seed = 5;
  plan.sites.push_back({.site = "shard.solve", .first_n = 1});
  ScopedFaultInjection injection(plan);

  FallbackOptions options;
  options.stages = {"sharded_mdav", "suppress_all"};
  FallbackAnonymizer chain(options);
  RunContext ctx;
  const AnonymizationResult result = chain.Run(table, 3, &ctx);
  // The chain must absorb the shard decline and produce a valid answer
  // from the terminal stage.
  EXPECT_TRUE(IsValidPartition(result.partition, 300, 3, 300));
  EXPECT_EQ(result.stage, "suppress_all");
  EXPECT_NE(result.notes.find("sharded_mdav"), std::string::npos);
}

TEST(ShardedAnonymizerTest, CancelledContextDeclinesTyped) {
  const Table table = TestTable(300);
  ShardedAnonymizer algo = MakeWrapper();
  RunContext ctx;
  ctx.RequestCancel();
  const AnonymizationResult result = algo.Run(table, 3, &ctx);
  EXPECT_FALSE(result.completed());
  EXPECT_EQ(result.termination, StopReason::kCancelled);
  EXPECT_TRUE(result.partition.groups.empty());
}

TEST(ShardedAnonymizerTest, SplitsNodeBudgetAndBacksCharges) {
  const Table table = TestTable(300);
  ShardedAnonymizer algo = MakeWrapper();
  RunContext ctx;
  ctx.set_node_budget(10'000'000);
  const AnonymizationResult result = algo.Run(table, 3, &ctx);
  ASSERT_TRUE(result.completed());
  // Shard-solve work is visible on the parent context (back-charged).
  EXPECT_GT(ctx.nodes_charged(), 300u);
}

}  // namespace
}  // namespace kanon
