#include "algo/ball_cover.h"

#include "core/anonymity.h"
#include "data/generators/clustered.h"
#include "data/generators/uniform.h"
#include "gtest/gtest.h"
#include "util/parallel.h"
#include "util/random.h"

namespace kanon {
namespace {

TEST(BallCoverTest, NamesReflectMode) {
  EXPECT_EQ(BallCoverAnonymizer().name(), "ball_cover");
  BallCoverOptions radius;
  radius.family_mode = BallFamilyMode::kRadius;
  EXPECT_EQ(BallCoverAnonymizer(radius).name(), "ball_cover_radius");
  BallCoverOptions pair;
  pair.family_mode = BallFamilyMode::kPairwise;
  EXPECT_EQ(BallCoverAnonymizer(pair).name(), "ball_cover_pairwise");
}

TEST(BallCoverTest, ValidOnRandomTable) {
  Rng rng(1);
  const Table t = UniformTable(
      {.num_rows = 20, .num_columns = 6, .alphabet = 3}, &rng);
  BallCoverAnonymizer algo;
  const auto result = ValidateResult(t, 3, algo.Run(t, 3));
  EXPECT_TRUE(IsValidPartition(result.partition, 20, 3, 5));
}

TEST(BallCoverTest, PerfectClustersCostZero) {
  Rng rng(2);
  ClusteredTableOptions opt;
  opt.num_rows = 16;
  opt.num_clusters = 4;
  opt.noise_flips = 0;
  const Table t = ClusteredTable(opt, &rng);
  BallCoverAnonymizer algo;
  const auto result = ValidateResult(t, 4, algo.Run(t, 4));
  EXPECT_EQ(result.cost, 0u);
}

TEST(BallCoverTest, AllModesProduceValidResults) {
  Rng rng(3);
  const Table t = UniformTable(
      {.num_rows = 15, .num_columns = 5, .alphabet = 3}, &rng);
  for (const BallFamilyMode mode :
       {BallFamilyMode::kRadius, BallFamilyMode::kPairwise,
        BallFamilyMode::kAuto}) {
    for (const BallWeightMode weight :
         {BallWeightMode::kExactDiameter, BallWeightMode::kTwiceRadius}) {
      BallCoverOptions opt;
      opt.family_mode = mode;
      opt.weight_mode = weight;
      BallCoverAnonymizer algo(opt);
      ValidateResult(t, 3, algo.Run(t, 3));
    }
  }
}

TEST(BallCoverTest, RadiusAndPairwiseBothComplete) {
  // Pairwise family contains the ball of radius d(c, farthest) = all rows,
  // radius family the ball of radius m; both always cover.
  Rng rng(4);
  const Table t = UniformTable(
      {.num_rows = 9, .num_columns = 4, .alphabet = 9}, &rng);
  for (const BallFamilyMode mode :
       {BallFamilyMode::kRadius, BallFamilyMode::kPairwise}) {
    BallCoverOptions opt;
    opt.family_mode = mode;
    BallCoverAnonymizer algo(opt);
    const auto result = ValidateResult(t, 4, algo.Run(t, 4));
    EXPECT_EQ(result.partition.TotalMembers(), 9u);
  }
}

TEST(BallCoverTest, HandlesDuplicateHeavyTables) {
  Schema schema({"a", "b"});
  Table t(std::move(schema));
  for (int i = 0; i < 5; ++i) t.AppendStringRow({"x", "y"});
  for (int i = 0; i < 5; ++i) t.AppendStringRow({"p", "q"});
  BallCoverAnonymizer algo;
  const auto result = ValidateResult(t, 5, algo.Run(t, 5));
  EXPECT_EQ(result.cost, 0u);  // two pure duplicate balls
}

TEST(BallCoverTest, KEqualsNWorks) {
  Rng rng(5);
  const Table t = UniformTable({.num_rows = 6, .num_columns = 4}, &rng);
  BallCoverAnonymizer algo;
  const auto result = ValidateResult(t, 6, algo.Run(t, 6));
  EXPECT_EQ(result.partition.num_groups(), 1u);
}

TEST(BallCoverTest, ScalesToHundredsOfRows) {
  Rng rng(6);
  const Table t = UniformTable(
      {.num_rows = 300, .num_columns = 10, .alphabet = 4}, &rng);
  BallCoverAnonymizer algo;
  const auto result = ValidateResult(t, 5, algo.Run(t, 5));
  EXPECT_TRUE(IsValidPartition(result.partition, 300, 5, 9));
}

TEST(BallCoverTest, ParallelAndSerialRunsIdentical) {
  Rng rng(7);
  const Table t = UniformTable(
      {.num_rows = 120, .num_columns = 8, .alphabet = 4}, &rng);
  const unsigned previous = GetParallelism();
  SetParallelism(1);
  BallCoverAnonymizer serial_algo;
  const auto serial = serial_algo.Run(t, 4);
  SetParallelism(8);
  BallCoverAnonymizer parallel_algo;
  const auto parallel = parallel_algo.Run(t, 4);
  SetParallelism(previous);
  EXPECT_EQ(serial.cost, parallel.cost);
  EXPECT_EQ(serial.partition.ToString(), parallel.partition.ToString());
}

// Property sweep: valid partitions across (n, k, mode).
struct BallCase {
  uint64_t seed;
  uint32_t n;
  size_t k;
};

class BallCoverPropertyTest : public ::testing::TestWithParam<BallCase> {};

TEST_P(BallCoverPropertyTest, ValidAcrossConfigs) {
  const BallCase c = GetParam();
  Rng rng(c.seed);
  const Table t = UniformTable(
      {.num_rows = c.n, .num_columns = 6, .alphabet = 3}, &rng);
  BallCoverAnonymizer algo;
  const auto result = ValidateResult(t, c.k, algo.Run(t, c.k));
  EXPECT_TRUE(IsValidPartition(result.partition, c.n, c.k, 2 * c.k - 1));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BallCoverPropertyTest,
    ::testing::Values(BallCase{1, 10, 2}, BallCase{2, 10, 3},
                      BallCase{3, 25, 2}, BallCase{4, 25, 5},
                      BallCase{5, 40, 3}, BallCase{6, 40, 6},
                      BallCase{7, 60, 4}, BallCase{8, 17, 2}));

}  // namespace
}  // namespace kanon
