#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "algo/registry.h"
#include "data/generators/uniform.h"
#include "gtest/gtest.h"
#include "util/fingerprint.h"
#include "util/random.h"
#include "util/run_context.h"

/// \file
/// Golden-hash proofs that checkpoint/resume is exact: for every anytime
/// solver, a run interrupted by a node budget and resumed from its last
/// snapshot on a fresh context produces the *bit-identical* final answer
/// (same cost, same canonical partition hash) as the uninterrupted run.
/// Also proves arming a sink is observation-only: an armed run that is
/// never interrupted matches the unarmed golden exactly.

namespace kanon {
namespace {

/// Latest-snapshot-wins sink — the same contract as the durable
/// per-job store, minus the disk.
class MemorySink : public CheckpointSink {
 public:
  Status Persist(std::string_view solver,
                 const std::string& payload) override {
    solver_ = std::string(solver);
    payload_ = payload;
    ++persists_;
    return Status::Ok();
  }

  bool has_snapshot() const { return persists_ > 0; }
  const std::string& solver() const { return solver_; }
  const std::string& payload() const { return payload_; }
  uint64_t persists() const { return persists_; }

 private:
  std::string solver_;
  std::string payload_;
  uint64_t persists_ = 0;
};

/// Canonical content hash: group order and within-group row order are
/// presentation, not meaning, so both are sorted away first.
uint64_t PartitionHash(const Partition& partition) {
  std::vector<Group> groups = partition.groups;
  for (Group& group : groups) std::sort(group.begin(), group.end());
  std::sort(groups.begin(), groups.end());
  uint64_t fp = kFingerprintSeed;
  for (const Group& group : groups) {
    fp = FingerprintInt(fp, group.size());
    for (const RowId row : group) fp = FingerprintInt(fp, row);
  }
  return fp;
}

Table MakeTable(uint32_t rows, uint32_t columns, uint32_t alphabet,
                uint64_t seed) {
  UniformTableOptions options;
  options.num_rows = rows;
  options.num_columns = columns;
  options.alphabet = alphabet;
  Rng rng(seed);
  return UniformTable(options, &rng);
}

AnonymizationResult RunAlgo(const std::string& algo, const Table& table,
                            size_t k, RunContext* ctx) {
  std::unique_ptr<Anonymizer> solver = MakeAnonymizer(algo);
  EXPECT_NE(solver, nullptr) << algo;
  return solver->Run(table, k, ctx);
}

/// The golden-hash drill: uninterrupted run, budget-interrupted run
/// with an armed sink, then a resumed run from the captured snapshot.
void CheckResumeMatchesGolden(const std::string& algo, const Table& table,
                              size_t k, uint64_t budget,
                              uint64_t every_polls) {
  SCOPED_TRACE(algo + " budget=" + std::to_string(budget));

  RunContext golden_ctx;
  const AnonymizationResult golden = RunAlgo(algo, table, k, &golden_ctx);
  ASSERT_TRUE(golden.completed());

  MemorySink sink;
  RunContext interrupted_ctx;
  interrupted_ctx.set_node_budget(budget);
  interrupted_ctx.ArmCheckpoints(&sink, every_polls);
  const AnonymizationResult partial =
      RunAlgo(algo, table, k, &interrupted_ctx);
  interrupted_ctx.DisarmCheckpoints();
  ASSERT_FALSE(partial.completed())
      << "budget " << budget << " did not interrupt; notes: "
      << partial.notes;
  ASSERT_TRUE(sink.has_snapshot())
      << "no snapshot before the budget tripped";

  RunContext resume_ctx;
  resume_ctx.SetResume(sink.solver(), sink.payload());
  const AnonymizationResult resumed = RunAlgo(algo, table, k, &resume_ctx);
  ASSERT_TRUE(resumed.completed());
  EXPECT_EQ(resumed.cost, golden.cost);
  EXPECT_EQ(PartitionHash(resumed.partition),
            PartitionHash(golden.partition));
}

TEST(CheckpointResume, BranchBoundResumesBitIdentical) {
  const Table table = MakeTable(16, 4, 3, 0xb0b5u);
  for (const uint64_t budget : {100u, 300u, 1000u}) {
    CheckResumeMatchesGolden("branch_bound", table, 3, budget,
                             /*every_polls=*/1);
  }
}

TEST(CheckpointResume, MdavResumesMidPhase) {
  const Table table = MakeTable(36, 3, 4, 0x3dau);
  CheckResumeMatchesGolden("mdav", table, 3, /*budget=*/3,
                           /*every_polls=*/1);
}

TEST(CheckpointResume, LocalSearchResumesAtPassBoundary) {
  const Table table = MakeTable(30, 3, 3, 0x10c5u);
  CheckResumeMatchesGolden("mdav+local_search", table, 3, /*budget=*/20,
                           /*every_polls=*/1);
}

TEST(CheckpointResume, AnnealingResumesWithRestoredRngState) {
  const Table table = MakeTable(30, 3, 3, 0xa11eu);
  CheckResumeMatchesGolden("mdav+annealing", table, 3, /*budget=*/3000,
                           /*every_polls=*/4);
}

TEST(CheckpointResume, ArmedButUninterruptedRunMatchesUnarmedGolden) {
  const Table table = MakeTable(18, 3, 3, 0x90dau);
  for (const std::string algo :
       {"branch_bound", "mdav", "mdav+local_search", "mdav+annealing"}) {
    SCOPED_TRACE(algo);
    RunContext golden_ctx;
    const AnonymizationResult golden = RunAlgo(algo, table, 3, &golden_ctx);
    ASSERT_TRUE(golden.completed());

    MemorySink sink;
    RunContext armed_ctx;
    armed_ctx.ArmCheckpoints(&sink, /*every_polls=*/1);
    const AnonymizationResult armed = RunAlgo(algo, table, 3, &armed_ctx);
    armed_ctx.DisarmCheckpoints();
    ASSERT_TRUE(armed.completed());
    EXPECT_GT(sink.persists(), 0u);

    // Observation-only: arming the sink must not perturb the answer.
    EXPECT_EQ(armed.cost, golden.cost);
    EXPECT_EQ(PartitionHash(armed.partition),
              PartitionHash(golden.partition));
  }
}

TEST(CheckpointResume, HostileResumePayloadFallsBackToColdStart) {
  const Table table = MakeTable(12, 3, 3, 0xdeadu);
  RunContext golden_ctx;
  const AnonymizationResult golden =
      RunAlgo("branch_bound", table, 3, &golden_ctx);

  // Garbage, truncated and empty payloads must all be rejected and the
  // run must come back as a clean cold start, never a crash.
  for (const std::string& payload :
       {std::string("not a checkpoint"), std::string(3, '\0'),
        std::string()}) {
    RunContext ctx;
    ctx.SetResume("branch_bound", payload);
    const AnonymizationResult result =
        RunAlgo("branch_bound", table, 3, &ctx);
    ASSERT_TRUE(result.completed());
    EXPECT_EQ(result.cost, golden.cost);
    EXPECT_EQ(PartitionHash(result.partition),
              PartitionHash(golden.partition));
  }
}

}  // namespace
}  // namespace kanon
