#include "algo/mdav.h"

#include "algo/exact_dp.h"
#include "data/generators/census.h"
#include "data/generators/clustered.h"
#include "data/generators/uniform.h"
#include "gtest/gtest.h"
#include "util/random.h"

namespace kanon {
namespace {

TEST(MdavTest, ValidOnRandomTable) {
  Rng rng(1);
  const Table t = UniformTable(
      {.num_rows = 25, .num_columns = 6, .alphabet = 4}, &rng);
  MdavAnonymizer algo;
  const auto result = ValidateResult(t, 3, algo.Run(t, 3));
  EXPECT_EQ(result.partition.TotalMembers(), 25u);
}

TEST(MdavTest, FixedSizeGroupsExceptLast) {
  Rng rng(2);
  const Table t = UniformTable(
      {.num_rows = 23, .num_columns = 5, .alphabet = 3}, &rng);
  MdavAnonymizer algo;
  const auto result = algo.Run(t, 4);
  size_t irregular = 0;
  for (const Group& g : result.partition.groups) {
    EXPECT_GE(g.size(), 4u);
    EXPECT_LT(g.size(), 3 * 4u);
    if (g.size() != 4u) ++irregular;
  }
  EXPECT_LE(irregular, 1u);  // only the final group may be irregular
}

TEST(MdavTest, ExactMultipleYieldsAllFixedGroups) {
  Rng rng(3);
  const Table t = UniformTable(
      {.num_rows = 20, .num_columns = 5, .alphabet = 3}, &rng);
  MdavAnonymizer algo;
  const auto result = ValidateResult(t, 5, algo.Run(t, 5));
  for (const Group& g : result.partition.groups) {
    EXPECT_EQ(g.size(), 5u);
  }
}

TEST(MdavTest, PureClustersAreFree) {
  Rng rng(4);
  ClusteredTableOptions opt;
  opt.num_rows = 12;
  opt.num_clusters = 4;
  opt.noise_flips = 0;
  const Table t = ClusteredTable(opt, &rng);
  MdavAnonymizer algo;
  EXPECT_EQ(ValidateResult(t, 3, algo.Run(t, 3)).cost, 0u);
}

TEST(MdavTest, NEqualsKSingleGroup) {
  Rng rng(5);
  const Table t = UniformTable({.num_rows = 4, .num_columns = 3}, &rng);
  MdavAnonymizer algo;
  const auto result = ValidateResult(t, 4, algo.Run(t, 4));
  EXPECT_EQ(result.partition.num_groups(), 1u);
}

TEST(MdavTest, NeverBeatsExactOptimum) {
  Rng rng(6);
  const Table t = UniformTable(
      {.num_rows = 10, .num_columns = 4, .alphabet = 3}, &rng);
  ExactDpAnonymizer exact;
  MdavAnonymizer mdav;
  EXPECT_GE(mdav.Run(t, 2).cost, exact.Run(t, 2).cost);
}

TEST(MdavTest, ReasonableOnCensusData) {
  Rng rng(7);
  const Table t = CensusTable({.num_rows = 50}, &rng);
  MdavAnonymizer algo;
  const auto result = ValidateResult(t, 5, algo.Run(t, 5));
  // Must beat the all-stars ceiling comfortably on skewed data.
  EXPECT_LT(result.cost,
            static_cast<size_t>(t.num_rows()) * t.num_columns());
}

}  // namespace
}  // namespace kanon
