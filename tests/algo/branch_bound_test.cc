#include "algo/branch_bound.h"

#include "algo/exact_dp.h"
#include "data/generators/clustered.h"
#include "data/generators/uniform.h"
#include "gtest/gtest.h"
#include "util/random.h"

namespace kanon {
namespace {

TEST(BranchBoundTest, ValidOnRandomTable) {
  Rng rng(1);
  const Table t = UniformTable(
      {.num_rows = 10, .num_columns = 5, .alphabet = 3}, &rng);
  BranchBoundAnonymizer algo;
  ValidateResult(t, 2, algo.Run(t, 2));
}

// The central cross-check: branch & bound and the subset DP are
// independent exact algorithms; they must agree on OPT everywhere.
struct CrossCase {
  uint64_t seed;
  uint32_t n;
  uint32_t m;
  uint32_t alphabet;
  size_t k;
};

class ExactCrossCheckTest : public ::testing::TestWithParam<CrossCase> {};

TEST_P(ExactCrossCheckTest, AgreesWithExactDp) {
  const CrossCase c = GetParam();
  Rng rng(c.seed);
  const Table t = UniformTable(
      {.num_rows = c.n, .num_columns = c.m, .alphabet = c.alphabet}, &rng);
  ExactDpAnonymizer dp;
  BranchBoundAnonymizer bb;
  const auto dp_result = ValidateResult(t, c.k, dp.Run(t, c.k));
  const auto bb_result = ValidateResult(t, c.k, bb.Run(t, c.k));
  EXPECT_EQ(dp_result.cost, bb_result.cost);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ExactCrossCheckTest,
    ::testing::Values(CrossCase{1, 8, 4, 2, 2}, CrossCase{2, 8, 4, 3, 3},
                      CrossCase{3, 9, 5, 4, 2}, CrossCase{4, 9, 3, 2, 4},
                      CrossCase{5, 10, 5, 3, 2}, CrossCase{6, 10, 4, 4, 3},
                      CrossCase{7, 11, 6, 3, 2}, CrossCase{8, 12, 4, 2, 3},
                      CrossCase{9, 12, 5, 5, 2}, CrossCase{10, 7, 7, 3, 2},
                      CrossCase{11, 13, 4, 3, 2},
                      CrossCase{12, 10, 6, 2, 5}));

TEST(BranchBoundTest, ClusteredInstancesFast) {
  Rng rng(2);
  ClusteredTableOptions opt;
  opt.num_rows = 15;
  opt.num_clusters = 5;
  opt.noise_flips = 0;
  const Table t = ClusteredTable(opt, &rng);
  BranchBoundAnonymizer algo;
  const auto result = ValidateResult(t, 3, algo.Run(t, 3));
  EXPECT_EQ(result.cost, 0u);  // pure clusters of size 3
}

TEST(BranchBoundTest, NodeCapReturnsValidIncumbent) {
  Rng rng(3);
  const Table t = UniformTable(
      {.num_rows = 14, .num_columns = 5, .alphabet = 4}, &rng);
  BranchBoundOptions opt;
  opt.max_nodes = 5;
  BranchBoundAnonymizer algo(opt);
  const auto result = ValidateResult(t, 2, algo.Run(t, 2));
  EXPECT_NE(result.notes.find("TRUNCATED"), std::string::npos);
}

TEST(BranchBoundTest, NotesCountNodes) {
  Rng rng(4);
  const Table t = UniformTable({.num_rows = 8, .num_columns = 4}, &rng);
  BranchBoundAnonymizer algo;
  const auto result = algo.Run(t, 2);
  EXPECT_NE(result.notes.find("nodes="), std::string::npos);
}

TEST(BranchBoundDeathTest, TooManyRowsDies) {
  Rng rng(5);
  const Table t = UniformTable({.num_rows = 40, .num_columns = 3}, &rng);
  BranchBoundAnonymizer algo;
  EXPECT_DEATH(algo.Run(t, 2), "exponential in n");
}

}  // namespace
}  // namespace kanon
