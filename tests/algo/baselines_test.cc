#include "algo/cluster_greedy.h"
#include "algo/exact_dp.h"
#include "algo/mondrian.h"
#include "algo/random_partition.h"
#include "algo/suppress_all.h"

#include "data/generators/census.h"
#include "data/generators/clustered.h"
#include "data/generators/uniform.h"
#include "gtest/gtest.h"
#include "util/random.h"

namespace kanon {
namespace {

Table RandomTable(uint64_t seed, uint32_t n, uint32_t m = 5,
                  uint32_t alphabet = 3) {
  Rng rng(seed);
  return UniformTable(
      {.num_rows = n, .num_columns = m, .alphabet = alphabet}, &rng);
}

TEST(MondrianTest, ValidAcrossK) {
  const Table t = RandomTable(1, 30);
  MondrianAnonymizer algo;
  for (const size_t k : {1u, 2u, 3u, 5u, 8u}) {
    const auto result = ValidateResult(t, k, algo.Run(t, k));
    // Mondrian leaves can be large but never below k.
    for (const Group& g : result.partition.groups) {
      EXPECT_GE(g.size(), k);
    }
  }
}

TEST(MondrianTest, SplitsSeparableData) {
  // Two well-separated clusters of duplicates: Mondrian must split them
  // apart and pay zero stars.
  Schema schema({"a", "b"});
  Table t(std::move(schema));
  for (int i = 0; i < 4; ++i) t.AppendStringRow({"x", "p"});
  for (int i = 0; i < 4; ++i) t.AppendStringRow({"y", "q"});
  MondrianAnonymizer algo;
  const auto result = ValidateResult(t, 4, algo.Run(t, 4));
  EXPECT_EQ(result.cost, 0u);
  EXPECT_EQ(result.partition.num_groups(), 2u);
}

TEST(MondrianTest, StrictSplittingKeepsEqualValuesTogether) {
  // 5 copies of one value and 1 of another on the split attribute with
  // k=3: no boundary cut keeps k on both sides, so a single leaf remains.
  Schema schema({"a"});
  Table t(std::move(schema));
  for (int i = 0; i < 5; ++i) t.AppendStringRow({"x"});
  t.AppendStringRow({"y"});
  MondrianAnonymizer algo;
  const auto result = ValidateResult(t, 3, algo.Run(t, 3));
  EXPECT_EQ(result.partition.num_groups(), 1u);
}

TEST(ClusterGreedyTest, ValidAndReasonable) {
  const Table t = RandomTable(2, 20);
  ClusterGreedyAnonymizer algo;
  const auto result = ValidateResult(t, 4, algo.Run(t, 4));
  // Groups are exactly k except possibly the ones absorbing leftovers.
  size_t total = 0;
  for (const Group& g : result.partition.groups) total += g.size();
  EXPECT_EQ(total, 20u);
}

TEST(ClusterGreedyTest, FindsPureClusters) {
  Rng rng(3);
  ClusteredTableOptions opt;
  opt.num_rows = 12;
  opt.num_clusters = 4;
  opt.noise_flips = 0;
  const Table t = ClusteredTable(opt, &rng);
  ClusterGreedyAnonymizer algo;
  const auto result = ValidateResult(t, 3, algo.Run(t, 3));
  EXPECT_EQ(result.cost, 0u);
}

TEST(ClusterGreedyTest, LeftoversFolded) {
  const Table t = RandomTable(4, 11);  // 11 rows, k=3 -> 3 groups + 2 left
  ClusterGreedyAnonymizer algo;
  const auto result = ValidateResult(t, 3, algo.Run(t, 3));
  EXPECT_EQ(result.partition.TotalMembers(), 11u);
}

TEST(RandomPartitionTest, ValidAndDeterministic) {
  const Table t = RandomTable(5, 17);
  RandomPartitionAnonymizer a(99), b(99);
  const auto ra = ValidateResult(t, 3, a.Run(t, 3));
  const auto rb = ValidateResult(t, 3, b.Run(t, 3));
  EXPECT_EQ(ra.cost, rb.cost);
  EXPECT_EQ(ra.partition.ToString(), rb.partition.ToString());
}

TEST(RandomPartitionTest, GroupsInWlogRange) {
  const Table t = RandomTable(6, 23);
  RandomPartitionAnonymizer algo;
  const auto result = algo.Run(t, 4);
  EXPECT_TRUE(IsValidPartition(result.partition, 23, 4, 7));
}

TEST(SuppressAllTest, SingleGroupCeiling) {
  const Table t = RandomTable(7, 10, 6, 9);
  SuppressAllAnonymizer algo;
  const auto result = ValidateResult(t, 3, algo.Run(t, 3));
  EXPECT_EQ(result.partition.num_groups(), 1u);
  // With a large alphabet every column almost surely disagrees.
  EXPECT_LE(result.cost, 60u);
}

TEST(SuppressAllTest, NoBaselineBeatsExactOptimum) {
  const Table t = RandomTable(8, 10, 4, 3);
  ExactDpAnonymizer exact;
  const size_t opt = exact.Run(t, 2).cost;
  MondrianAnonymizer mondrian;
  ClusterGreedyAnonymizer cluster;
  RandomPartitionAnonymizer random;
  SuppressAllAnonymizer all;
  EXPECT_GE(mondrian.Run(t, 2).cost, opt);
  EXPECT_GE(cluster.Run(t, 2).cost, opt);
  EXPECT_GE(random.Run(t, 2).cost, opt);
  EXPECT_GE(all.Run(t, 2).cost, opt);
}

TEST(BaselinesOnCensusTest, AllValidOnRealisticData) {
  Rng rng(9);
  const Table t = CensusTable({.num_rows = 60}, &rng);
  MondrianAnonymizer mondrian;
  ClusterGreedyAnonymizer cluster;
  RandomPartitionAnonymizer random;
  for (const size_t k : {2u, 5u}) {
    ValidateResult(t, k, mondrian.Run(t, k));
    ValidateResult(t, k, cluster.Run(t, k));
    ValidateResult(t, k, random.Run(t, k));
  }
}

}  // namespace
}  // namespace kanon
