#include "algo/registry.h"

#include "data/generators/uniform.h"
#include "gtest/gtest.h"
#include "util/random.h"

namespace kanon {
namespace {

TEST(RegistryTest, AllKnownNamesResolve) {
  for (const std::string& name : KnownAnonymizers()) {
    const auto algo = MakeAnonymizer(name);
    ASSERT_NE(algo, nullptr) << name;
    EXPECT_EQ(algo->name(), name);
  }
}

TEST(RegistryTest, UnknownNameIsNull) {
  EXPECT_EQ(MakeAnonymizer("definitely_not_an_algorithm"), nullptr);
  EXPECT_EQ(MakeAnonymizer(""), nullptr);
}

TEST(RegistryTest, MakeAnonymizerOrResolvesKnownNames) {
  for (const std::string& name : KnownAnonymizers()) {
    const StatusOr<std::unique_ptr<Anonymizer>> algo =
        MakeAnonymizerOr(name);
    ASSERT_TRUE(algo.ok()) << name;
    EXPECT_EQ((*algo)->name(), name);
  }
}

TEST(RegistryTest, MakeAnonymizerOrDiagnosesUnknownNames) {
  const StatusOr<std::unique_ptr<Anonymizer>> algo =
      MakeAnonymizerOr("definitely_not_an_algorithm");
  ASSERT_FALSE(algo.ok());
  EXPECT_EQ(algo.status().code(), StatusCode::kNotFound);
  // The message carries the full menu: every registry name plus the
  // composition suffixes, so a CLI can print it verbatim.
  for (const std::string& name : KnownAnonymizers()) {
    EXPECT_NE(algo.status().message().find(name), std::string::npos)
        << name;
  }
  EXPECT_NE(algo.status().message().find("+local_search"),
            std::string::npos);
  EXPECT_NE(algo.status().message().find("definitely_not_an_algorithm"),
            std::string::npos);
}

TEST(RegistryTest, LocalSearchComposition) {
  const auto algo = MakeAnonymizer("mondrian+local_search");
  ASSERT_NE(algo, nullptr);
  EXPECT_EQ(algo->name(), "mondrian+local_search");
}

TEST(RegistryTest, LocalSearchOnUnknownBaseIsNull) {
  EXPECT_EQ(MakeAnonymizer("nope+local_search"), nullptr);
}

TEST(RegistryTest, BareLocalSearchSuffixIsNull) {
  EXPECT_EQ(MakeAnonymizer("+local_search"), nullptr);
}

TEST(RegistryTest, EveryRegistryAlgorithmRunsOnSmallInstance) {
  Rng rng(1);
  const Table t = UniformTable(
      {.num_rows = 8, .num_columns = 4, .alphabet = 3}, &rng);
  for (const std::string& name : KnownAnonymizers()) {
    auto algo = MakeAnonymizer(name);
    ASSERT_NE(algo, nullptr);
    ValidateResult(t, 2, algo->Run(t, 2));
  }
}

TEST(RegistryTest, DoubleLocalSearchComposes) {
  const auto algo = MakeAnonymizer("ball_cover+local_search+local_search");
  ASSERT_NE(algo, nullptr);
  EXPECT_EQ(algo->name(), "ball_cover+local_search+local_search");
}

}  // namespace
}  // namespace kanon
