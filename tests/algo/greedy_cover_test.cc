#include "algo/greedy_cover.h"

#include <cmath>
#include <limits>

#include "core/anonymity.h"
#include "data/generators/clustered.h"
#include "data/generators/uniform.h"
#include "gtest/gtest.h"
#include "util/random.h"

namespace kanon {
namespace {

TEST(GreedyCoverTest, FamilySizeSmallCases) {
  // n=4, k=2: C(4,2)+C(4,3) = 6+4 = 10.
  EXPECT_EQ(GreedyCoverAnonymizer::FamilySize(4, 2), 10u);
  // n=5, k=1: C(5,1) = 5.
  EXPECT_EQ(GreedyCoverAnonymizer::FamilySize(5, 1), 5u);
  // n=6, k=3: C(6,3)+C(6,4)+C(6,5) = 20+15+6 = 41.
  EXPECT_EQ(GreedyCoverAnonymizer::FamilySize(6, 3), 41u);
}

TEST(GreedyCoverTest, FamilySizeSaturatesInsteadOfOverflowing) {
  EXPECT_EQ(GreedyCoverAnonymizer::FamilySize(200, 30),
            std::numeric_limits<size_t>::max());
}

TEST(GreedyCoverTest, ValidOnRandomTable) {
  Rng rng(1);
  const Table t = UniformTable(
      {.num_rows = 10, .num_columns = 5, .alphabet = 3}, &rng);
  GreedyCoverAnonymizer algo;
  const auto result = ValidateResult(t, 2, algo.Run(t, 2));
  EXPECT_TRUE(IsValidPartition(result.partition, 10, 2, 3));
}

TEST(GreedyCoverTest, KOneYieldsZeroCost) {
  Rng rng(2);
  const Table t = UniformTable({.num_rows = 6, .num_columns = 4}, &rng);
  GreedyCoverAnonymizer algo;
  const auto result = ValidateResult(t, 1, algo.Run(t, 1));
  EXPECT_EQ(result.cost, 0u);  // singletons suppress nothing
}

TEST(GreedyCoverTest, PerfectClustersCostZero) {
  // Clusters of exact duplicates of size >= k: greedy must find the free
  // groups (diameter 0 -> ratio 0).
  Rng rng(3);
  ClusteredTableOptions opt;
  opt.num_rows = 12;
  opt.num_clusters = 4;  // 3 rows per cluster
  opt.noise_flips = 0;
  opt.num_columns = 5;
  const Table t = ClusteredTable(opt, &rng);
  GreedyCoverAnonymizer algo;
  const auto result = ValidateResult(t, 3, algo.Run(t, 3));
  EXPECT_EQ(result.cost, 0u);
  EXPECT_EQ(result.diameter_sum, 0u);
}

TEST(GreedyCoverTest, AnonymizedTableIsKAnonymous) {
  Rng rng(4);
  const Table t = UniformTable(
      {.num_rows = 12, .num_columns = 4, .alphabet = 2}, &rng);
  GreedyCoverAnonymizer algo;
  const auto result = algo.Run(t, 3);
  const Suppressor s = result.MakeSuppressor(t);
  EXPECT_TRUE(IsKAnonymizer(s, t, 3));
  EXPECT_EQ(s.Stars(), result.cost);
}

TEST(GreedyCoverTest, NotesRecordFamilySize) {
  Rng rng(5);
  const Table t = UniformTable({.num_rows = 8, .num_columns = 3}, &rng);
  GreedyCoverAnonymizer algo;
  const auto result = algo.Run(t, 2);
  EXPECT_NE(result.notes.find("family="), std::string::npos);
}

TEST(GreedyCoverDeathTest, RefusesHugeFamily) {
  Rng rng(6);
  const Table t = UniformTable({.num_rows = 40, .num_columns = 3}, &rng);
  GreedyCoverOptions opt;
  opt.max_family_size = 1000;
  GreedyCoverAnonymizer algo(opt);
  EXPECT_DEATH(algo.Run(t, 4), "family C too large");
}

TEST(GreedyCoverDeathTest, FewerRowsThanKDies) {
  Rng rng(7);
  const Table t = UniformTable({.num_rows = 2, .num_columns = 3}, &rng);
  GreedyCoverAnonymizer algo;
  EXPECT_DEATH(algo.Run(t, 3), "Check failed");
}

// Property: on random instances the greedy-cover algorithm respects the
// Theorem 4.1 ratio against the diameter-sum lower bound
// (k/2) * dPi <= OPT (we validate against OPT separately in
// approx_ratio_test.cc; here we check structural validity broadly).
class GreedyCoverPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GreedyCoverPropertyTest, AlwaysValidAndKAnonymous) {
  Rng rng(GetParam());
  const uint32_t n = 8 + GetParam() % 5;
  const size_t k = 2 + GetParam() % 2;
  const Table t = UniformTable(
      {.num_rows = n, .num_columns = 5, .alphabet = 3}, &rng);
  GreedyCoverAnonymizer algo;
  const auto result = ValidateResult(t, k, algo.Run(t, k));
  EXPECT_TRUE(IsValidPartition(result.partition, n, k, 2 * k - 1));
  EXPECT_LE(result.cost,
            static_cast<size_t>(n) * t.num_columns());  // never worse than all-stars
}

INSTANTIATE_TEST_SUITE_P(Seeds, GreedyCoverPropertyTest,
                         ::testing::Range<uint64_t>(1, 13));

}  // namespace
}  // namespace kanon
