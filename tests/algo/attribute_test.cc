#include "algo/attribute_exact.h"
#include "algo/attribute_greedy.h"

#include "core/anonymity.h"
#include "data/generators/uniform.h"
#include "gtest/gtest.h"
#include "util/random.h"

namespace kanon {
namespace {

Table Rows(const std::vector<std::vector<std::string>>& rows) {
  Schema schema;
  for (size_t c = 0; c < rows[0].size(); ++c) {
    schema.AddAttribute("a" + std::to_string(c));
  }
  Table t(std::move(schema));
  for (const auto& row : rows) t.AppendStringRow(row);
  return t;
}

TEST(KeptSetFeasibleTest, FullAndEmpty) {
  const Table t = Rows({{"a", "b"}, {"a", "b"}, {"a", "c"}});
  // Full kept set: (a,b) x2, (a,c) x1 -> level 1.
  EXPECT_TRUE(KeptSetFeasible(t, 0b11, 1));
  EXPECT_FALSE(KeptSetFeasible(t, 0b11, 2));
  // Empty kept set: all rows identical empty projection -> level 3.
  EXPECT_TRUE(KeptSetFeasible(t, 0, 3));
}

TEST(KeptSetFeasibleTest, MonotoneDownward) {
  Rng rng(1);
  const Table t = UniformTable(
      {.num_rows = 12, .num_columns = 5, .alphabet = 2}, &rng);
  for (uint64_t mask = 0; mask < 32; ++mask) {
    for (ColId c = 0; c < 5; ++c) {
      const uint64_t sub = mask & ~(uint64_t{1} << c);
      if (sub == mask) continue;
      // Feasibility of mask implies feasibility of any subset.
      if (KeptSetFeasible(t, mask, 3)) {
        EXPECT_TRUE(KeptSetFeasible(t, sub, 3))
            << "mask=" << mask << " sub=" << sub;
      }
    }
  }
}

TEST(ProjectionAnonymityLevelTest, MatchesGroupBy) {
  const Table t = Rows({{"a", "x"}, {"a", "y"}, {"b", "x"}, {"a", "x"}});
  EXPECT_EQ(ProjectionAnonymityLevel(t, 0b01), 1u);  // a:3, b:1
  EXPECT_EQ(ProjectionAnonymityLevel(t, 0b10), 1u);  // x:3, y:1
  EXPECT_EQ(ProjectionAnonymityLevel(t, 0b00), 4u);
}

TEST(ExactAttributeTest, KeepsAllWhenAlreadyAnonymous) {
  const Table t = Rows({{"a", "b"}, {"a", "b"}});
  ExactAttributeAnonymizer algo;
  const auto result = ValidateAttributeResult(t, 2, algo.Solve(t, 2));
  EXPECT_TRUE(result.suppressed.empty());
}

TEST(ExactAttributeTest, SuppressesDistinguishingColumn) {
  const Table t = Rows({{"a", "p"}, {"a", "q"}});
  ExactAttributeAnonymizer algo;
  const auto result = ValidateAttributeResult(t, 2, algo.Solve(t, 2));
  EXPECT_EQ(result.suppressed, std::vector<ColId>{1});
}

TEST(ExactAttributeTest, MinimalityAgainstBruteForce) {
  Rng rng(2);
  const Table t = UniformTable(
      {.num_rows = 10, .num_columns = 6, .alphabet = 2}, &rng);
  ExactAttributeAnonymizer algo;
  const auto result = ValidateAttributeResult(t, 2, algo.Solve(t, 2));
  // Brute force: no kept set with fewer suppressions is feasible.
  const size_t best = result.num_suppressed();
  for (uint64_t kept = 0; kept < 64; ++kept) {
    const size_t suppressed = 6 - static_cast<size_t>(
        __builtin_popcountll(kept));
    if (suppressed < best) {
      EXPECT_FALSE(KeptSetFeasible(t, kept, 2));
    }
  }
}

TEST(ExactAttributeTest, SuppressorIsAttributeSuppressor) {
  Rng rng(3);
  const Table t = UniformTable(
      {.num_rows = 8, .num_columns = 4, .alphabet = 2}, &rng);
  ExactAttributeAnonymizer algo;
  const auto result = algo.Solve(t, 3);
  const Suppressor s = result.MakeSuppressor(t);
  EXPECT_TRUE(s.IsAttributeSuppressor());
  EXPECT_TRUE(IsKAnonymizer(s, t, 3));
}

TEST(GreedyAttributeTest, ValidAndFeasible) {
  Rng rng(4);
  const Table t = UniformTable(
      {.num_rows = 12, .num_columns = 6, .alphabet = 2}, &rng);
  GreedyAttributeAnonymizer algo;
  const auto result = ValidateAttributeResult(t, 3, algo.Solve(t, 3));
  const Suppressor s = result.MakeSuppressor(t);
  EXPECT_TRUE(IsKAnonymizer(s, t, 3));
}

TEST(GreedyAttributeTest, NeverBeatsExact) {
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    Rng rng(seed);
    const Table t = UniformTable(
        {.num_rows = 10, .num_columns = 5, .alphabet = 2}, &rng);
    ExactAttributeAnonymizer exact;
    GreedyAttributeAnonymizer greedy;
    EXPECT_GE(greedy.Solve(t, 2).num_suppressed(),
              exact.Solve(t, 2).num_suppressed());
  }
}

TEST(GreedyAttributeTest, AlreadyAnonymousSuppressesNothing) {
  const Table t = Rows({{"a", "b"}, {"a", "b"}, {"a", "b"}});
  GreedyAttributeAnonymizer algo;
  EXPECT_TRUE(algo.Solve(t, 3).suppressed.empty());
}

TEST(AttributeResultTest, NotesPopulated) {
  Rng rng(5);
  const Table t = UniformTable(
      {.num_rows = 8, .num_columns = 4, .alphabet = 2}, &rng);
  ExactAttributeAnonymizer exact;
  GreedyAttributeAnonymizer greedy;
  EXPECT_NE(exact.Solve(t, 2).notes.find("kept_sets_checked="),
            std::string::npos);
  EXPECT_NE(greedy.Solve(t, 2).notes.find("feasibility_checks="),
            std::string::npos);
}

TEST(ExactAttributeDeathTest, TooManyColumnsDies) {
  Rng rng(6);
  const Table t = UniformTable(
      {.num_rows = 4, .num_columns = 30, .alphabet = 2}, &rng);
  ExactAttributeAnonymizer algo;
  EXPECT_DEATH(algo.Solve(t, 2), "exponential in m");
}

}  // namespace
}  // namespace kanon
