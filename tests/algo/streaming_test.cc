#include "algo/streaming.h"

#include <memory>

#include "algo/ball_cover.h"
#include "algo/cluster_greedy.h"
#include "algo/registry.h"
#include "core/anonymity.h"
#include "data/generators/clustered.h"
#include "data/generators/uniform.h"
#include "gtest/gtest.h"
#include "util/random.h"

namespace kanon {
namespace {

TEST(StreamingTest, NameComposition) {
  StreamingAnonymizer algo(std::make_unique<BallCoverAnonymizer>());
  EXPECT_EQ(algo.name(), "ball_cover@stream");
}

TEST(StreamingTest, SingleBatchMatchesBase) {
  Rng rng(1);
  const Table t = UniformTable(
      {.num_rows = 30, .num_columns = 6, .alphabet = 3}, &rng);
  StreamingOptions opt;
  opt.batch_size = 100;  // one batch
  StreamingAnonymizer streaming(std::make_unique<BallCoverAnonymizer>(),
                                opt);
  BallCoverAnonymizer base;
  EXPECT_EQ(streaming.Run(t, 3).cost, base.Run(t, 3).cost);
}

TEST(StreamingTest, ValidAcrossBatchSizes) {
  Rng rng(2);
  const Table t = UniformTable(
      {.num_rows = 53, .num_columns = 5, .alphabet = 4}, &rng);
  for (const size_t batch : {7u, 10u, 16u, 53u}) {
    StreamingOptions opt;
    opt.batch_size = batch;
    StreamingAnonymizer algo(std::make_unique<BallCoverAnonymizer>(),
                             opt);
    const auto result = ValidateResult(t, 3, algo.Run(t, 3));
    EXPECT_EQ(result.partition.TotalMembers(), 53u) << batch;
  }
}

TEST(StreamingTest, ShortTailFoldedIntoPreviousBatch) {
  // 25 rows, batch 10, k=4: batches [0,10), [10,20), tail of 5 >= k
  // stays. With k=7 the tail of 5 < 7 folds into [10,25).
  Rng rng(3);
  const Table t = UniformTable(
      {.num_rows = 25, .num_columns = 4, .alphabet = 3}, &rng);
  StreamingOptions opt;
  opt.batch_size = 10;
  StreamingAnonymizer algo(std::make_unique<BallCoverAnonymizer>(), opt);
  const auto result = ValidateResult(t, 7, algo.Run(t, 7));
  EXPECT_NE(result.notes.find("batches=2"), std::string::npos);
}

TEST(StreamingTest, GroupsNeverSpanBatches) {
  Rng rng(4);
  const Table t = UniformTable(
      {.num_rows = 40, .num_columns = 5, .alphabet = 3}, &rng);
  StreamingOptions opt;
  opt.batch_size = 10;
  StreamingAnonymizer algo(std::make_unique<BallCoverAnonymizer>(), opt);
  const auto result = algo.Run(t, 2);
  for (const Group& g : result.partition.groups) {
    const RowId batch = *std::min_element(g.begin(), g.end()) / 10;
    for (const RowId r : g) {
      EXPECT_EQ(r / 10, batch);
    }
  }
}

TEST(StreamingTest, CostAtLeastWholeTableRun) {
  // Batching restricts the partition space, so cost can only match or
  // exceed the whole-table run of the same (deterministic) base.
  Rng rng(5);
  ClusteredTableOptions copt;
  copt.num_rows = 48;
  copt.num_columns = 6;
  copt.num_clusters = 6;
  copt.noise_flips = 0;
  const Table t = ClusteredTable(copt, &rng);
  ClusterGreedyAnonymizer whole;
  const size_t whole_cost = whole.Run(t, 4).cost;
  StreamingOptions opt;
  opt.batch_size = 8;
  StreamingAnonymizer streaming(
      std::make_unique<ClusterGreedyAnonymizer>(), opt);
  EXPECT_GE(streaming.Run(t, 4).cost, whole_cost);
}

TEST(StreamingTest, AnonymityGuaranteeHolds) {
  Rng rng(6);
  const Table t = UniformTable(
      {.num_rows = 64, .num_columns = 5, .alphabet = 3}, &rng);
  StreamingOptions opt;
  opt.batch_size = 16;
  StreamingAnonymizer algo(std::make_unique<BallCoverAnonymizer>(), opt);
  const auto result = algo.Run(t, 4);
  EXPECT_TRUE(IsKAnonymizer(result.MakeSuppressor(t), t, 4));
}

TEST(StreamingDeathTest, BatchSmallerThanKDies) {
  Rng rng(7);
  const Table t = UniformTable({.num_rows = 20, .num_columns = 4}, &rng);
  StreamingOptions opt;
  opt.batch_size = 2;
  StreamingAnonymizer algo(std::make_unique<BallCoverAnonymizer>(), opt);
  EXPECT_DEATH(algo.Run(t, 5), "batch_size must be at least k");
}

TEST(SelectRowsTest, OrderAndDuplicates) {
  Rng rng(8);
  const Table t = UniformTable({.num_rows = 10, .num_columns = 3}, &rng);
  const Table s = t.SelectRows({4, 1, 4});
  ASSERT_EQ(s.num_rows(), 3u);
  EXPECT_EQ(s.DecodeRow(0), t.DecodeRow(4));
  EXPECT_EQ(s.DecodeRow(1), t.DecodeRow(1));
  EXPECT_EQ(s.DecodeRow(2), t.DecodeRow(4));
}

TEST(SelectRowsDeathTest, OutOfRangeDies) {
  Rng rng(9);
  const Table t = UniformTable({.num_rows = 5, .num_columns = 3}, &rng);
  EXPECT_DEATH(t.SelectRows({7}), "Check failed");
}

}  // namespace
}  // namespace kanon
