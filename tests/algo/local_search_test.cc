#include "algo/local_search.h"

#include <memory>

#include "algo/ball_cover.h"
#include "algo/exact_dp.h"
#include "algo/random_partition.h"
#include "core/cost.h"
#include "data/generators/clustered.h"
#include "data/generators/uniform.h"
#include "gtest/gtest.h"
#include "util/random.h"

namespace kanon {
namespace {

TEST(ImprovePartitionTest, LeavesOptimumAlone) {
  // Two duplicate pairs optimally paired: no move can help.
  Schema schema({"a", "b"});
  Table t(std::move(schema));
  t.AppendStringRow({"x", "y"});
  t.AppendStringRow({"x", "y"});
  t.AppendStringRow({"p", "q"});
  t.AppendStringRow({"p", "q"});
  Partition p;
  p.groups = {{0, 1}, {2, 3}};
  const size_t moves = ImprovePartition(t, 2, {}, &p);
  EXPECT_EQ(moves, 0u);
  EXPECT_EQ(PartitionCost(t, p), 0u);
}

TEST(ImprovePartitionTest, SwapFixesCrossedPairs) {
  // Pairs deliberately crossed: swap should uncross them to cost 0.
  Schema schema({"a", "b", "c"});
  Table t(std::move(schema));
  t.AppendStringRow({"x", "x", "x"});  // 0
  t.AppendStringRow({"y", "y", "y"});  // 1
  t.AppendStringRow({"x", "x", "x"});  // 2
  t.AppendStringRow({"y", "y", "y"});  // 3
  Partition p;
  p.groups = {{0, 1}, {2, 3}};  // crossed: cost 3+3... all columns differ
  const size_t before = PartitionCost(t, p);
  ASSERT_GT(before, 0u);
  ImprovePartition(t, 2, {}, &p);
  EXPECT_EQ(PartitionCost(t, p), 0u);
}

TEST(ImprovePartitionTest, MoveShrinksOversizedGroup) {
  // Group {0,1,2} where 2 really belongs with {3,4}: the move rule must
  // relocate it.
  Schema schema({"a", "b"});
  Table t(std::move(schema));
  t.AppendStringRow({"x", "x"});  // 0
  t.AppendStringRow({"x", "x"});  // 1
  t.AppendStringRow({"z", "z"});  // 2 (misplaced)
  t.AppendStringRow({"z", "z"});  // 3
  t.AppendStringRow({"z", "z"});  // 4
  Partition p;
  p.groups = {{0, 1, 2}, {3, 4}};
  ImprovePartition(t, 2, {}, &p);
  EXPECT_EQ(PartitionCost(t, p), 0u);
  EXPECT_TRUE(IsValidPartition(p, 5, 2, 5));
}

TEST(ImprovePartitionTest, ZeroPassesIsNoop) {
  Rng rng(1);
  const Table t = UniformTable({.num_rows = 8, .num_columns = 4}, &rng);
  Partition p;
  p.groups = {{0, 1, 2, 3}, {4, 5, 6, 7}};
  const size_t before = PartitionCost(t, p);
  LocalSearchOptions opt;
  opt.max_passes = 0;
  EXPECT_EQ(ImprovePartition(t, 2, opt, &p), 0u);
  EXPECT_EQ(PartitionCost(t, p), before);
}

// Property: local search never increases cost and preserves validity.
class LocalSearchPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(LocalSearchPropertyTest, NeverWorseAndValid) {
  Rng rng(GetParam());
  const uint32_t n = 12;
  const size_t k = 2 + GetParam() % 3;
  const Table t = UniformTable(
      {.num_rows = n, .num_columns = 6, .alphabet = 3}, &rng);
  Group all(n);
  for (RowId r = 0; r < n; ++r) all[r] = r;
  rng.Shuffle(&all);
  Partition p;
  p.groups = {all};
  p = SplitLargeGroups(p, k);
  const size_t before = PartitionCost(t, p);
  ImprovePartition(t, k, {}, &p);
  EXPECT_LE(PartitionCost(t, p), before);
  EXPECT_TRUE(IsValidPartition(p, n, k, n));
}

INSTANTIATE_TEST_SUITE_P(Seeds, LocalSearchPropertyTest,
                         ::testing::Range<uint64_t>(1, 13));

TEST(LocalSearchAnonymizerTest, WrapsBaseAndImproves) {
  Rng rng(2);
  ClusteredTableOptions opt;
  opt.num_rows = 12;
  opt.num_clusters = 4;
  opt.noise_flips = 0;
  const Table t = ClusteredTable(opt, &rng);
  LocalSearchAnonymizer algo(
      std::make_unique<RandomPartitionAnonymizer>(7));
  EXPECT_EQ(algo.name(), "random_partition+local_search");
  RandomPartitionAnonymizer base(7);
  const size_t base_cost = base.Run(t, 3).cost;
  const auto improved = ValidateResult(t, 3, algo.Run(t, 3));
  EXPECT_LE(improved.cost, base_cost);
}

TEST(LocalSearchAnonymizerTest, NeverBelowOptimum) {
  Rng rng(3);
  const Table t = UniformTable(
      {.num_rows = 10, .num_columns = 5, .alphabet = 3}, &rng);
  ExactDpAnonymizer exact;
  const size_t opt = exact.Run(t, 2).cost;
  LocalSearchAnonymizer algo(std::make_unique<BallCoverAnonymizer>());
  const auto result = ValidateResult(t, 2, algo.Run(t, 2));
  EXPECT_GE(result.cost, opt);
}

TEST(LocalSearchAnonymizerTest, NotesIncludeBaseCost) {
  Rng rng(4);
  const Table t = UniformTable({.num_rows = 8, .num_columns = 4}, &rng);
  LocalSearchAnonymizer algo(std::make_unique<BallCoverAnonymizer>());
  const auto result = algo.Run(t, 2);
  EXPECT_NE(result.notes.find("base_cost="), std::string::npos);
}

}  // namespace
}  // namespace kanon
