#include "algo/annealing.h"

#include <memory>

#include "algo/exact_dp.h"
#include "algo/random_partition.h"
#include "algo/registry.h"
#include "data/generators/clustered.h"
#include "data/generators/uniform.h"
#include "gtest/gtest.h"
#include "util/random.h"

namespace kanon {
namespace {

TEST(AnnealingTest, NameComposition) {
  AnnealingAnonymizer algo(std::make_unique<RandomPartitionAnonymizer>());
  EXPECT_EQ(algo.name(), "random_partition+annealing");
}

TEST(AnnealingTest, NeverWorseThanBase) {
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    Rng rng(seed);
    const Table t = UniformTable(
        {.num_rows = 14, .num_columns = 6, .alphabet = 3}, &rng);
    RandomPartitionAnonymizer base(seed);
    const size_t base_cost = base.Run(t, 3).cost;
    AnnealingAnonymizer algo(
        std::make_unique<RandomPartitionAnonymizer>(seed));
    const auto result = ValidateResult(t, 3, algo.Run(t, 3));
    EXPECT_LE(result.cost, base_cost);
  }
}

TEST(AnnealingTest, RecoversPlantedClustersFromRandomStart) {
  Rng rng(7);
  ClusteredTableOptions opt;
  opt.num_rows = 12;
  opt.num_clusters = 4;
  opt.noise_flips = 0;
  const Table t = ClusteredTable(opt, &rng);
  // Random chop almost surely crosses clusters; annealing (with merges
  // and splits) should find the zero-cost grouping.
  AnnealingOptions aopt;
  aopt.iterations = 30'000;
  AnnealingAnonymizer algo(std::make_unique<RandomPartitionAnonymizer>(3),
                           aopt);
  const auto result = ValidateResult(t, 3, algo.Run(t, 3));
  EXPECT_EQ(result.cost, 0u);
}

TEST(AnnealingTest, NeverBelowOptimum) {
  Rng rng(9);
  const Table t = UniformTable(
      {.num_rows = 10, .num_columns = 5, .alphabet = 3}, &rng);
  ExactDpAnonymizer exact;
  const size_t opt = exact.Run(t, 2).cost;
  AnnealingAnonymizer algo(std::make_unique<RandomPartitionAnonymizer>(1));
  EXPECT_GE(ValidateResult(t, 2, algo.Run(t, 2)).cost, opt);
}

TEST(AnnealingTest, DeterministicForFixedSeeds) {
  Rng rng(11);
  const Table t = UniformTable(
      {.num_rows = 12, .num_columns = 5, .alphabet = 4}, &rng);
  AnnealingOptions aopt;
  aopt.seed = 5;
  AnnealingAnonymizer a(std::make_unique<RandomPartitionAnonymizer>(2),
                        aopt);
  AnnealingAnonymizer b(std::make_unique<RandomPartitionAnonymizer>(2),
                        aopt);
  EXPECT_EQ(a.Run(t, 3).cost, b.Run(t, 3).cost);
}

TEST(AnnealingTest, RegistryComposition) {
  const auto algo = MakeAnonymizer("ball_cover+annealing");
  ASSERT_NE(algo, nullptr);
  EXPECT_EQ(algo->name(), "ball_cover+annealing");
  Rng rng(13);
  const Table t = UniformTable(
      {.num_rows = 10, .num_columns = 4, .alphabet = 3}, &rng);
  ValidateResult(t, 2, algo->Run(t, 2));
}

TEST(AnnealingTest, ZeroIterationsReturnsBaseResult) {
  Rng rng(15);
  const Table t = UniformTable(
      {.num_rows = 10, .num_columns = 4, .alphabet = 3}, &rng);
  AnnealingOptions aopt;
  aopt.iterations = 0;
  RandomPartitionAnonymizer base(4);
  AnnealingAnonymizer algo(std::make_unique<RandomPartitionAnonymizer>(4),
                           aopt);
  EXPECT_EQ(algo.Run(t, 3).cost, base.Run(t, 3).cost);
}

TEST(AnnealingTest, NotesRecordAcceptance) {
  Rng rng(17);
  const Table t = UniformTable(
      {.num_rows = 10, .num_columns = 4, .alphabet = 3}, &rng);
  AnnealingAnonymizer algo(std::make_unique<RandomPartitionAnonymizer>(1));
  const auto result = algo.Run(t, 2);
  EXPECT_NE(result.notes.find("accepted="), std::string::npos);
  EXPECT_NE(result.notes.find("base_cost="), std::string::npos);
}

}  // namespace
}  // namespace kanon
