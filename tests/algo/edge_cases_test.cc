#include "algo/registry.h"
#include "core/anonymity.h"
#include "data/generators/uniform.h"
#include "gtest/gtest.h"
#include "util/random.h"

/// \file
/// Degenerate-input suite run against every registry algorithm: constant
/// tables, all-duplicate tables, single-column tables, n == k, k == 1,
/// and duplicate-heavy multisets. Every algorithm must stay valid and,
/// where the optimum is obvious (cost 0), achieve it.

namespace kanon {
namespace {

Table ConstantTable(uint32_t n, uint32_t m) {
  Schema schema;
  for (uint32_t c = 0; c < m; ++c) {
    schema.AddAttribute("a" + std::to_string(c));
  }
  Table t(std::move(schema));
  const std::vector<std::string> row(m, "same");
  for (uint32_t r = 0; r < n; ++r) t.AppendStringRow(row);
  return t;
}

std::vector<std::string> EntryAlgorithms() {
  // Every registry algorithm that can run on n <= 12 quickly.
  return {"greedy_cover", "ball_cover",     "ball_cover_pairwise",
          "exact_dp",     "branch_bound",   "mondrian",
          "cluster_greedy", "mdav",         "random_partition",
          "suppress_all", "attribute_greedy"};
}

class EdgeCaseTest : public ::testing::TestWithParam<std::string> {};

TEST_P(EdgeCaseTest, ConstantTableIsFree) {
  const Table t = ConstantTable(9, 4);
  auto algo = MakeAnonymizer(GetParam());
  ASSERT_NE(algo, nullptr);
  const auto result = ValidateResult(t, 3, algo->Run(t, 3));
  EXPECT_EQ(result.cost, 0u);
}

TEST_P(EdgeCaseTest, SingleColumnTable) {
  Schema schema({"only"});
  Table t(std::move(schema));
  for (int i = 0; i < 4; ++i) t.AppendStringRow({"x"});
  for (int i = 0; i < 4; ++i) t.AppendStringRow({"y"});
  auto algo = MakeAnonymizer(GetParam());
  ASSERT_NE(algo, nullptr);
  const auto result = ValidateResult(t, 2, algo->Run(t, 2));
  EXPECT_LE(result.cost, 8u);  // worst case: star the single column
}

TEST_P(EdgeCaseTest, NEqualsK) {
  Rng rng(1);
  const Table t = UniformTable(
      {.num_rows = 5, .num_columns = 4, .alphabet = 3}, &rng);
  auto algo = MakeAnonymizer(GetParam());
  ASSERT_NE(algo, nullptr);
  const auto result = ValidateResult(t, 5, algo->Run(t, 5));
  EXPECT_EQ(result.partition.num_groups(), 1u);
}

TEST_P(EdgeCaseTest, KOneIsAlwaysValid) {
  Rng rng(2);
  const Table t = UniformTable(
      {.num_rows = 8, .num_columns = 4, .alphabet = 3}, &rng);
  auto algo = MakeAnonymizer(GetParam());
  ASSERT_NE(algo, nullptr);
  ValidateResult(t, 1, algo->Run(t, 1));
}

TEST_P(EdgeCaseTest, DuplicateHeavyMultiset) {
  // Three distinct tuples with multiplicities 6/3/3: plenty of free
  // grouping available at k = 3.
  Schema schema({"a", "b"});
  Table t(std::move(schema));
  for (int i = 0; i < 6; ++i) t.AppendStringRow({"p", "q"});
  for (int i = 0; i < 3; ++i) t.AppendStringRow({"r", "s"});
  for (int i = 0; i < 3; ++i) t.AppendStringRow({"t", "u"});
  auto algo = MakeAnonymizer(GetParam());
  ASSERT_NE(algo, nullptr);
  const auto result = ValidateResult(t, 3, algo->Run(t, 3));
  const std::string& name = GetParam();
  // Structure-aware algorithms must find the zero-cost grouping; the
  // random and suppress-all baselines are exempt by design.
  if (name != "random_partition" && name != "suppress_all") {
    EXPECT_EQ(result.cost, 0u) << name;
  }
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, EdgeCaseTest,
                         ::testing::ValuesIn(EntryAlgorithms()));

}  // namespace
}  // namespace kanon
