#include "algo/shard_merge.h"

#include <memory>
#include <vector>

#include "algo/anonymizer.h"
#include "algo/registry.h"
#include "algo/shard_plan.h"
#include "core/bounds.h"
#include "core/cost.h"
#include "data/generators/uniform.h"
#include "fault/fault.h"
#include "gtest/gtest.h"
#include "util/random.h"
#include "util/run_context.h"

/// \file
/// MergeRepair contract, including the property test over random
/// instances: plan + per-shard solve + merge always yields a *valid*
/// k-anonymous partition of the full table whose suppression cost obeys
/// the Lemma 4.1 diameter sandwich
///   HalfDiameterVolumeBound <= PartitionCost <= DiameterVolumeUpperBound
/// (both bounds evaluated on the merged partition's own diameter
/// profile — the per-partition halves of the paper's Lemma 4.1).

namespace kanon {
namespace {

TEST(ShardMergeTest, MergedPartitionIsValidOnRandomInstances) {
  Rng rng(4242);
  std::unique_ptr<Anonymizer> inner = MakeAnonymizer("mdav");
  for (int trial = 0; trial < 12; ++trial) {
    UniformTableOptions table_options;
    table_options.num_rows =
        static_cast<uint32_t>(rng.UniformInt(40, 160));
    table_options.num_columns = static_cast<uint32_t>(rng.UniformInt(2, 5));
    table_options.alphabet = static_cast<uint32_t>(rng.UniformInt(2, 5));
    const Table table = UniformTable(table_options, &rng);
    const size_t n = table.num_rows();
    const size_t k = static_cast<size_t>(rng.UniformInt(2, 5));

    ShardOptions options;
    options.shards = static_cast<size_t>(rng.UniformInt(2, 5));
    RunContext ctx;
    StatusOr<ShardPlan> plan = PlanShards(table, k, options, &ctx);
    ASSERT_TRUE(plan.ok()) << plan.status().message();

    std::vector<Partition> locals;
    for (const Group& rows : plan->shards) {
      const Table shard = table.SelectRows(rows);
      const AnonymizationResult solved = inner->Run(shard, k);
      ASSERT_TRUE(solved.completed());
      locals.push_back(solved.partition);
    }

    StatusOr<ShardMergeOutcome> merged =
        MergeShardPartitions(table, *plan, locals, k, &ctx);
    ASSERT_TRUE(merged.ok()) << merged.status().message();
    EXPECT_TRUE(IsValidPartition(merged->partition,
                                 static_cast<RowId>(n), k, n))
        << "trial " << trial;
    // Valid per-shard inputs need no boundary repair: the union of
    // per-shard k-anonymous partitions is already k-anonymous.
    EXPECT_EQ(merged->repair_merges, 0u);

    // Lemma 4.1 sandwich on the merged partition's diameter profile.
    const size_t cost = PartitionCost(table, merged->partition);
    EXPECT_GE(cost, HalfDiameterVolumeBound(table, merged->partition))
        << "trial " << trial;
    EXPECT_LE(cost, DiameterVolumeUpperBound(table, merged->partition))
        << "trial " << trial;
  }
}

TEST(ShardMergeTest, RepairsUndersizedBoundaryGroupsSmallestFirst) {
  Rng rng(7);
  const Table table =
      UniformTable({.num_rows = 60, .num_columns = 3, .alphabet = 3},
                   &rng);
  ShardOptions options;
  options.shards = 3;
  RunContext ctx;
  StatusOr<ShardPlan> plan = PlanShards(table, 4, options, &ctx);
  ASSERT_TRUE(plan.ok());
  ASSERT_EQ(plan->num_shards(), 3u);

  // Hand-build deliberately undersized shard partitions: shard 0 split
  // into a singleton plus the rest, the others left whole. The merge
  // must fold the undersized groups back to validity.
  std::vector<Partition> locals(3);
  for (size_t s = 0; s < 3; ++s) {
    const size_t rows = plan->shards[s].size();
    if (s == 0) {
      Group rest;
      for (RowId r = 1; r < static_cast<RowId>(rows); ++r) {
        rest.push_back(r);
      }
      locals[s].groups = {Group{0}, rest};
    } else {
      Group all;
      for (RowId r = 0; r < static_cast<RowId>(rows); ++r) {
        all.push_back(r);
      }
      locals[s].groups = {all};
    }
  }
  StatusOr<ShardMergeOutcome> merged =
      MergeShardPartitions(table, *plan, locals, 4, &ctx);
  ASSERT_TRUE(merged.ok()) << merged.status().message();
  EXPECT_GE(merged->repair_merges, 1u);
  EXPECT_TRUE(
      IsValidPartition(merged->partition, table.num_rows(), 4,
                       table.num_rows()));
  const size_t cost = PartitionCost(table, merged->partition);
  EXPECT_GE(cost, HalfDiameterVolumeBound(table, merged->partition));
  EXPECT_LE(cost, DiameterVolumeUpperBound(table, merged->partition));
}

TEST(ShardMergeTest, RejectsNonPartitionInputsTyped) {
  Rng rng(8);
  const Table table =
      UniformTable({.num_rows = 30, .num_columns = 2, .alphabet = 3},
                   &rng);
  ShardOptions options;
  options.shards = 2;
  RunContext ctx;
  StatusOr<ShardPlan> plan = PlanShards(table, 3, options, &ctx);
  ASSERT_TRUE(plan.ok());
  ASSERT_EQ(plan->num_shards(), 2u);

  // Wrong partition count.
  std::vector<Partition> too_few(1);
  EXPECT_EQ(MergeShardPartitions(table, *plan, too_few, 3, &ctx)
                .status()
                .code(),
            StatusCode::kInvalidArgument);

  const auto full_local = [&](size_t s) {
    Group all;
    for (RowId r = 0; r < static_cast<RowId>(plan->shards[s].size());
         ++r) {
      all.push_back(r);
    }
    Partition p;
    p.groups = {all};
    return p;
  };

  // Duplicate local index.
  std::vector<Partition> dup = {full_local(0), full_local(1)};
  dup[0].groups[0][1] = dup[0].groups[0][0];
  EXPECT_EQ(
      MergeShardPartitions(table, *plan, dup, 3, &ctx).status().code(),
      StatusCode::kInvalidArgument);

  // Out-of-range local index.
  std::vector<Partition> oob = {full_local(0), full_local(1)};
  oob[1].groups[0][0] = static_cast<RowId>(plan->shards[1].size());
  EXPECT_EQ(
      MergeShardPartitions(table, *plan, oob, 3, &ctx).status().code(),
      StatusCode::kInvalidArgument);

  // Missing a row (does not cover the shard).
  std::vector<Partition> uncovered = {full_local(0), full_local(1)};
  uncovered[0].groups[0].pop_back();
  EXPECT_EQ(MergeShardPartitions(table, *plan, uncovered, 3, &ctx)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(ShardMergeTest, FaultSiteDeclinesTyped) {
  Rng rng(9);
  const Table table =
      UniformTable({.num_rows = 30, .num_columns = 2, .alphabet = 3},
                   &rng);
  ShardOptions options;
  options.shards = 2;
  RunContext plan_ctx;
  StatusOr<ShardPlan> plan = PlanShards(table, 3, options, &plan_ctx);
  ASSERT_TRUE(plan.ok());
  std::vector<Partition> locals;
  std::unique_ptr<Anonymizer> inner = MakeAnonymizer("mdav");
  for (const Group& rows : plan->shards) {
    locals.push_back(inner->Run(table.SelectRows(rows), 3).partition);
  }

  FaultPlan fault_plan;
  fault_plan.seed = 11;
  fault_plan.sites.push_back({.site = "shard.merge", .first_n = 1});
  ScopedFaultInjection injection(fault_plan);
  RunContext ctx;
  StatusOr<ShardMergeOutcome> merged =
      MergeShardPartitions(table, *plan, locals, 3, &ctx);
  EXPECT_FALSE(merged.ok());
  EXPECT_EQ(ctx.stop_reason(), StopReason::kBudget);
}

}  // namespace
}  // namespace kanon
