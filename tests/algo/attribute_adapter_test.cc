#include "algo/attribute_adapter.h"

#include <memory>

#include "algo/attribute_exact.h"
#include "algo/attribute_greedy.h"
#include "algo/exact_dp.h"
#include "algo/registry.h"
#include "core/anonymity.h"
#include "data/generators/uniform.h"
#include "gtest/gtest.h"
#include "util/random.h"

namespace kanon {
namespace {

TEST(AttributeAdapterTest, NameForwardsToSolver) {
  AttributeAdapterAnonymizer exact(
      std::make_unique<ExactAttributeAnonymizer>());
  EXPECT_EQ(exact.name(), "attribute_exact");
  AttributeAdapterAnonymizer greedy(
      std::make_unique<GreedyAttributeAnonymizer>());
  EXPECT_EQ(greedy.name(), "attribute_greedy");
}

TEST(AttributeAdapterTest, ProducesValidEntryLevelResult) {
  Rng rng(1);
  const Table t = UniformTable(
      {.num_rows = 12, .num_columns = 5, .alphabet = 2}, &rng);
  AttributeAdapterAnonymizer algo(
      std::make_unique<ExactAttributeAnonymizer>());
  const auto result = ValidateResult(t, 3, algo.Run(t, 3));
  EXPECT_TRUE(IsKAnonymizer(result.MakeSuppressor(t), t, 3));
}

TEST(AttributeAdapterTest, CostBoundedByColumnSuppression) {
  Rng rng(2);
  const Table t = UniformTable(
      {.num_rows = 10, .num_columns = 4, .alphabet = 2}, &rng);
  ExactAttributeAnonymizer solver;
  const size_t suppressed = solver.Solve(t, 2).num_suppressed();
  AttributeAdapterAnonymizer algo(
      std::make_unique<ExactAttributeAnonymizer>());
  EXPECT_LE(algo.Run(t, 2).cost, 10u * suppressed);
}

TEST(AttributeAdapterTest, EntryLevelAtLeastAsGoodAsAttributeLevel) {
  // The paper's point: whole-attribute suppression is the coarsest
  // suppressor, so the entry-level optimum is never worse.
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    Rng rng(seed);
    const Table t = UniformTable(
        {.num_rows = 10, .num_columns = 4, .alphabet = 2}, &rng);
    ExactDpAnonymizer entry;
    AttributeAdapterAnonymizer attr(
        std::make_unique<ExactAttributeAnonymizer>());
    EXPECT_LE(entry.Run(t, 2).cost, attr.Run(t, 2).cost) << seed;
  }
}

TEST(AttributeAdapterTest, NotesMentionSuppressedAttributes) {
  Rng rng(3);
  const Table t = UniformTable(
      {.num_rows = 8, .num_columns = 4, .alphabet = 2}, &rng);
  AttributeAdapterAnonymizer algo(
      std::make_unique<GreedyAttributeAnonymizer>());
  EXPECT_NE(algo.Run(t, 2).notes.find("suppressed_attributes="),
            std::string::npos);
}

TEST(AttributeAdapterTest, AvailableViaRegistry) {
  Rng rng(4);
  const Table t = UniformTable(
      {.num_rows = 8, .num_columns = 4, .alphabet = 2}, &rng);
  for (const char* name : {"attribute_greedy", "attribute_exact"}) {
    auto algo = MakeAnonymizer(name);
    ASSERT_NE(algo, nullptr) << name;
    ValidateResult(t, 2, algo->Run(t, 2));
  }
}

}  // namespace
}  // namespace kanon
