#include "hypergraph/hypergraph.h"

#include "gtest/gtest.h"

namespace kanon {
namespace {

TEST(HypergraphTest, AddEdgeSortsVertices) {
  Hypergraph h(5, 3);
  h.AddEdge({4, 0, 2});
  EXPECT_EQ(h.edge(0), (Edge{0, 2, 4}));
  EXPECT_EQ(h.num_edges(), 1u);
}

TEST(HypergraphTest, Incident) {
  Hypergraph h(5, 3);
  h.AddEdge({0, 1, 2});
  h.AddEdge({2, 3, 4});
  EXPECT_TRUE(h.Incident(2, 0));
  EXPECT_TRUE(h.Incident(2, 1));
  EXPECT_FALSE(h.Incident(0, 1));
}

TEST(HypergraphTest, IncidenceLists) {
  Hypergraph h(4, 2);
  h.AddEdge({0, 1});
  h.AddEdge({1, 2});
  h.AddEdge({2, 3});
  const auto lists = h.IncidenceLists();
  EXPECT_EQ(lists[1], (std::vector<uint32_t>{0, 1}));
  EXPECT_EQ(lists[3], (std::vector<uint32_t>{2}));
}

TEST(HypergraphTest, IsSimple) {
  Hypergraph h(4, 2);
  h.AddEdge({0, 1});
  h.AddEdge({2, 3});
  EXPECT_TRUE(h.IsSimple());
  h.AddEdge({1, 0});  // same edge, different order
  EXPECT_FALSE(h.IsSimple());
}

TEST(HypergraphTest, ToStringMentionsEdges) {
  Hypergraph h(3, 3);
  h.AddEdge({0, 1, 2});
  EXPECT_NE(h.ToString().find("(0,1,2)"), std::string::npos);
}

TEST(HypergraphDeathTest, WrongUniformityDies) {
  Hypergraph h(5, 3);
  EXPECT_DEATH(h.AddEdge({0, 1}), "Check failed");
}

TEST(HypergraphDeathTest, RepeatedVertexDies) {
  Hypergraph h(5, 3);
  EXPECT_DEATH(h.AddEdge({0, 0, 1}), "Check failed");
}

TEST(HypergraphDeathTest, OutOfRangeVertexDies) {
  Hypergraph h(3, 3);
  EXPECT_DEATH(h.AddEdge({0, 1, 7}), "Check failed");
}

TEST(IsPerfectMatchingTest, Accepts) {
  Hypergraph h(6, 3);
  h.AddEdge({0, 1, 2});
  h.AddEdge({3, 4, 5});
  h.AddEdge({0, 3, 5});
  EXPECT_TRUE(IsPerfectMatching(h, {0, 1}));
}

TEST(IsPerfectMatchingTest, RejectsOverlap) {
  Hypergraph h(6, 3);
  h.AddEdge({0, 1, 2});
  h.AddEdge({2, 3, 4});
  EXPECT_FALSE(IsPerfectMatching(h, {0, 1}));
}

TEST(IsPerfectMatchingTest, RejectsUncovered) {
  Hypergraph h(6, 3);
  h.AddEdge({0, 1, 2});
  EXPECT_FALSE(IsPerfectMatching(h, {0}));
}

TEST(IsPerfectMatchingTest, RejectsBadEdgeId) {
  Hypergraph h(3, 3);
  h.AddEdge({0, 1, 2});
  EXPECT_FALSE(IsPerfectMatching(h, {5}));
}

TEST(IsPerfectMatchingTest, EmptyMatchingOnEmptyGraph) {
  Hypergraph h(0, 2);
  EXPECT_TRUE(IsPerfectMatching(h, {}));
}

}  // namespace
}  // namespace kanon
