#include "hypergraph/matching.h"

#include "gtest/gtest.h"
#include "hypergraph/generators.h"
#include "util/random.h"

namespace kanon {
namespace {

TEST(FindPerfectMatchingTest, FindsObviousMatching) {
  Hypergraph h(6, 3);
  h.AddEdge({0, 1, 2});
  h.AddEdge({3, 4, 5});
  const auto m = FindPerfectMatching(h);
  ASSERT_TRUE(m.has_value());
  EXPECT_TRUE(IsPerfectMatching(h, *m));
}

TEST(FindPerfectMatchingTest, DetectsNoMatching) {
  Hypergraph h(6, 3);
  h.AddEdge({0, 1, 2});
  h.AddEdge({0, 3, 4});  // both edges hit vertex 0's "partners" wrongly
  EXPECT_FALSE(FindPerfectMatching(h).has_value());
}

TEST(FindPerfectMatchingTest, NonDivisibleVertexCountFailsFast) {
  Hypergraph h(7, 3);
  h.AddEdge({0, 1, 2});
  MatchingSearchStats stats;
  EXPECT_FALSE(FindPerfectMatching(h, &stats).has_value());
  EXPECT_EQ(stats.nodes_explored, 0u);
}

TEST(FindPerfectMatchingTest, NeedsOverlappingChoice) {
  // Only one of the two edges covering vertex 0 extends to a PM.
  Hypergraph h(6, 3);
  h.AddEdge({0, 1, 3});  // using this strands {2,4,5}? No: edge (2,4,5).
  h.AddEdge({0, 1, 2});
  h.AddEdge({2, 4, 5});
  h.AddEdge({3, 4, 5});
  const auto m = FindPerfectMatching(h);
  ASSERT_TRUE(m.has_value());
  EXPECT_TRUE(IsPerfectMatching(h, *m));
}

TEST(FindPerfectMatchingTest, TwoUniformWorks) {
  Hypergraph h(4, 2);
  h.AddEdge({0, 1});
  h.AddEdge({1, 2});
  h.AddEdge({2, 3});
  h.AddEdge({0, 3});
  const auto m = FindPerfectMatching(h);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->size(), 2u);
}

class PlantedMatchingTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PlantedMatchingTest, PlantedInstancesAlwaysSolvable) {
  Rng rng(GetParam());
  PlantedHypergraphOptions opt;
  opt.num_vertices = 12;
  opt.k = 3;
  opt.extra_edges = 6;
  const Hypergraph h = PlantedMatchingHypergraph(opt, &rng);
  const auto m = FindPerfectMatching(h);
  ASSERT_TRUE(m.has_value());
  EXPECT_TRUE(IsPerfectMatching(h, *m));
}

INSTANTIATE_TEST_SUITE_P(Seeds, PlantedMatchingTest,
                         ::testing::Range<uint64_t>(1, 13));

class MatchingFreeTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MatchingFreeTest, IsolatedVertexInstancesNeverSolvable) {
  Rng rng(GetParam());
  const Hypergraph h = MatchingFreeHypergraph(9, 3, 10, &rng);
  EXPECT_FALSE(FindPerfectMatching(h).has_value());
}

INSTANTIATE_TEST_SUITE_P(Seeds, MatchingFreeTest,
                         ::testing::Range<uint64_t>(1, 9));

TEST(GreedyMaximalMatchingTest, IsMaximalAndDisjoint) {
  Rng rng(3);
  const Hypergraph h = RandomHypergraph(12, 3, 14, &rng);
  const auto m = GreedyMaximalMatching(h);
  std::vector<bool> covered(h.num_vertices(), false);
  for (const uint32_t e : m) {
    for (const VertexId v : h.edge(e)) {
      EXPECT_FALSE(covered[v]);  // disjoint
      covered[v] = true;
    }
  }
  // Maximal: no remaining edge is fully uncovered.
  for (uint32_t e = 0; e < h.num_edges(); ++e) {
    bool all_free = true;
    for (const VertexId v : h.edge(e)) {
      if (covered[v]) all_free = false;
    }
    EXPECT_FALSE(all_free);
  }
}

TEST(MatchingStatsTest, SearchCountsNodes) {
  Hypergraph h(6, 3);
  h.AddEdge({0, 1, 2});
  h.AddEdge({3, 4, 5});
  MatchingSearchStats stats;
  ASSERT_TRUE(FindPerfectMatching(h, &stats).has_value());
  EXPECT_GE(stats.nodes_explored, 1u);
}

}  // namespace
}  // namespace kanon
