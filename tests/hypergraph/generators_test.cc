#include "hypergraph/generators.h"

#include <set>

#include "gtest/gtest.h"
#include "hypergraph/matching.h"
#include "util/random.h"

namespace kanon {
namespace {

TEST(PlantedMatchingHypergraphTest, ShapeAndSimplicity) {
  Rng rng(1);
  PlantedHypergraphOptions opt;
  opt.num_vertices = 9;
  opt.k = 3;
  opt.extra_edges = 4;
  const Hypergraph h = PlantedMatchingHypergraph(opt, &rng);
  EXPECT_EQ(h.num_vertices(), 9u);
  EXPECT_EQ(h.uniformity(), 3u);
  EXPECT_EQ(h.num_edges(), 3u + 4u);
  EXPECT_TRUE(h.IsSimple());
}

TEST(PlantedMatchingHypergraphTest, ContainsPerfectMatching) {
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    Rng rng(seed);
    PlantedHypergraphOptions opt;
    opt.num_vertices = 12;
    opt.k = 4;
    opt.extra_edges = 5;
    const Hypergraph h = PlantedMatchingHypergraph(opt, &rng);
    EXPECT_TRUE(HasPerfectMatching(h)) << "seed " << seed;
  }
}

TEST(PlantedMatchingHypergraphTest, ZeroExtraEdgesIsExactlyMatching) {
  Rng rng(2);
  PlantedHypergraphOptions opt;
  opt.num_vertices = 12;
  opt.k = 3;
  opt.extra_edges = 0;
  const Hypergraph h = PlantedMatchingHypergraph(opt, &rng);
  EXPECT_EQ(h.num_edges(), 4u);
  std::vector<uint32_t> all_edges = {0, 1, 2, 3};
  EXPECT_TRUE(IsPerfectMatching(h, all_edges));
}

TEST(PlantedMatchingHypergraphDeathTest, NonDivisibleDies) {
  Rng rng(3);
  PlantedHypergraphOptions opt;
  opt.num_vertices = 10;
  opt.k = 3;
  EXPECT_DEATH(PlantedMatchingHypergraph(opt, &rng), "Check failed");
}

TEST(RandomHypergraphTest, DistinctEdges) {
  Rng rng(4);
  const Hypergraph h = RandomHypergraph(10, 3, 25, &rng);
  EXPECT_EQ(h.num_edges(), 25u);
  EXPECT_TRUE(h.IsSimple());
}

TEST(RandomHypergraphTest, EdgesInRange) {
  Rng rng(5);
  const Hypergraph h = RandomHypergraph(6, 2, 15, &rng);  // all C(6,2)
  EXPECT_EQ(h.num_edges(), 15u);
  std::set<Edge> edges(h.edges().begin(), h.edges().end());
  EXPECT_EQ(edges.size(), 15u);
}

TEST(MatchingFreeHypergraphTest, VertexZeroIsolated) {
  Rng rng(6);
  const Hypergraph h = MatchingFreeHypergraph(12, 3, 20, &rng);
  for (uint32_t e = 0; e < h.num_edges(); ++e) {
    EXPECT_FALSE(h.Incident(0, e));
  }
  EXPECT_FALSE(HasPerfectMatching(h));
}

TEST(MatchingFreeHypergraphTest, StillSimpleAndUniform) {
  Rng rng(7);
  const Hypergraph h = MatchingFreeHypergraph(9, 3, 12, &rng);
  EXPECT_TRUE(h.IsSimple());
  for (const Edge& e : h.edges()) {
    EXPECT_EQ(e.size(), 3u);
  }
}

TEST(GeneratorDeterminismTest, SameSeedSameGraph) {
  Rng a(11), b(11);
  const Hypergraph ha = RandomHypergraph(10, 3, 12, &a);
  const Hypergraph hb = RandomHypergraph(10, 3, 12, &b);
  EXPECT_EQ(ha.edges(), hb.edges());
}

}  // namespace
}  // namespace kanon
