#include "net/net_chaos.h"

#include <cstdlib>
#include <string>

#include "gtest/gtest.h"

/// \file
/// In-process runs of the connection-fault chaos harness: a handful of
/// seeds must pass all three transport invariants, the workload digest
/// must be a pure function of the seed, and the no-drain / no-journal
/// variants must hold the invariants that remain.

namespace kanon {
namespace {

std::string Scratch() {
  const char* tmp = ::getenv("TMPDIR");
  return tmp != nullptr ? tmp : "/tmp";
}

TEST(NetChaosTest, SeededSchedulesPassAllInvariants) {
  for (const uint64_t seed : {1ull, 2ull, 3ull}) {
    NetChaosOptions options;
    options.seed = seed;
    options.sessions = 4;
    options.scratch_dir = Scratch();
    const NetChaosReport report = RunNetChaosSchedule(options);
    EXPECT_TRUE(report.passed()) << "seed " << seed << ": "
                                 << (report.violations.empty()
                                         ? std::string("?")
                                         : report.violations.front());
    // The ledger identity the drain invariant rests on.
    EXPECT_EQ(report.server.jobs_submitted,
              report.server.responses_delivered +
                  report.server.responses_dropped)
        << "seed " << seed;
  }
}

TEST(NetChaosTest, WorkloadFingerprintIsAPureFunctionOfTheSeed) {
  NetChaosOptions options;
  options.seed = 7;
  options.sessions = 3;
  options.scratch_dir = Scratch();
  const NetChaosReport first = RunNetChaosSchedule(options);
  const NetChaosReport again = RunNetChaosSchedule(options);
  EXPECT_EQ(first.workload_fingerprint, again.workload_fingerprint);
  EXPECT_NE(first.workload_fingerprint, 0u);

  options.seed = 8;
  const NetChaosReport other = RunNetChaosSchedule(options);
  EXPECT_NE(other.workload_fingerprint, first.workload_fingerprint);
}

TEST(NetChaosTest, RunsWithoutDrainOrJournal) {
  NetChaosOptions options;
  options.seed = 5;
  options.sessions = 3;
  options.with_drain = false;
  options.with_journal = false;
  options.scratch_dir = Scratch();
  const NetChaosReport report = RunNetChaosSchedule(options);
  EXPECT_TRUE(report.passed())
      << (report.violations.empty() ? std::string("?")
                                    : report.violations.front());
}

}  // namespace
}  // namespace kanon
