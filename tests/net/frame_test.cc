#include "net/frame.h"

#include <string>

#include "gtest/gtest.h"

/// \file
/// Round-trip and semantics tests for the binary wire codec — the
/// well-behaved-peer half; tests/net/frame_fuzz_test.cc drills the
/// hostile half.

namespace kanon {
namespace {

NetRequest MakeAnonymizeRequest() {
  NetRequest request;
  request.verb = NetVerb::kAnonymize;
  request.client_seq = 77;
  request.request.algorithm = "greedy_cover";
  request.request.k = 3;
  request.request.deadline_ms = 1500.5;
  request.request.node_budget = 4096;
  request.request.priority = -2;
  request.request.emit_csv = false;
  request.request.csv_text = "age,zip\n30,10001\n30,10001\n";
  return request;
}

TEST(FrameEnvelope, RoundTripsABody) {
  const std::string frame = EncodeFrame("hello body");
  EXPECT_EQ(frame.size(),
            kFrameHeaderBytes + 10 + kFrameTrailerBytes);

  const StatusOr<std::string> body = DecodeFrameExact(frame);
  ASSERT_TRUE(body.ok()) << body.status();
  EXPECT_EQ(*body, "hello body");
}

TEST(FrameEnvelope, RoundTripsAnEmptyBody) {
  const StatusOr<std::string> body = DecodeFrameExact(EncodeFrame(""));
  ASSERT_TRUE(body.ok()) << body.status();
  EXPECT_TRUE(body->empty());
}

TEST(FrameEnvelope, StreamingDecoderSplitsConcatenatedFrames) {
  const std::string stream = EncodeFrame("first") + EncodeFrame("second");
  std::string_view rest = stream;
  FrameLimits limits;
  std::string_view body;
  size_t consumed = 0;
  Status error;

  ASSERT_EQ(TryDecodeFrame(rest, limits, &body, &consumed, &error),
            FrameDecode::kFrame);
  EXPECT_EQ(body, "first");
  rest.remove_prefix(consumed);
  ASSERT_EQ(TryDecodeFrame(rest, limits, &body, &consumed, &error),
            FrameDecode::kFrame);
  EXPECT_EQ(body, "second");
  rest.remove_prefix(consumed);
  EXPECT_EQ(TryDecodeFrame(rest, limits, &body, &consumed, &error),
            FrameDecode::kNeedMore);
}

TEST(FrameEnvelope, EveryPrefixOfAValidFrameNeedsMore) {
  const std::string frame = EncodeFrame("prefix drill");
  FrameLimits limits;
  for (size_t cut = 0; cut < frame.size(); ++cut) {
    std::string_view body;
    size_t consumed = 0;
    Status error;
    EXPECT_EQ(TryDecodeFrame(std::string_view(frame).substr(0, cut),
                             limits, &body, &consumed, &error),
              FrameDecode::kNeedMore)
        << "prefix of " << cut << " bytes";
  }
}

TEST(FrameEnvelope, AnnouncedLengthPastTheCapIsRejectedAtTheHeader) {
  FrameLimits limits;
  limits.max_body = 64;
  // A legitimate frame over a hostile-to-us limit: the header alone
  // must condemn it, even though the frame itself is well-formed.
  const std::string frame = EncodeFrame(std::string(65, 'x'));
  std::string_view body;
  size_t consumed = 0;
  Status error;
  EXPECT_EQ(TryDecodeFrame(frame, limits, &body, &consumed, &error),
            FrameDecode::kBad);
  EXPECT_EQ(error.code(), StatusCode::kParseError);

  // Just the header prefix is already enough to reject.
  EXPECT_EQ(TryDecodeFrame(
                std::string_view(frame).substr(0, kFrameHeaderBytes),
                limits, &body, &consumed, &error),
            FrameDecode::kBad);
}

TEST(NetCodec, AnonymizeRequestRoundTripsEveryField) {
  const NetRequest request = MakeAnonymizeRequest();
  const StatusOr<std::string> body =
      DecodeFrameExact(EncodeNetRequest(request));
  ASSERT_TRUE(body.ok()) << body.status();
  const StatusOr<NetRequest> decoded = DecodeNetRequest(*body);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->verb, NetVerb::kAnonymize);
  EXPECT_EQ(decoded->client_seq, 77u);
  EXPECT_EQ(decoded->request.algorithm, "greedy_cover");
  EXPECT_EQ(decoded->request.k, 3u);
  EXPECT_DOUBLE_EQ(decoded->request.deadline_ms, 1500.5);
  EXPECT_EQ(decoded->request.node_budget, 4096u);
  EXPECT_EQ(decoded->request.priority, -2);
  EXPECT_FALSE(decoded->request.emit_csv);
  EXPECT_EQ(decoded->request.csv_text, request.request.csv_text);
}

TEST(NetCodec, StatsAndShutdownRequestsRoundTrip) {
  for (const NetVerb verb : {NetVerb::kStats, NetVerb::kShutdown}) {
    NetRequest request;
    request.verb = verb;
    request.client_seq = 5;
    const StatusOr<std::string> body =
        DecodeFrameExact(EncodeNetRequest(request));
    ASSERT_TRUE(body.ok());
    const StatusOr<NetRequest> decoded = DecodeNetRequest(*body);
    ASSERT_TRUE(decoded.ok()) << decoded.status();
    EXPECT_EQ(decoded->verb, verb);
    EXPECT_EQ(decoded->client_seq, 5u);
  }
}

TEST(NetCodec, SuccessResponseRoundTripsThePayload) {
  AnonymizeResponse answer;
  answer.id = 9;
  answer.status = Status::Ok();
  answer.k = 3;
  answer.rows = 12;
  answer.cost = 4;
  answer.stage = "greedy_cover";
  answer.chain = "exact_dp(declined:budget)->greedy_cover(ok)";
  answer.termination = StopReason::kBudget;
  answer.cache_hit = true;
  answer.queue_ms = 0.25;
  answer.run_ms = 8.5;
  answer.anonymized_csv = "a,b\n*,1\n*,1\n";

  const NetResponse wire = MakeNetResponse(NetVerb::kAnonymize, 42, answer);
  const StatusOr<std::string> body =
      DecodeFrameExact(EncodeNetResponse(wire));
  ASSERT_TRUE(body.ok());
  const StatusOr<NetResponse> decoded = DecodeNetResponse(*body);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_TRUE(decoded->ok());
  EXPECT_EQ(decoded->client_seq, 42u);
  EXPECT_EQ(decoded->job_id, 9u);
  EXPECT_EQ(decoded->k, 3u);
  EXPECT_EQ(decoded->rows, 12u);
  EXPECT_EQ(decoded->cost, 4u);
  EXPECT_EQ(decoded->stage, "greedy_cover");
  EXPECT_EQ(decoded->chain, answer.chain);
  EXPECT_EQ(decoded->termination,
            static_cast<uint32_t>(StopReason::kBudget));
  EXPECT_TRUE(decoded->cache_hit);
  EXPECT_DOUBLE_EQ(decoded->queue_ms, 0.25);
  EXPECT_DOUBLE_EQ(decoded->run_ms, 8.5);
  EXPECT_EQ(decoded->csv, answer.anonymized_csv);
}

TEST(NetCodec, TypedErrorResponseCarriesTheTaxonomyName) {
  const NetResponse wire = MakeNetError(
      NetVerb::kShutdown, 0, ServiceError::kConnectionLimit,
      "connection limit reached");
  const StatusOr<std::string> body =
      DecodeFrameExact(EncodeNetResponse(wire));
  ASSERT_TRUE(body.ok());
  const StatusOr<NetResponse> decoded = DecodeNetResponse(*body);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_FALSE(decoded->ok());
  EXPECT_EQ(decoded->verb, NetVerb::kShutdown);
  EXPECT_EQ(decoded->code, StatusCode::kResourceExhausted);
  EXPECT_EQ(decoded->error_name, "connection_limit");
  EXPECT_EQ(decoded->message, "connection limit reached");
}

TEST(NetCodec, RejectionResponseInheritsTheServiceTaxonomy) {
  AnonymizeResponse rejected;
  rejected.error = ServiceError::kQueueFull;
  rejected.status =
      MakeServiceStatus(ServiceError::kQueueFull, "queue is full");
  const NetResponse wire =
      MakeNetResponse(NetVerb::kAnonymize, 7, rejected);
  const StatusOr<NetResponse> decoded = DecodeNetResponse(
      *DecodeFrameExact(EncodeNetResponse(wire)));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->error_name, "queue_full");
  EXPECT_EQ(decoded->code, StatusCode::kResourceExhausted);
}

TEST(NetCodec, StatsResponseCarriesTheLine) {
  NetResponse wire;
  wire.verb = NetVerb::kStats;
  wire.client_seq = 3;
  wire.stats_line = "ok verb=stats workers=2 accepted=5";
  const StatusOr<NetResponse> decoded = DecodeNetResponse(
      *DecodeFrameExact(EncodeNetResponse(wire)));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->verb, NetVerb::kStats);
  EXPECT_EQ(decoded->stats_line, "ok verb=stats workers=2 accepted=5");
}

}  // namespace
}  // namespace kanon
