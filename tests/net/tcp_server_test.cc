#include "net/tcp_server.h"

#include <memory>
#include <string>
#include <thread>

#include "gtest/gtest.h"
#include "net/client.h"
#include "net/frame.h"
#include "service/server.h"

/// \file
/// Live-socket tests for the epoll front end: request/response round
/// trips, typed rejection of hostile frames and over-limit connects,
/// slow-loris timeouts, and the drain-accounting invariant
/// (jobs_submitted == responses_delivered + responses_dropped).

namespace kanon {
namespace {

constexpr char kSmallCsv[] = "age,zip\n30,1\n30,1\n31,2\n31,2\n";

/// Service + server + serving thread, torn down in order.
class TcpServerTest : public ::testing::Test {
 protected:
  void StartServer(NetServerOptions net = {}) {
    ServiceOptions service_options;
    service_options.workers = 2;
    service_ = std::make_unique<AnonymizationService>(service_options);
    net.port = 0;
    server_ = std::make_unique<NetServer>(*service_, net);
    const Status started = server_->Start();
    ASSERT_TRUE(started.ok()) << started.ToString();
    thread_ = std::thread([this] { server_->Run(); });
  }

  void StopServer() {
    if (server_) server_->RequestDrain();
    if (thread_.joinable()) thread_.join();
    if (service_) service_->Shutdown();
  }

  void TearDown() override { StopServer(); }

  NetRequest Anonymize(uint64_t seq, size_t k = 2) {
    NetRequest request;
    request.verb = NetVerb::kAnonymize;
    request.client_seq = seq;
    request.request.algorithm = "resilient";
    request.request.k = k;
    request.request.csv_text = kSmallCsv;
    return request;
  }

  std::unique_ptr<AnonymizationService> service_;
  std::unique_ptr<NetServer> server_;
  std::thread thread_;
};

TEST_F(TcpServerTest, AnonymizeRoundTrip) {
  StartServer();
  NetClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server_->port()).ok());
  const StatusOr<NetResponse> response = client.Call(Anonymize(41));
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_TRUE(response->ok()) << response->message;
  EXPECT_EQ(response->client_seq, 41u);
  EXPECT_EQ(response->k, 2u);
  EXPECT_EQ(response->rows, 4u);
  EXPECT_FALSE(response->csv.empty());
}

TEST_F(TcpServerTest, PipelinedBurstAnswersEveryRequest) {
  StartServer();
  NetClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server_->port()).ok());
  for (uint64_t seq = 1; seq <= 5; ++seq) {
    ASSERT_TRUE(client.Send(Anonymize(seq)).ok());
  }
  bool seen[6] = {};
  for (int i = 0; i < 5; ++i) {
    const StatusOr<NetResponse> response = client.Receive();
    ASSERT_TRUE(response.ok()) << response.status();
    EXPECT_TRUE(response->ok());
    ASSERT_GE(response->client_seq, 1u);
    ASSERT_LE(response->client_seq, 5u);
    EXPECT_FALSE(seen[response->client_seq]) << "duplicate response";
    seen[response->client_seq] = true;
  }
}

TEST_F(TcpServerTest, StatsVerbReturnsTheCounterLine) {
  StartServer();
  NetClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server_->port()).ok());
  NetRequest request;
  request.verb = NetVerb::kStats;
  request.client_seq = 9;
  const StatusOr<NetResponse> response = client.Call(request);
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_TRUE(response->ok());
  EXPECT_NE(response->stats_line.find("workers="), std::string::npos);
  EXPECT_NE(response->stats_line.find("accepted="), std::string::npos);
}

TEST_F(TcpServerTest, ValidationErrorIsTypedAndKeepsTheConnection) {
  StartServer();
  NetClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server_->port()).ok());
  NetRequest bad = Anonymize(1);
  bad.request.algorithm = "no_such_algorithm";
  const StatusOr<NetResponse> rejected = client.Call(bad);
  ASSERT_TRUE(rejected.ok()) << rejected.status();
  EXPECT_FALSE(rejected->ok());
  EXPECT_EQ(rejected->error_name, "unknown_algorithm");
  // The connection survived the typed rejection.
  const StatusOr<NetResponse> ok = client.Call(Anonymize(2));
  ASSERT_TRUE(ok.ok()) << ok.status();
  EXPECT_TRUE(ok->ok());
}

TEST_F(TcpServerTest, GarbageBytesGetBadFrameThenClose) {
  StartServer();
  NetClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server_->port()).ok());
  ASSERT_TRUE(client.SendRaw("this is not the protocol").ok());
  const StatusOr<NetResponse> farewell = client.Receive();
  ASSERT_TRUE(farewell.ok()) << farewell.status();
  EXPECT_FALSE(farewell->ok());
  EXPECT_EQ(farewell->error_name, "bad_frame");
  EXPECT_EQ(farewell->verb, NetVerb::kShutdown);
  // Framing is lost, so the server closes after the farewell.
  const StatusOr<NetResponse> eof = client.Receive();
  ASSERT_FALSE(eof.ok());
  EXPECT_EQ(eof.status().code(), StatusCode::kUnavailable);
  EXPECT_GE(server_->stats().protocol_errors, 1u);
}

TEST_F(TcpServerTest, HostileBodyInValidEnvelopeKeepsTheConnection) {
  StartServer();
  NetClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server_->port()).ok());
  // A perfectly framed envelope whose body is garbage: the envelope
  // held, so framing is intact and the connection survives.
  ASSERT_TRUE(client.SendRaw(EncodeFrame("not a request body")).ok());
  const StatusOr<NetResponse> typed = client.Receive();
  ASSERT_TRUE(typed.ok()) << typed.status();
  EXPECT_EQ(typed->error_name, "bad_frame");
  const StatusOr<NetResponse> ok = client.Call(Anonymize(3));
  ASSERT_TRUE(ok.ok()) << ok.status();
  EXPECT_TRUE(ok->ok());
}

TEST_F(TcpServerTest, OversizedDeclaredLengthIsRejected) {
  NetServerOptions net;
  net.max_frame_bytes = 1024;
  StartServer(net);
  NetClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server_->port()).ok());
  NetRequest big = Anonymize(1);
  big.request.csv_text = "c\n" + std::string(4096, '1');
  ASSERT_TRUE(client.Send(big).ok());
  const StatusOr<NetResponse> farewell = client.Receive();
  ASSERT_TRUE(farewell.ok()) << farewell.status();
  EXPECT_EQ(farewell->error_name, "bad_frame");
}

TEST_F(TcpServerTest, OverLimitConnectGetsTypedRejection) {
  NetServerOptions net;
  net.max_connections = 1;
  StartServer(net);
  NetClient first;
  ASSERT_TRUE(first.Connect("127.0.0.1", server_->port()).ok());
  // Make sure the first connection is registered before the second
  // tries (accept order is the connect order on loopback).
  ASSERT_TRUE(first.Call(Anonymize(1)).ok());

  NetClient second;
  ASSERT_TRUE(second.Connect("127.0.0.1", server_->port()).ok());
  const StatusOr<NetResponse> rejected = second.Receive();
  ASSERT_TRUE(rejected.ok()) << rejected.status();
  EXPECT_EQ(rejected->error_name, "connection_limit");
  EXPECT_EQ(rejected->verb, NetVerb::kShutdown);
  EXPECT_EQ(server_->stats().rejected_over_limit, 1u);

  // The registered connection is unaffected.
  EXPECT_TRUE(first.Call(Anonymize(2)).ok());
}

TEST_F(TcpServerTest, SlowLorisPartialFrameTimesOutTyped) {
  NetServerOptions net;
  net.frame_timeout_ms = 100.0;
  net.tick_ms = 10.0;
  StartServer(net);
  NetClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server_->port()).ok());
  // Half a frame, then silence.
  const std::string frame = EncodeNetRequest(Anonymize(1));
  ASSERT_TRUE(client.SendRaw(frame.substr(0, frame.size() / 2)).ok());
  const StatusOr<NetResponse> farewell = client.Receive(5000.0);
  ASSERT_TRUE(farewell.ok()) << farewell.status();
  EXPECT_EQ(farewell->error_name, "bad_frame");
  EXPECT_GE(server_->stats().timeouts_frame, 1u);
}

TEST_F(TcpServerTest, IdleConnectionIsClosed) {
  NetServerOptions net;
  net.idle_timeout_ms = 100.0;
  net.tick_ms = 10.0;
  StartServer(net);
  NetClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server_->port()).ok());
  const StatusOr<NetResponse> eof = client.Receive(5000.0);
  ASSERT_FALSE(eof.ok());
  EXPECT_EQ(eof.status().code(), StatusCode::kUnavailable);
  EXPECT_GE(server_->stats().timeouts_idle, 1u);
}

TEST_F(TcpServerTest, ShutdownVerbAcksThenDrains) {
  StartServer();
  NetClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server_->port()).ok());
  NetRequest request;
  request.verb = NetVerb::kShutdown;
  request.client_seq = 4;
  const StatusOr<NetResponse> ack = client.Call(request);
  ASSERT_TRUE(ack.ok()) << ack.status();
  EXPECT_TRUE(ack->ok());
  EXPECT_EQ(ack->verb, NetVerb::kShutdown);
  // The serving loop exits on its own — join without another drain.
  thread_.join();
  service_->Shutdown();
}

TEST_F(TcpServerTest, DrainDeliversEveryAdmittedResponse) {
  StartServer();
  NetClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server_->port()).ok());
  constexpr uint64_t kJobs = 6;
  for (uint64_t seq = 1; seq <= kJobs; ++seq) {
    ASSERT_TRUE(client.Send(Anonymize(seq)).ok());
  }
  server_->RequestDrain();
  // Every response the front end admitted before the drain must still
  // arrive (or the connection must close cleanly — never a hang, never
  // a torn frame). Count what we get.
  size_t answered = 0;
  for (;;) {
    const StatusOr<NetResponse> response = client.Receive(20000.0);
    if (!response.ok()) {
      ASSERT_EQ(response.status().code(), StatusCode::kUnavailable)
          << response.status().ToString();
      break;
    }
    if (response->verb == NetVerb::kShutdown) continue;  // drain notice
    ++answered;
  }
  thread_.join();
  const NetServerStats stats = server_->stats();
  EXPECT_EQ(stats.jobs_submitted,
            stats.responses_delivered + stats.responses_dropped);
  EXPECT_EQ(answered, stats.responses_delivered);
  service_->Shutdown();
}

TEST_F(TcpServerTest, HardStopStillAccountsForAdmittedJobs) {
  StartServer();
  NetClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server_->port()).ok());
  ASSERT_TRUE(client.Send(Anonymize(1)).ok());
  server_->RequestStop();
  thread_.join();
  // Hard stop drops completions rather than waiting, but the counters
  // never lie: nothing is both undelivered and undropped once the
  // service finishes the work.
  service_->Shutdown();
  const NetServerStats stats = server_->stats();
  EXPECT_LE(stats.responses_delivered + stats.responses_dropped,
            stats.jobs_submitted);
}

}  // namespace
}  // namespace kanon
