#include <cstdint>
#include <string>

#include "gtest/gtest.h"
#include "net/frame.h"
#include "util/random.h"

/// \file
/// Adversarial decoding drills for the binary wire codec, mirroring
/// tests/ckpt/checkpoint_fuzz_test.cc: bytes off a socket are hostile
/// input, so every truncated prefix, every single-bit flip and
/// arbitrary garbage must come back as a *typed* kParseError (or an
/// honest kNeedMore from the streaming decoder) — never a crash, never
/// an allocation driven past FrameLimits.max_body by a wire-supplied
/// length, and never a silently-accepted wrong payload.

namespace kanon {
namespace {

std::string ValidRequestFrame() {
  NetRequest request;
  request.verb = NetVerb::kAnonymize;
  request.client_seq = 11;
  request.request.algorithm = "resilient";
  request.request.k = 2;
  request.request.csv_text = "age\n30\n30\n31\n31\n";
  return EncodeNetRequest(request);
}

/// Full hostile-stream check: the exact-frame decoder must answer a
/// typed error, and the streaming decoder must answer kBad or an honest
/// kNeedMore — never a decoded frame, never anything untyped.
void ExpectHostile(const std::string& bytes, const std::string& what) {
  const StatusOr<std::string> exact = DecodeFrameExact(bytes);
  if (exact.ok()) {
    // The envelope survived (a flip inside the body can still checksum-
    // collide only with 2^-64 probability; a flip that survives must be
    // caught by the *body* decoder instead).
    const StatusOr<NetRequest> decoded = DecodeNetRequest(*exact);
    EXPECT_FALSE(decoded.ok()) << what << ": hostile bytes decoded";
    if (!decoded.ok()) {
      EXPECT_EQ(decoded.status().code(), StatusCode::kParseError) << what;
    }
    return;
  }
  EXPECT_EQ(exact.status().code(), StatusCode::kParseError)
      << what << ": " << exact.status().ToString();
}

TEST(FrameFuzz, EveryStrictPrefixIsNeedMoreThenEofIsTyped) {
  const std::string frame = ValidRequestFrame();
  FrameLimits limits;
  for (size_t cut = 0; cut < frame.size(); ++cut) {
    const std::string prefix = frame.substr(0, cut);
    // Streaming: an honest "read more".
    std::string_view body;
    size_t consumed = 0;
    Status error;
    EXPECT_EQ(TryDecodeFrame(prefix, limits, &body, &consumed, &error),
              FrameDecode::kNeedMore)
        << "prefix " << cut;
    // At EOF the same prefix is a typed error, never a hang or crash.
    const StatusOr<std::string> exact = DecodeFrameExact(prefix);
    ASSERT_FALSE(exact.ok()) << "prefix " << cut << " decoded";
    EXPECT_EQ(exact.status().code(), StatusCode::kParseError)
        << "prefix " << cut;
  }
}

TEST(FrameFuzz, EverySingleBitFlipIsATypedError) {
  const std::string frame = ValidRequestFrame();
  for (size_t byte = 0; byte < frame.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string flipped = frame;
      flipped[byte] = static_cast<char>(
          static_cast<unsigned char>(flipped[byte]) ^ (1u << bit));
      ExpectHostile(flipped, "flip byte " + std::to_string(byte) +
                                 " bit " + std::to_string(bit));
    }
  }
}

TEST(FrameFuzz, TrailingGarbageIsATypedError) {
  const StatusOr<std::string> exact =
      DecodeFrameExact(ValidRequestFrame() + "x");
  ASSERT_FALSE(exact.ok());
  EXPECT_EQ(exact.status().code(), StatusCode::kParseError);
}

TEST(FrameFuzz, RandomGarbageIsATypedErrorOrHonestNeedMore) {
  Rng rng(0xfa22ull);
  FrameLimits limits;
  for (int round = 0; round < 300; ++round) {
    std::string garbage(rng.Uniform(120), '\0');
    for (char& c : garbage) c = static_cast<char>(rng.Uniform(256));

    std::string_view body;
    size_t consumed = 0;
    Status error;
    switch (TryDecodeFrame(garbage, limits, &body, &consumed, &error)) {
      case FrameDecode::kFrame:
        ADD_FAILURE() << "round " << round << ": garbage decoded";
        break;
      case FrameDecode::kBad:
        EXPECT_EQ(error.code(), StatusCode::kParseError);
        break;
      case FrameDecode::kNeedMore:
        // Only a true prefix of the envelope may claim this: random
        // bytes must be empty or open with the magic to get here.
        if (!garbage.empty()) {
          EXPECT_EQ(garbage[0], 'K') << "round " << round;
        }
        break;
    }
  }
}

TEST(FrameFuzz, HostileLengthNeverDrivesAnAllocation) {
  // Craft headers announcing absurd body lengths. The decoder must
  // reject at the header — the assertion is that these return kBad
  // immediately (would OOM or hang waiting for 2^60 bytes otherwise).
  FrameLimits limits;
  for (const uint64_t huge :
       {uint64_t{1} << 23 | 1, uint64_t{1} << 32, uint64_t{1} << 60,
        ~uint64_t{0}}) {
    std::string header = "KNET";
    const uint32_t version = 1;
    for (int i = 0; i < 4; ++i) {
      header.push_back(static_cast<char>((version >> (8 * i)) & 0xff));
    }
    for (int i = 0; i < 8; ++i) {
      header.push_back(static_cast<char>((huge >> (8 * i)) & 0xff));
    }
    std::string_view body;
    size_t consumed = 0;
    Status error;
    EXPECT_EQ(TryDecodeFrame(header, limits, &body, &consumed, &error),
              FrameDecode::kBad)
        << "announced length " << huge;
    EXPECT_EQ(error.code(), StatusCode::kParseError);
  }
}

TEST(FrameFuzz, WrongVersionIsATypedError) {
  std::string frame = ValidRequestFrame();
  frame[4] = 2;  // version field, little-endian low byte
  std::string_view body;
  size_t consumed = 0;
  Status error;
  FrameLimits limits;
  EXPECT_EQ(TryDecodeFrame(frame, limits, &body, &consumed, &error),
            FrameDecode::kBad);
  EXPECT_EQ(error.code(), StatusCode::kParseError);
}

TEST(FrameFuzz, BodyFuzzUnknownVerbAndTornFieldsAreTyped) {
  // Hostile *bodies* inside valid envelopes: the body decoder's own
  // surface. Unknown verb, unknown status code, truncated fields.
  {
    std::string body;
    const uint32_t bad_verb = 99;
    for (int i = 0; i < 4; ++i) {
      body.push_back(static_cast<char>((bad_verb >> (8 * i)) & 0xff));
    }
    const StatusOr<NetRequest> decoded = DecodeNetRequest(body);
    ASSERT_FALSE(decoded.ok());
    EXPECT_EQ(decoded.status().code(), StatusCode::kParseError);
  }
  const StatusOr<std::string> valid =
      DecodeFrameExact(ValidRequestFrame());
  ASSERT_TRUE(valid.ok());
  for (size_t cut = 0; cut < valid->size(); ++cut) {
    const StatusOr<NetRequest> decoded =
        DecodeNetRequest(std::string_view(*valid).substr(0, cut));
    ASSERT_FALSE(decoded.ok()) << "body prefix " << cut << " decoded";
    EXPECT_EQ(decoded.status().code(), StatusCode::kParseError)
        << "body prefix " << cut;
  }
  // Response bodies get the same treatment.
  NetResponse response;
  response.verb = NetVerb::kStats;
  response.stats_line = "ok verb=stats";
  const StatusOr<std::string> response_body =
      DecodeFrameExact(EncodeNetResponse(response));
  ASSERT_TRUE(response_body.ok());
  for (size_t cut = 0; cut < response_body->size(); ++cut) {
    const StatusOr<NetResponse> decoded = DecodeNetResponse(
        std::string_view(*response_body).substr(0, cut));
    ASSERT_FALSE(decoded.ok()) << "response prefix " << cut;
    EXPECT_EQ(decoded.status().code(), StatusCode::kParseError);
  }
}

}  // namespace
}  // namespace kanon
