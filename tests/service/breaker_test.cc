#include "service/breaker.h"

#include <chrono>
#include <thread>

#include "gtest/gtest.h"

/// \file
/// Circuit-breaker state machine: closed -> open after threshold
/// consecutive failures, half-open probe after the cooldown, probe
/// outcome closes or re-opens, and the BreakerBoard renders its state
/// for the stats line. The chain-integration side (skipped stages, the
/// ungated terminal stage) is covered in fallback_test.cc and the
/// worker-pool retry tests.

namespace kanon {
namespace {

TEST(StageBreakerTest, OpensAfterThresholdConsecutiveFailures) {
  StageBreaker breaker({.failure_threshold = 3, .open_ms = 1e9});
  EXPECT_EQ(breaker.state(), StageBreaker::State::kClosed);
  EXPECT_TRUE(breaker.Allow());

  breaker.RecordFailure();
  breaker.RecordFailure();
  EXPECT_EQ(breaker.state(), StageBreaker::State::kClosed);
  EXPECT_TRUE(breaker.Allow());  // still under threshold

  breaker.RecordFailure();
  EXPECT_EQ(breaker.state(), StageBreaker::State::kOpen);
  EXPECT_FALSE(breaker.Allow());  // cooldown far from elapsed
}

TEST(StageBreakerTest, SuccessResetsTheFailureStreak) {
  StageBreaker breaker({.failure_threshold = 3, .open_ms = 1e9});
  breaker.RecordFailure();
  breaker.RecordFailure();
  breaker.RecordSuccess();
  EXPECT_EQ(breaker.consecutive_failures(), 0);
  // The streak restarts: two more failures do not open it.
  breaker.RecordFailure();
  breaker.RecordFailure();
  EXPECT_EQ(breaker.state(), StageBreaker::State::kClosed);
}

TEST(StageBreakerTest, CooldownAdmitsOneProbeThenHoldsOthers) {
  StageBreaker breaker({.failure_threshold = 1, .open_ms = 50.0});
  breaker.RecordFailure();
  EXPECT_EQ(breaker.state(), StageBreaker::State::kOpen);
  EXPECT_FALSE(breaker.Allow());

  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  EXPECT_TRUE(breaker.Allow());  // this caller is the probe
  EXPECT_EQ(breaker.state(), StageBreaker::State::kHalfOpen);
  // Probe outstanding: the next caller is held back (the probe
  // admission refreshed the cooldown clock).
  EXPECT_FALSE(breaker.Allow());
}

TEST(StageBreakerTest, ProbeSuccessClosesProbeFailureReopens) {
  StageBreaker breaker({.failure_threshold = 1, .open_ms = 0.0});
  breaker.RecordFailure();
  EXPECT_EQ(breaker.state(), StageBreaker::State::kOpen);

  // Zero cooldown: the next Allow is immediately the half-open probe.
  EXPECT_TRUE(breaker.Allow());
  EXPECT_EQ(breaker.state(), StageBreaker::State::kHalfOpen);
  breaker.RecordFailure();  // probe failed
  EXPECT_EQ(breaker.state(), StageBreaker::State::kOpen);

  EXPECT_TRUE(breaker.Allow());  // next probe
  breaker.RecordSuccess();
  EXPECT_EQ(breaker.state(), StageBreaker::State::kClosed);
  EXPECT_TRUE(breaker.Allow());
}

TEST(StageBreakerTest, StaleProbeDoesNotWedgeTheStage) {
  StageBreaker breaker({.failure_threshold = 1, .open_ms = 20.0});
  breaker.RecordFailure();
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_TRUE(breaker.Allow());  // probe admitted...
  // ...but its caller dies before recording an outcome. After another
  // cooldown a replacement probe must be admitted.
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_TRUE(breaker.Allow());
  EXPECT_EQ(breaker.state(), StageBreaker::State::kHalfOpen);
}

TEST(BreakerBoardTest, GatesStagesIndependently) {
  BreakerBoard board({.failure_threshold = 2, .open_ms = 1e9});
  EXPECT_TRUE(board.Allow("exact_dp"));
  EXPECT_TRUE(board.Allow("greedy_cover"));

  board.Record("exact_dp", false);
  board.Record("exact_dp", false);
  EXPECT_FALSE(board.Allow("exact_dp"));
  EXPECT_TRUE(board.Allow("greedy_cover"));  // unaffected

  board.Record("greedy_cover", true);
  EXPECT_TRUE(board.Allow("greedy_cover"));
}

TEST(BreakerBoardTest, DescribeRendersSortedStageStates) {
  BreakerBoard board({.failure_threshold = 1, .open_ms = 1e9});
  EXPECT_EQ(board.Describe(), "");  // nothing touched yet

  board.Record("greedy_cover", true);
  board.Record("exact_dp", false);
  // std::map keys render in name order.
  EXPECT_EQ(board.Describe(), "exact_dp:open,greedy_cover:closed");

  const auto snapshot = board.Snapshot();
  ASSERT_EQ(snapshot.size(), 2u);
  EXPECT_EQ(snapshot[0].first, "exact_dp");
  EXPECT_EQ(snapshot[0].second, StageBreaker::State::kOpen);
}

TEST(BreakerBoardTest, StateNamesAreStable) {
  EXPECT_STREQ(BreakerStateName(StageBreaker::State::kClosed), "closed");
  EXPECT_STREQ(BreakerStateName(StageBreaker::State::kOpen), "open");
  EXPECT_STREQ(BreakerStateName(StageBreaker::State::kHalfOpen),
               "half_open");
}

}  // namespace
}  // namespace kanon
