#include "service/server.h"

#include <unistd.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/anonymity.h"
#include "data/csv_table.h"
#include "gtest/gtest.h"
#include "util/string_util.h"

/// \file
/// End-to-end service tests over the line protocol: a scripted session
/// with a cold solve, a cache-served repeat at lower latency, typed
/// rejections that do not stop the serving loop, and shutdown.

namespace kanon {
namespace {

/// Distinct rows, inline-encoded. 14 rows: the exact_dp stage completes
/// in tens of milliseconds (2^n DP), so a cold solve does measurable
/// work while staying fast enough for the sanitizer suite. 30+ rows:
/// above every exact stage's structural cap.
std::string BigInline(int rows = 14) {
  std::string csv = "age,zip";
  for (int i = 0; i < rows; ++i) {
    csv += ";" + std::to_string(30 + i / 2) + ",1000" + std::to_string(i);
  }
  return csv;
}

/// Extracts the value of `key` from a "k1=v1 k2=v2 ..." response line.
std::string Field(const std::string& line, const std::string& key) {
  for (const std::string& token : Split(line, ' ')) {
    if (StartsWith(token, key + "=")) {
      return token.substr(key.size() + 1);
    }
  }
  return "";
}

Table TableFromInline(std::string inline_csv) {
  for (char& c : inline_csv) {
    if (c == ';') c = '\n';
  }
  StatusOr<Table> table = ParseTableCsv(inline_csv);
  EXPECT_TRUE(table.ok());
  return *std::move(table);
}

TEST(ServerTest, ScriptedSessionColdHitErrorStatsShutdown) {
  AnonymizationService service(
      {.workers = 2, .queue_capacity = 8, .cache_capacity = 8});

  const std::string anonymize =
      "anonymize algo=resilient k=4 csv=" + BigInline();
  std::istringstream in(anonymize + "\n" +        // cold
                        anonymize + "\n" +        // repeat -> cache
                        "stats\n" +               //
                        "anonymize algo=nope k=2 csv=a;1;2\n" +  // typed error
                        anonymize + "\n" +        // still serving
                        "shutdown\n" +            //
                        "anonymize algo=resilient k=2 csv=a;1;2\n");
  std::ostringstream out;
  const size_t served = ServeLines(service, in, out);
  EXPECT_EQ(served, 6u);  // the post-shutdown line is never read

  const std::vector<std::string> lines = [&] {
    std::vector<std::string> all = Split(out.str(), '\n');
    all.pop_back();  // trailing newline -> empty tail
    return all;
  }();
  ASSERT_EQ(lines.size(), 6u);

  // Cold solve: a verified k-anonymous answer.
  EXPECT_TRUE(StartsWith(lines[0], "ok verb=anonymize"));
  EXPECT_EQ(Field(lines[0], "cache"), "miss");
  EXPECT_EQ(Field(lines[0], "termination"), "completed");
  const Table anonymized = TableFromInline(Field(lines[0], "csv"));
  EXPECT_TRUE(IsKAnonymous(anonymized, 4));

  // Identical repeat: answered from cache, same answer, lower latency.
  EXPECT_EQ(Field(lines[1], "cache"), "hit");
  EXPECT_EQ(Field(lines[1], "csv"), Field(lines[0], "csv"));
  EXPECT_EQ(Field(lines[1], "cost"), Field(lines[0], "cost"));
  double cold_ms = 0.0, hit_ms = 0.0;
  ASSERT_TRUE(ParseDouble(Field(lines[0], "run_ms"), &cold_ms));
  ASSERT_TRUE(ParseDouble(Field(lines[1], "run_ms"), &hit_ms));
  EXPECT_LT(hit_ms, cold_ms);

  // stats reflects exactly one hit and one miss.
  EXPECT_TRUE(StartsWith(lines[2], "ok verb=stats"));
  EXPECT_EQ(Field(lines[2], "cache_hits"), "1");
  EXPECT_EQ(Field(lines[2], "cache_misses"), "1");
  EXPECT_EQ(Field(lines[2], "accepted"), "2");

  // The malformed request is a typed rejection...
  EXPECT_TRUE(StartsWith(lines[3], "error verb=anonymize"));
  EXPECT_EQ(Field(lines[3], "code"), "NOT_FOUND");
  EXPECT_EQ(Field(lines[3], "error"), "unknown_algorithm");

  // ... and the daemon keeps serving: the next request hits the cache.
  EXPECT_TRUE(StartsWith(lines[4], "ok verb=anonymize"));
  EXPECT_EQ(Field(lines[4], "cache"), "hit");

  EXPECT_EQ(lines[5], "ok verb=shutdown");
}

TEST(ServerTest, HandleRejectsOversizedKWithTypedError) {
  AnonymizationService service({.workers = 1});
  AnonymizeRequest request;
  request.algorithm = "resilient";
  request.k = 10;
  request.csv_text = "a\n1\n2\n";
  const AnonymizeResponse response = service.Handle(std::move(request));
  EXPECT_FALSE(response.ok());
  EXPECT_EQ(response.error, ServiceError::kBadParameter);
  EXPECT_EQ(response.status.code(), StatusCode::kInvalidArgument);
}

TEST(ServerTest, HandleParsesInlineCsvAndAnswers) {
  AnonymizationService service({.workers = 1});
  AnonymizeRequest request;
  request.algorithm = "resilient";
  request.k = 2;
  request.csv_text = "age\n30\n30\n31\n31\n";
  const AnonymizeResponse response = service.Handle(std::move(request));
  ASSERT_TRUE(response.ok()) << response.status;
  EXPECT_EQ(response.rows, 4u);
  EXPECT_EQ(response.cost, 0u);  // already 2-anonymous
}

TEST(ServerTest, MalformedProtocolLinesAreTypedAndNonFatal) {
  AnonymizationService service({.workers = 1});
  bool shutdown = false;

  std::string line = HandleLine(service, "anonymize k=abc csv=a;1", &shutdown);
  EXPECT_TRUE(StartsWith(line, "error "));
  EXPECT_EQ(Field(line, "error"), "bad_parameter");

  line = HandleLine(service, "anonymize wat", &shutdown);
  EXPECT_EQ(Field(line, "error"), "malformed_line");
  EXPECT_EQ(Field(line, "code"), "INVALID_ARGUMENT");

  line = HandleLine(service, "anonymize bad_key=1 csv=a;1", &shutdown);
  EXPECT_EQ(Field(line, "error"), "malformed_line");

  line = HandleLine(service, "anonymize algo=resilient k=2 csv=a;1;\"2",
                    &shutdown);
  EXPECT_EQ(Field(line, "error"), "table_parse_error");
  EXPECT_EQ(Field(line, "code"), "PARSE_ERROR");

  line = HandleLine(service, "anonymize algo=resilient k=2 file=/nope.csv",
                    &shutdown);
  EXPECT_EQ(Field(line, "error"), "table_not_found");
  EXPECT_EQ(Field(line, "code"), "NOT_FOUND");

  EXPECT_FALSE(shutdown);
  // The service survived all of the above.
  line = HandleLine(service, "anonymize algo=resilient k=2 csv=a;1;1",
                    &shutdown);
  EXPECT_TRUE(StartsWith(line, "ok "));
}

TEST(ServerTest, NearZeroDeadlineDegradesToSuppressAllNotError) {
  AnonymizationService service({.workers = 1});
  bool shutdown = false;
  const std::string line = HandleLine(
      service,
      "anonymize algo=resilient k=2 deadline_ms=0.001 csv=" +
          BigInline(/*rows=*/30),
      &shutdown);
  EXPECT_TRUE(StartsWith(line, "ok "));
  EXPECT_EQ(Field(line, "stage"), "suppress_all");
  EXPECT_EQ(Field(line, "termination"), "deadline");
  const Table anonymized = TableFromInline(Field(line, "csv"));
  EXPECT_TRUE(IsKAnonymous(anonymized, 2));
}

TEST(ServerTest, EmitZeroOmitsThePayload) {
  AnonymizationService service({.workers = 1});
  bool shutdown = false;
  const std::string line = HandleLine(
      service, "anonymize algo=resilient k=2 emit=0 csv=a;1;1", &shutdown);
  EXPECT_TRUE(StartsWith(line, "ok "));
  EXPECT_EQ(Field(line, "csv"), "");
  EXPECT_EQ(Field(line, "cost"), "0");
}

TEST(ServerTest, StatsCountsRejections) {
  AnonymizationService service({.workers = 1});
  AnonymizeRequest request;
  request.k = 99;
  request.csv_text = "a\n1\n";
  (void)service.Handle(std::move(request));  // invalid k; never admitted

  // Validation failures are not queue rejections; both counters exist.
  const ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.accepted, 0u);
  EXPECT_EQ(stats.rejected, 0u);
  EXPECT_EQ(stats.workers, 1u);
}

TEST(ServerTest, WaitZeroAnswersAtAdmission) {
  AnonymizationService service(
      {.workers = 1, .queue_capacity = 8, .cache_capacity = 8});
  bool shutdown = false;
  const std::string response = HandleLine(
      service,
      "anonymize algo=resilient k=2 wait=0 csv=" + BigInline(6),
      &shutdown);
  EXPECT_TRUE(StartsWith(response, "ok verb=anonymize id=")) << response;
  EXPECT_NE(response.find("queued=1"), std::string::npos) << response;
  // The fire-and-forget job still runs to completion in the background.
  service.Shutdown();
  EXPECT_EQ(service.Stats().completed, 1u);
}

TEST(ServerTest, StatsLineCarriesRobustnessCounters) {
  AnonymizationService service({.workers = 1});
  bool shutdown = false;
  const std::string stats = HandleLine(service, "stats", &shutdown);
  for (const char* key : {"shed=", "retries=", "retries_exhausted=",
                          "journal_replays=", "breakers=",
                          "cache_rejected="}) {
    EXPECT_NE(stats.find(key), std::string::npos)
        << "missing " << key << " in: " << stats;
  }
  EXPECT_EQ(Field(stats, "breakers"), "-");  // no stage has run yet
}

TEST(ServerTest, JournalReplayResubmitsPendingAndMarksInterrupted) {
  const std::string path = ::testing::TempDir() + "kanon_server_replay_" +
                           std::to_string(::getpid()) + ".journal";
  ::unlink(path.c_str());
  {
    // Journal of a previous "incarnation": job 1 never started, job 2
    // was on a worker at the crash, job 3 finished cleanly.
    JobJournal journal(path);
    for (uint64_t id = 1; id <= 3; ++id) {
      Job job;
      job.id = id;
      job.request.algorithm = "resilient";
      job.request.k = 2;
      job.request.csv_text = "a,b\n1,2\n1,2\n3,4\n3,4\n";
      journal.OnAdmit(job);
    }
    journal.OnStart(2);
    journal.OnStart(3);
    AnonymizeResponse done;
    journal.OnDone(3, done);
  }

  AnonymizationService service({.workers = 1});
  const StatusOr<JournalReplayReport> report =
      ReplayJournalIntoService(path, service);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->resubmitted, 1u);
  EXPECT_EQ(report->interrupted, 1u);
  EXPECT_EQ(report->completed, 1u);
  EXPECT_EQ(report->torn_records, 0u);

  ASSERT_EQ(report->lines.size(), 2u);
  EXPECT_TRUE(StartsWith(report->lines[0], "ok verb=replay old_id=1"))
      << report->lines[0];
  EXPECT_NE(report->lines[0].find("cost="), std::string::npos);
  EXPECT_TRUE(StartsWith(report->lines[1], "error verb=replay old_id=2"))
      << report->lines[1];
  EXPECT_NE(report->lines[1].find("error=interrupted"), std::string::npos)
      << report->lines[1];

  EXPECT_EQ(service.Stats().journal_replays, 2u);
  ::unlink(path.c_str());
}

TEST(ServerTest, CorruptJournalIsATypedReplayRefusal) {
  const std::string path = ::testing::TempDir() + "kanon_server_corrupt_" +
                           std::to_string(::getpid()) + ".journal";
  {
    std::ofstream out(path, std::ios::trunc);
    out << "deadbeefdeadbeef admit 1 algo=resilient k=2 csv=a;1;1\n"
        << "0000000000000000 done 1 ok\n";
  }
  AnonymizationService service({.workers = 1});
  const StatusOr<JournalReplayReport> report =
      ReplayJournalIntoService(path, service);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kParseError);
  ::unlink(path.c_str());
}

TEST(ServerTest, OversizedLineIsATypedErrorAndServingContinues) {
  AnonymizationService service({.workers = 1});
  // A line past kMaxProtocolLineBytes must be discarded *unparsed* and
  // answered with the typed line_too_long error — acting on a silently
  // truncated request would anonymize the wrong table.
  std::string huge = "anonymize algo=resilient k=2 csv=a";
  huge.append(kMaxProtocolLineBytes, ';');
  std::istringstream in(huge + "\n" +
                        "anonymize algo=resilient k=2 csv=a;1;1;2;2\n");
  std::ostringstream out;
  const size_t served = ServeLines(service, in, out);
  EXPECT_EQ(served, 2u);
  const std::vector<std::string> lines = Split(out.str(), '\n');
  ASSERT_GE(lines.size(), 2u);
  EXPECT_TRUE(StartsWith(lines[0], "error verb=-"));
  EXPECT_EQ(Field(lines[0], "error"), "line_too_long");
  EXPECT_EQ(Field(lines[0], "code"), "PARSE_ERROR");
  // The loop survived and the next request was served normally.
  EXPECT_TRUE(StartsWith(lines[1], "ok verb=anonymize"));
}

TEST(ServerTest, ExactlyCapSizedLineIsStillServed) {
  AnonymizationService service({.workers = 1});
  // Boundary: a line of exactly the cap parses; one byte over does not.
  std::string line = "anonymize algo=resilient k=2 csv=a;1;1;2;2";
  line.append(kMaxProtocolLineBytes - line.size() - 1, ' ');
  ASSERT_EQ(line.size(), kMaxProtocolLineBytes - 1);
  std::istringstream in(line + "\n");
  std::ostringstream out;
  EXPECT_EQ(ServeLines(service, in, out), 1u);
  EXPECT_TRUE(StartsWith(out.str(), "ok verb=anonymize"));
}

TEST(ServerTest, CrlfLineEndingsAreTolerated) {
  AnonymizationService service({.workers = 1});
  // A Windows-side client (or a proxy normalizing newlines) terminates
  // lines with \r\n; the \r must not poison the last key=value token.
  std::istringstream in(
      "anonymize algo=resilient k=2 csv=a;1;1;2;2\r\n"
      "stats\r\n"
      "shutdown\r\n");
  std::ostringstream out;
  const size_t served = ServeLines(service, in, out);
  EXPECT_EQ(served, 3u);
  const std::vector<std::string> lines = Split(out.str(), '\n');
  ASSERT_GE(lines.size(), 3u);
  EXPECT_TRUE(StartsWith(lines[0], "ok verb=anonymize"));
  EXPECT_TRUE(StartsWith(lines[1], "ok verb=stats"));
  EXPECT_TRUE(StartsWith(lines[2], "ok verb=shutdown"));
}

TEST(ServerTest, ShutdownStopsAdmission) {
  AnonymizationService service({.workers = 1});
  service.Shutdown();
  AnonymizeRequest request;
  request.algorithm = "resilient";
  request.k = 1;
  request.csv_text = "a\n1\n";
  const AnonymizeResponse response = service.Handle(std::move(request));
  EXPECT_FALSE(response.ok());
  EXPECT_EQ(response.error, ServiceError::kShuttingDown);
  EXPECT_EQ(response.status.code(), StatusCode::kCancelled);
}

}  // namespace
}  // namespace kanon
