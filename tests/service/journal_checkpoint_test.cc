#include <unistd.h>

#include <fstream>
#include <optional>
#include <string>

#include "ckpt/checkpoint.h"
#include "data/csv_table.h"
#include "gtest/gtest.h"
#include "service/cache.h"
#include "service/journal.h"
#include "service/server.h"

/// \file
/// The journal x checkpoint interplay: `ckpt` records ride in the
/// journal and surface as checkpoint_seq on replay; ApplyReplayToService
/// *continues* a started job whose snapshot is present and stamp-matched
/// (`resumed=1`), and degrades to the typed interrupted error — counting
/// resume_degraded — when the snapshot is missing, stale or corrupt.
/// Jobs without a journaled checkpoint never count as degraded.

namespace kanon {
namespace {

constexpr char kCsv[] = "a,b\n1,2\n1,2\n3,4\n3,4\n";

std::string TempPath(const std::string& tag) {
  return ::testing::TempDir() + "kanon_jnl_ckpt_" + tag + "_" +
         std::to_string(::getpid());
}

Job MakeJob(uint64_t id) {
  Job job;
  job.id = id;
  job.request.algorithm = "resilient";
  job.request.k = 2;
  job.request.csv_text = kCsv;
  job.request.emit_csv = true;
  return job;
}

/// A snapshot stamped for `kCsv` (unless a different fp is forced).
SolverSnapshot StampedSnapshot(uint64_t fp_override = 0) {
  StatusOr<Table> table = ParseTableCsv(kCsv);
  EXPECT_TRUE(table.ok());
  SolverSnapshot snapshot;
  snapshot.solver = "branch_bound";
  snapshot.table_fp =
      fp_override != 0 ? fp_override : TableFingerprint(*table);
  snapshot.k = 2;
  snapshot.seq = 3;
  snapshot.payload = "opaque-solver-state";
  return snapshot;
}

TEST(JournalCheckpoint, CkptRecordsSurviveReplayAndKeepTheMaxSeq) {
  const std::string path = TempPath("records.journal");
  ::unlink(path.c_str());
  {
    JobJournal journal(path);
    ASSERT_TRUE(journal.Open().ok());
    journal.OnAdmit(MakeJob(1));
    journal.OnStart(1);
    journal.OnCheckpoint(1, 1);
    journal.OnCheckpoint(1, 2);
    journal.OnAdmit(MakeJob(2));  // never started, never checkpointed
  }
  const StatusOr<JournalReplay> replay = JobJournal::ReplayFile(path);
  ASSERT_TRUE(replay.ok()) << replay.status();
  ASSERT_EQ(replay->pending.size(), 2u);
  EXPECT_TRUE(replay->pending[0].started);
  EXPECT_EQ(replay->pending[0].checkpoint_seq, 2u);
  EXPECT_EQ(replay->pending[1].checkpoint_seq, 0u);
  ::unlink(path.c_str());
}

struct ReplayFixture {
  /// Journals one started job with `seq` checkpoints (plus one
  /// never-started job), then replays into a fresh service.
  JournalReplayReport Run(CheckpointStore* store, uint64_t seq) {
    const std::string path = TempPath("fixture.journal");
    ::unlink(path.c_str());
    {
      JobJournal journal(path);
      EXPECT_TRUE(journal.Open().ok());
      journal.OnAdmit(MakeJob(1));
      journal.OnStart(1);
      for (uint64_t s = 1; s <= seq; ++s) journal.OnCheckpoint(1, s);
      journal.OnAdmit(MakeJob(2));
    }
    StatusOr<JournalReplay> replay = JobJournal::ReplayFile(path);
    EXPECT_TRUE(replay.ok()) << replay.status();
    ::unlink(path.c_str());

    ServiceOptions options;
    options.workers = 1;
    service.emplace(options);
    ReplayOptions replay_options;
    replay_options.checkpoints = store;
    return ApplyReplayToService(*std::move(replay), *service,
                                replay_options);
  }

  std::optional<AnonymizationService> service;
};

TEST(JournalCheckpoint, StampMatchedSnapshotResumesTheStartedJob) {
  CheckpointStore store(TempPath("resume.ckpt"));
  ASSERT_TRUE(store.Clear().ok());
  ASSERT_TRUE(store.Save(1, StampedSnapshot()).ok());

  ReplayFixture fixture;
  const JournalReplayReport report = fixture.Run(&store, /*seq=*/3);
  EXPECT_EQ(report.resumed, 1u);
  EXPECT_EQ(report.resume_degraded, 0u);
  EXPECT_EQ(report.interrupted, 0u);
  EXPECT_EQ(report.resubmitted, 1u);
  ASSERT_EQ(report.lines.size(), 2u);
  EXPECT_NE(report.lines[0].find("verb=replay old_id=1 resumed=1"),
            std::string::npos)
      << report.lines[0];
  EXPECT_EQ(report.lines[0].rfind("ok ", 0), 0u) << report.lines[0];

  // The store was cleared: this incarnation's ids restart at 1 and must
  // not inherit the dead incarnation's snapshots.
  EXPECT_TRUE(store.List().empty());

  const ServiceStats stats = fixture.service->Stats();
  EXPECT_EQ(stats.resumed, 1u);
  EXPECT_EQ(stats.resume_degraded, 0u);
  EXPECT_EQ(stats.journal_replays, 2u);
  ::rmdir(store.dir().c_str());
}

TEST(JournalCheckpoint, MissingSnapshotDegradesToTypedInterrupted) {
  CheckpointStore store(TempPath("missing.ckpt"));
  ASSERT_TRUE(store.Clear().ok());  // journaled ckpt, but no file

  ReplayFixture fixture;
  const JournalReplayReport report = fixture.Run(&store, /*seq=*/2);
  EXPECT_EQ(report.resumed, 0u);
  EXPECT_EQ(report.resume_degraded, 1u);
  EXPECT_EQ(report.interrupted, 1u);
  ASSERT_EQ(report.lines.size(), 2u);
  EXPECT_NE(report.lines[0].find("error=interrupted"), std::string::npos)
      << report.lines[0];
  EXPECT_NE(report.lines[0].find("checkpoint unusable"),
            std::string::npos)
      << report.lines[0];
  EXPECT_EQ(fixture.service->Stats().resume_degraded, 1u);
  ::rmdir(store.dir().c_str());
}

TEST(JournalCheckpoint, StaleStampDegradesToTypedInterrupted) {
  CheckpointStore store(TempPath("stale.ckpt"));
  ASSERT_TRUE(store.Clear().ok());
  // Snapshot stamped for a *different* table: never resume it.
  ASSERT_TRUE(store.Save(1, StampedSnapshot(/*fp_override=*/42)).ok());

  ReplayFixture fixture;
  const JournalReplayReport report = fixture.Run(&store, /*seq=*/1);
  EXPECT_EQ(report.resumed, 0u);
  EXPECT_EQ(report.resume_degraded, 1u);
  EXPECT_EQ(report.interrupted, 1u);
  EXPECT_NE(report.lines[0].find("stale"), std::string::npos)
      << report.lines[0];
  ::rmdir(store.dir().c_str());
}

TEST(JournalCheckpoint, CorruptSnapshotDegradesToTypedInterrupted) {
  CheckpointStore store(TempPath("corrupt.ckpt"));
  ASSERT_TRUE(store.Clear().ok());
  ASSERT_TRUE(store.Save(1, StampedSnapshot()).ok());
  {
    // Truncate to half: the torn-write crash shape.
    std::ifstream in(store.PathFor(1), std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    in.close();
    std::ofstream out(store.PathFor(1),
                      std::ios::binary | std::ios::trunc);
    out.write(bytes.data(),
              static_cast<std::streamsize>(bytes.size() / 2));
  }

  ReplayFixture fixture;
  const JournalReplayReport report = fixture.Run(&store, /*seq=*/1);
  EXPECT_EQ(report.resumed, 0u);
  EXPECT_EQ(report.resume_degraded, 1u);
  EXPECT_EQ(report.interrupted, 1u);
  EXPECT_NE(report.lines[0].find("checkpoint unusable"),
            std::string::npos)
      << report.lines[0];
  ::rmdir(store.dir().c_str());
}

TEST(JournalCheckpoint, NoCkptRecordMeansInterruptedWithoutDegradation) {
  CheckpointStore store(TempPath("nockpt.ckpt"));
  ASSERT_TRUE(store.Clear().ok());
  // Even a stamp-matched snapshot on disk is ignored when the journal
  // never recorded a checkpoint: the journal is the source of truth.
  ASSERT_TRUE(store.Save(1, StampedSnapshot()).ok());

  ReplayFixture fixture;
  const JournalReplayReport report = fixture.Run(&store, /*seq=*/0);
  EXPECT_EQ(report.resumed, 0u);
  EXPECT_EQ(report.resume_degraded, 0u);
  EXPECT_EQ(report.interrupted, 1u);
  EXPECT_NE(report.lines[0].find("error=interrupted"), std::string::npos);
  // The stray snapshot is still swept by the pre-resubmit Clear().
  EXPECT_TRUE(store.List().empty());
  ::rmdir(store.dir().c_str());
}

TEST(JournalCheckpoint, NoStoreConfiguredReplaysAsPlainInterrupted) {
  ReplayFixture fixture;
  const JournalReplayReport report =
      fixture.Run(/*store=*/nullptr, /*seq=*/5);
  EXPECT_EQ(report.resumed, 0u);
  EXPECT_EQ(report.resume_degraded, 0u);
  EXPECT_EQ(report.interrupted, 1u);
}

}  // namespace
}  // namespace kanon
