#include "service/overload/overload.h"

#include <string>
#include <vector>

#include "fault/fault.h"
#include "gtest/gtest.h"
#include "service/overload/codel.h"
#include "service/overload/estimator.h"
#include "service/overload/governor.h"
#include "service/overload/retry_budget.h"

/// \file
/// Unit contracts of the overload-control building blocks: the decaying
/// solve-time estimator stays optimistic, the CoDel controller only
/// sheds on *standing* delay, the retry budget caps retries at a ratio
/// of successes, and the brownout governor climbs its ladder with
/// hysteresis and decides rewrites deterministically.

namespace kanon {
namespace {

// ---------------------------------------------------------------------
// SolveTimeEstimator

TEST(SolveTimeEstimatorTest, NoObservationsMeansNoOpinion) {
  SolveTimeEstimator estimator;
  EXPECT_EQ(estimator.OptimisticMillis("mdav"), 0.0);
  EXPECT_EQ(estimator.QuantileMillis("mdav", 0.5), 0.0);
  EXPECT_EQ(estimator.Observations("mdav"), 0u);
}

TEST(SolveTimeEstimatorTest, OptimisticIsTheFastestBucketLowerEdge) {
  SolveTimeEstimator estimator;
  // 300ms lands in bucket (256, 512]; its lower edge is 256.
  estimator.Record("mdav", 300.0);
  estimator.Record("mdav", 400.0);
  EXPECT_EQ(estimator.OptimisticMillis("mdav"), 256.0);
  // One faster observation drags the optimistic bound down with it:
  // 3ms lands in (2, 4], lower edge 2.
  estimator.Record("mdav", 3.0);
  EXPECT_EQ(estimator.OptimisticMillis("mdav"), 2.0);
  // Backends do not share histograms.
  EXPECT_EQ(estimator.OptimisticMillis("exact_dp"), 0.0);
}

TEST(SolveTimeEstimatorTest, SubMillisecondObservationsNeverReject) {
  SolveTimeEstimator estimator;
  estimator.Record("mdav", 0.4);
  // Bucket 0's lower edge is 0 — "no defensible reason to reject".
  EXPECT_EQ(estimator.OptimisticMillis("mdav"), 0.0);
  EXPECT_EQ(estimator.Observations("mdav"), 1u);
}

TEST(SolveTimeEstimatorTest, QuantileTracksTheDistribution) {
  SolveTimeEstimator estimator;
  for (int i = 0; i < 90; ++i) estimator.Record("mdav", 10.0);  // (8,16]
  for (int i = 0; i < 10; ++i) estimator.Record("mdav", 700.0);
  EXPECT_EQ(estimator.QuantileMillis("mdav", 0.5), 16.0);
  EXPECT_EQ(estimator.QuantileMillis("mdav", 0.99), 1024.0);
}

TEST(SolveTimeEstimatorTest, DecayForgetsTheDistantPast) {
  EstimatorOptions options;
  options.decay_window = 8;
  SolveTimeEstimator estimator(options);
  for (int i = 0; i < 8; ++i) estimator.Record("mdav", 1000.0);
  const uint64_t after_decay = estimator.Observations("mdav");
  // The halving happened at the window boundary.
  EXPECT_LT(after_decay, 8u);
  // Fresh fast observations now dominate quickly.
  for (int i = 0; i < 8; ++i) estimator.Record("mdav", 3.0);
  EXPECT_EQ(estimator.OptimisticMillis("mdav"), 2.0);
  EXPECT_LE(estimator.QuantileMillis("mdav", 0.5), 4.0);
}

// ---------------------------------------------------------------------
// CoDelAdmission

TEST(CoDelAdmissionTest, BelowTargetNeverSheds) {
  CoDelAdmission codel({.target_ms = 20.0, .interval_ms = 100.0});
  for (double t = 0.0; t < 1000.0; t += 10.0) {
    codel.OnSojourn(5.0, t);
    EXPECT_FALSE(codel.ShouldShed(t));
  }
  EXPECT_EQ(codel.snapshot().sheds, 0u);
  EXPECT_EQ(codel.snapshot().shed_windows, 0u);
}

TEST(CoDelAdmissionTest, BriefSpikeDoesNotShed) {
  CoDelAdmission codel({.target_ms = 20.0, .interval_ms = 100.0});
  // Above target for less than one interval, then calm again.
  codel.OnSojourn(50.0, 0.0);
  codel.OnSojourn(50.0, 50.0);
  codel.OnSojourn(5.0, 90.0);
  codel.OnSojourn(50.0, 120.0);
  EXPECT_FALSE(codel.ShouldShed(130.0));
  EXPECT_FALSE(codel.snapshot().shedding);
}

TEST(CoDelAdmissionTest, StandingDelayEntersSheddingAndRecovers) {
  CoDelAdmission codel({.target_ms = 20.0, .interval_ms = 100.0});
  // Sojourn stays above target for a full interval: standing backlog.
  for (double t = 0.0; t <= 120.0; t += 10.0) codel.OnSojourn(60.0, t);
  EXPECT_TRUE(codel.snapshot().shedding);
  EXPECT_TRUE(codel.ShouldShed(125.0));
  EXPECT_EQ(codel.snapshot().sheds, 1u);
  EXPECT_EQ(codel.snapshot().shed_windows, 1u);
  // One below-target dequeue ends the episode.
  codel.OnSojourn(5.0, 130.0);
  EXPECT_FALSE(codel.snapshot().shedding);
  EXPECT_FALSE(codel.ShouldShed(135.0));
}

TEST(CoDelAdmissionTest, SheddingScheduleAcceleratesUnderSustainedDelay) {
  CoDelAdmission codel({.target_ms = 20.0, .interval_ms = 100.0});
  for (double t = 0.0; t <= 120.0; t += 10.0) codel.OnSojourn(60.0, t);
  ASSERT_TRUE(codel.snapshot().shedding);
  // Drive a long stream of arrivals while the backlog persists; the
  // interval/sqrt(n) control law must shed ever more frequently, so the
  // second 500ms of the episode sheds strictly more than the first.
  uint64_t first_half = 0;
  uint64_t second_half = 0;
  for (double t = 125.0; t < 625.0; t += 5.0) {
    codel.OnSojourn(60.0, t);
    if (codel.ShouldShed(t)) ++first_half;
  }
  for (double t = 625.0; t < 1125.0; t += 5.0) {
    codel.OnSojourn(60.0, t);
    if (codel.ShouldShed(t)) ++second_half;
  }
  EXPECT_GT(first_half, 0u);
  EXPECT_GT(second_half, first_half);
}

// ---------------------------------------------------------------------
// RetryBudget

TEST(RetryBudgetTest, InitialTokensAllowColdRetries) {
  RetryBudget budget({.ratio = 0.1, .initial = 2.0, .cap = 64.0});
  EXPECT_TRUE(budget.TryWithdraw());
  EXPECT_TRUE(budget.TryWithdraw());
  EXPECT_FALSE(budget.TryWithdraw());
  const RetryBudget::Snapshot snap = budget.snapshot();
  EXPECT_EQ(snap.granted, 2u);
  EXPECT_EQ(snap.denied, 1u);
}

TEST(RetryBudgetTest, SuccessesRefillAtTheRatio) {
  RetryBudget budget({.ratio = 0.5, .initial = 0.0, .cap = 64.0});
  EXPECT_FALSE(budget.TryWithdraw());
  budget.OnSuccess();  // 0.5 tokens: not a whole one yet
  EXPECT_FALSE(budget.TryWithdraw());
  budget.OnSuccess();  // 1.0
  EXPECT_TRUE(budget.TryWithdraw());
  EXPECT_FALSE(budget.TryWithdraw());
}

TEST(RetryBudgetTest, CapBoundsBankedCredit) {
  RetryBudget budget({.ratio = 1.0, .initial = 0.0, .cap = 3.0});
  for (int i = 0; i < 100; ++i) budget.OnSuccess();
  EXPECT_EQ(budget.snapshot().tokens, 3.0);
  EXPECT_TRUE(budget.TryWithdraw());
  EXPECT_TRUE(budget.TryWithdraw());
  EXPECT_TRUE(budget.TryWithdraw());
  EXPECT_FALSE(budget.TryWithdraw());
}

// ---------------------------------------------------------------------
// HealthGovernor

GovernorOptions FastGovernor() {
  GovernorOptions options;
  options.yellow_delay_ms = 50.0;
  options.red_delay_ms = 200.0;
  options.up_ticks = 2;
  options.down_ticks = 3;
  return options;
}

GovernorSignals Delay(double ms) {
  GovernorSignals signals;
  signals.queue_delay_ms = ms;
  return signals;
}

TEST(HealthGovernorTest, EscalatesOneRungAtATimeWithHysteresis) {
  HealthGovernor governor(FastGovernor());
  // One pressured tick is not enough (up_ticks = 2).
  EXPECT_EQ(governor.Update(Delay(300.0)), BrownoutLevel::kGreen);
  // A single spike cannot catapult green -> red: red pressure first
  // lands the governor at yellow.
  EXPECT_EQ(governor.Update(Delay(300.0)), BrownoutLevel::kYellow);
  EXPECT_EQ(governor.Update(Delay(300.0)), BrownoutLevel::kYellow);
  EXPECT_EQ(governor.Update(Delay(300.0)), BrownoutLevel::kRed);
  EXPECT_EQ(governor.snapshot().transitions, 2u);
}

TEST(HealthGovernorTest, RelaxesOnlyAfterDownTicksOfCalm) {
  HealthGovernor governor(FastGovernor());
  for (int i = 0; i < 2; ++i) governor.Update(Delay(100.0));
  ASSERT_EQ(governor.level(), BrownoutLevel::kYellow);
  // Calm ticks interrupted by pressure reset the down streak.
  governor.Update(Delay(0.0));
  governor.Update(Delay(0.0));
  governor.Update(Delay(100.0));
  EXPECT_EQ(governor.level(), BrownoutLevel::kYellow);
  governor.Update(Delay(0.0));
  governor.Update(Delay(0.0));
  EXPECT_EQ(governor.Update(Delay(0.0)), BrownoutLevel::kGreen);
}

TEST(HealthGovernorTest, OpenBreakersSignalYellowPressure) {
  GovernorOptions options = FastGovernor();
  options.open_breakers_yellow = 1;
  HealthGovernor governor(options);
  GovernorSignals signals;
  signals.open_breakers = 1;
  governor.Update(signals);
  EXPECT_EQ(governor.Update(signals), BrownoutLevel::kYellow);
}

TEST(HealthGovernorTest, MemoryLatchIsRedPressure) {
  HealthGovernor governor(FastGovernor());
  GovernorSignals signals;
  signals.memory_latched = true;
  governor.Update(signals);
  governor.Update(signals);  // green -> yellow
  governor.Update(signals);
  EXPECT_EQ(governor.Update(signals), BrownoutLevel::kRed);
}

TEST(HealthGovernorTest, YellowRewritesDirectBackendsToSharded) {
  HealthGovernor governor(FastGovernor());
  const RewriteDecision mdav =
      governor.Decide(1, "mdav", 0.0, BrownoutLevel::kYellow);
  EXPECT_TRUE(mdav.rewritten);
  EXPECT_EQ(mdav.effective, "sharded_mdav");
  EXPECT_EQ(mdav.coreset_rate, 0.0);
  // Exact solvers have no cheap variant of themselves: they degrade to
  // the workhorse heuristic's ladder.
  const RewriteDecision exact =
      governor.Decide(2, "exact_dp", 0.0, BrownoutLevel::kYellow);
  EXPECT_TRUE(exact.rewritten);
  EXPECT_EQ(exact.effective, "sharded_mdav");
}

TEST(HealthGovernorTest, RedRewritesToCoresetWithTheLadderRate) {
  HealthGovernor governor(FastGovernor());
  const RewriteDecision decision =
      governor.Decide(1, "cluster_greedy", 0.0, BrownoutLevel::kRed);
  EXPECT_TRUE(decision.rewritten);
  EXPECT_EQ(decision.effective, "coreset_cluster_greedy");
  EXPECT_EQ(decision.coreset_rate, 0.25);
  // sharded_* at red drops one more rung, to its coreset sibling.
  const RewriteDecision sharded =
      governor.Decide(2, "sharded_mdav", 0.0, BrownoutLevel::kRed);
  EXPECT_TRUE(sharded.rewritten);
  EXPECT_EQ(sharded.effective, "coreset_mdav");
}

TEST(HealthGovernorTest, LeavesExplicitQualityRequestsAlone) {
  HealthGovernor governor(FastGovernor());
  // Composed names are explicit quality asks; suppress_all is already
  // terminal; the resilient chain manages its own degradation.
  for (const char* name :
       {"mdav+local_search", "suppress_all", "resilient", "mondrian"}) {
    const RewriteDecision decision =
        governor.Decide(1, name, 0.0, BrownoutLevel::kRed);
    EXPECT_FALSE(decision.rewritten) << name;
  }
}

TEST(HealthGovernorTest, RedOnlyClampsCoresetRatesDownNeverUp) {
  HealthGovernor governor(FastGovernor());
  // Requested 0.5 > ladder 0.25: clamp down.
  const RewriteDecision clamp =
      governor.Decide(1, "coreset_mdav", 0.5, BrownoutLevel::kRed);
  EXPECT_TRUE(clamp.rewritten);
  EXPECT_EQ(clamp.effective, "coreset_mdav");
  EXPECT_EQ(clamp.coreset_rate, 0.25);
  // Requested 0.1 < ladder 0.25: an explicit aggressive rate stands.
  const RewriteDecision keep =
      governor.Decide(2, "coreset_mdav", 0.1, BrownoutLevel::kRed);
  EXPECT_FALSE(keep.rewritten);
  // At yellow, already-sampling backends are never touched.
  const RewriteDecision yellow =
      governor.Decide(3, "coreset_mdav", 0.5, BrownoutLevel::kYellow);
  EXPECT_FALSE(yellow.rewritten);
}

TEST(HealthGovernorTest, SustainedRedHalvesTheCoresetRateToAFloor) {
  GovernorOptions options = FastGovernor();
  options.escalate_ticks = 2;
  options.red_coreset_rate = 0.4;
  options.min_coreset_rate = 0.05;
  HealthGovernor governor(options);
  for (int i = 0; i < 2; ++i) governor.Update(Delay(300.0));  // yellow
  for (int i = 0; i < 2; ++i) governor.Update(Delay(300.0));  // red
  EXPECT_EQ(governor.RedCoresetRate(), 0.4);
  governor.Update(Delay(300.0));
  governor.Update(Delay(300.0));  // one escalation epoch
  EXPECT_EQ(governor.RedCoresetRate(), 0.2);
  for (int i = 0; i < 20; ++i) governor.Update(Delay(300.0));
  EXPECT_EQ(governor.RedCoresetRate(), 0.05);  // floor holds
  EXPECT_GT(governor.snapshot().red_epochs, 3u);
}

TEST(HealthGovernorTest, ApplyFractionIsDeterministicPerJobId) {
  GovernorOptions options = FastGovernor();
  options.apply_fraction = 0.5;
  options.seed = 77;
  HealthGovernor a(options);
  HealthGovernor b(options);
  size_t rewritten = 0;
  for (uint64_t id = 0; id < 200; ++id) {
    const RewriteDecision da =
        a.Decide(id, "mdav", 0.0, BrownoutLevel::kYellow);
    const RewriteDecision db =
        b.Decide(id, "mdav", 0.0, BrownoutLevel::kYellow);
    EXPECT_EQ(da.rewritten, db.rewritten) << "job " << id;
    EXPECT_EQ(da.effective, db.effective) << "job " << id;
    if (da.rewritten) ++rewritten;
  }
  // The hash actually samples: neither none nor all.
  EXPECT_GT(rewritten, 50u);
  EXPECT_LT(rewritten, 150u);
}

// ---------------------------------------------------------------------
// OverloadControl (the composed plane)

TEST(OverloadControlTest, DeadlineInfeasibleNeedsAnOpinion) {
  OverloadControl overload;
  // No observations: never reject a job with time on the clock.
  EXPECT_FALSE(overload.DeadlineInfeasible("mdav", 1.0));
  // A deadline already in the past is always infeasible.
  EXPECT_TRUE(overload.DeadlineInfeasible("mdav", -1.0));
  // Teach the estimator that mdav takes ~300ms; 50ms of budget is now
  // provably not enough (optimistic bound 256ms), 400ms still is.
  overload.RecordOutcome("mdav", 300.0, true, StopReason::kNone, false);
  EXPECT_TRUE(overload.DeadlineInfeasible("mdav", 50.0));
  EXPECT_FALSE(overload.DeadlineInfeasible("mdav", 400.0));
  EXPECT_EQ(overload.counters().deadline_infeasible, 2u);
}

TEST(OverloadControlTest, CacheHitsDoNotPoisonTheEstimator) {
  OverloadControl overload;
  overload.RecordOutcome("mdav", 0.01, true, StopReason::kNone,
                         /*cache_hit=*/true);
  EXPECT_EQ(overload.estimator().Observations("mdav"), 0u);
}

TEST(OverloadControlTest, ForcedShedFaultFiresRegardlessOfCoDel) {
  OverloadControl overload;
  FaultPlan plan;
  plan.seed = 1;
  plan.sites.push_back({.site = "overload.shed", .first_n = 2});
  ScopedFaultInjection armed(plan);
  EXPECT_TRUE(overload.ShouldShed(0.0));
  EXPECT_TRUE(overload.ShouldShed(1.0));
  EXPECT_FALSE(overload.ShouldShed(2.0));
  EXPECT_EQ(overload.counters().shed, 2u);
}

TEST(OverloadControlTest, ForcedBrownoutForcesAtLeastYellow) {
  OverloadControl overload;
  FaultPlan plan;
  plan.seed = 1;
  plan.sites.push_back({.site = "overload.brownout", .first_n = 1});
  ScopedFaultInjection armed(plan);
  const RewriteDecision forced = overload.MaybeRewrite(1, "mdav", 0.0);
  EXPECT_TRUE(forced.rewritten);
  EXPECT_EQ(forced.effective, "sharded_mdav");
  // The fault exhausted: back to the governor's organic (green) level.
  const RewriteDecision organic = overload.MaybeRewrite(2, "mdav", 0.0);
  EXPECT_FALSE(organic.rewritten);
  EXPECT_EQ(overload.counters().brownouts, 1u);
}

TEST(OverloadControlTest, DisabledGovernorNeverRewrites) {
  OverloadOptions options;
  options.governor_enabled = false;  // --brownout=off
  OverloadControl overload(options);
  FaultPlan plan;
  plan.seed = 1;
  plan.sites.push_back({.site = "overload.brownout", .probability = 1.0});
  ScopedFaultInjection armed(plan);
  EXPECT_FALSE(overload.MaybeRewrite(1, "mdav", 0.0).rewritten);
  EXPECT_FALSE(overload.governor_enabled());
}

TEST(OverloadControlTest, BudgetTripLatchesRedPressure) {
  OverloadOptions options;
  options.memory_latch_updates = 3;
  // Organic delay thresholds far away: only the latch can signal.
  options.governor.up_ticks = 1;
  OverloadControl overload(options);
  overload.RecordOutcome("mdav", 5.0, true, StopReason::kBudget, false);
  overload.OnDequeue(0.0, 0.0, 0);  // latched -> red pressure -> yellow
  overload.OnDequeue(0.0, 1.0, 0);  // -> red
  EXPECT_EQ(overload.level(), BrownoutLevel::kRed);
}

TEST(OverloadControlTest, RetryDenialsAreCounted) {
  OverloadOptions options;
  options.retry_budget.initial = 1.0;
  options.retry_budget.ratio = 0.0;
  OverloadControl overload(options);
  EXPECT_TRUE(overload.AllowRetry());
  EXPECT_FALSE(overload.AllowRetry());
  EXPECT_FALSE(overload.AllowRetry());
  EXPECT_EQ(overload.counters().retry_denied, 2u);
}

}  // namespace
}  // namespace kanon
