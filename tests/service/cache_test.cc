#include "service/cache.h"

#include "data/csv_table.h"
#include "gtest/gtest.h"

/// \file
/// The LRU result cache: key semantics (content identity, not object
/// identity), hit/miss/eviction accounting, and recency order.

namespace kanon {
namespace {

CacheKey KeyFor(uint64_t table_fp, const std::string& algo, size_t k) {
  CacheKey key;
  key.table_fp = table_fp;
  key.algorithm = algo;
  key.k = k;
  return key;
}

CachedResult ResultWithCost(size_t cost) {
  CachedResult result;
  result.cost = cost;
  result.stage = "exact_dp";
  return result;
}

TEST(CacheTest, MissThenHit) {
  ResultCache cache(4);
  const CacheKey key = KeyFor(1, "resilient", 3);

  EXPECT_FALSE(cache.Lookup(key).has_value());
  cache.Insert(key, ResultWithCost(7));
  const auto hit = cache.Lookup(key);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->cost, 7u);

  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.evictions, 0u);
  EXPECT_EQ(stats.size, 1u);
}

TEST(CacheTest, KeyDistinguishesAlgorithmKAndTable) {
  ResultCache cache(8);
  cache.Insert(KeyFor(1, "resilient", 3), ResultWithCost(1));

  EXPECT_FALSE(cache.Lookup(KeyFor(1, "resilient", 4)).has_value());
  EXPECT_FALSE(cache.Lookup(KeyFor(1, "mondrian", 3)).has_value());
  EXPECT_FALSE(cache.Lookup(KeyFor(2, "resilient", 3)).has_value());
  EXPECT_TRUE(cache.Lookup(KeyFor(1, "resilient", 3)).has_value());
}

TEST(CacheTest, KnobsFingerprintSeparatesCoresetConfigurations) {
  // Same table, same algorithm name, same k — but different coreset
  // knobs produce different answers and must occupy different entries.
  ResultCache cache(8);
  CacheKey defaults = KeyFor(1, "coreset_mdav", 3);
  defaults.knobs_fp = 0x1111;
  CacheKey reseeded = defaults;
  reseeded.knobs_fp = 0x2222;

  cache.Insert(defaults, ResultWithCost(10));
  EXPECT_FALSE(cache.Lookup(reseeded).has_value());
  cache.Insert(reseeded, ResultWithCost(20));
  EXPECT_EQ(cache.Lookup(defaults)->cost, 10u);
  EXPECT_EQ(cache.Lookup(reseeded)->cost, 20u);
  EXPECT_EQ(cache.stats().size, 2u);
}

TEST(CacheTest, TaintGuardRejectsNonDeterministicOutcomes) {
  ResultCache cache(4);
  const CacheKey key = KeyFor(1, "resilient", 3);

  // Deadline / cancellation artifacts depend on wall-clock luck (or on
  // an injected fault); serving one to a later caller would violate the
  // no-tainted-hits invariant, so the insert boundary refuses them.
  for (const StopReason tainted :
       {StopReason::kDeadline, StopReason::kCancelled}) {
    CachedResult result = ResultWithCost(9);
    result.termination = tainted;
    cache.Insert(key, std::move(result));
    EXPECT_FALSE(cache.Lookup(key).has_value());
  }
  EXPECT_EQ(cache.stats().rejected, 2u);
  EXPECT_EQ(cache.stats().size, 0u);

  // Structural-budget degradations and full completions are
  // deterministic for the instance: both cacheable.
  CachedResult budget = ResultWithCost(5);
  budget.termination = StopReason::kBudget;
  cache.Insert(key, std::move(budget));
  EXPECT_TRUE(cache.Lookup(key).has_value());
  EXPECT_EQ(cache.stats().rejected, 2u);
}

TEST(CacheTest, EvictsLeastRecentlyUsed) {
  ResultCache cache(2);
  const CacheKey a = KeyFor(1, "a", 3);
  const CacheKey b = KeyFor(2, "b", 3);
  const CacheKey c = KeyFor(3, "c", 3);

  cache.Insert(a, ResultWithCost(1));
  cache.Insert(b, ResultWithCost(2));
  ASSERT_TRUE(cache.Lookup(a).has_value());  // refresh a; b is now LRU
  cache.Insert(c, ResultWithCost(3));        // evicts b

  EXPECT_TRUE(cache.Lookup(a).has_value());
  EXPECT_FALSE(cache.Lookup(b).has_value());
  EXPECT_TRUE(cache.Lookup(c).has_value());
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.stats().size, 2u);
}

TEST(CacheTest, ReinsertRefreshesInsteadOfDuplicating) {
  ResultCache cache(2);
  const CacheKey a = KeyFor(1, "a", 3);
  cache.Insert(a, ResultWithCost(1));
  cache.Insert(a, ResultWithCost(9));
  EXPECT_EQ(cache.stats().size, 1u);
  EXPECT_EQ(cache.Lookup(a)->cost, 9u);
}

TEST(CacheTest, ZeroCapacityDisablesCaching) {
  ResultCache cache(0);
  const CacheKey a = KeyFor(1, "a", 3);
  cache.Insert(a, ResultWithCost(1));
  EXPECT_FALSE(cache.Lookup(a).has_value());
  EXPECT_EQ(cache.stats().size, 0u);
  EXPECT_EQ(cache.stats().capacity, 0u);
}

TEST(CacheTest, TableFingerprintIsContentIdentity) {
  const StatusOr<Table> a = ParseTableCsv("age,zip\n30,10001\n31,10002\n");
  const StatusOr<Table> b = ParseTableCsv("age,zip\n30,10001\n31,10002\n");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  // Distinct objects, identical content.
  EXPECT_EQ(TableFingerprint(*a), TableFingerprint(*b));

  // Any content difference moves the fingerprint: a cell, an attribute
  // name, or row order.
  const StatusOr<Table> cell = ParseTableCsv("age,zip\n30,10001\n31,10003\n");
  const StatusOr<Table> header =
      ParseTableCsv("age,postal\n30,10001\n31,10002\n");
  const StatusOr<Table> order = ParseTableCsv("age,zip\n31,10002\n30,10001\n");
  EXPECT_NE(TableFingerprint(*a), TableFingerprint(*cell));
  EXPECT_NE(TableFingerprint(*a), TableFingerprint(*header));
  EXPECT_NE(TableFingerprint(*a), TableFingerprint(*order));
}

TEST(CacheTest, TableFingerprintIgnoresDictionaryCodeOrder) {
  // Same decoded content, but the dictionaries intern values in a
  // different order, so the underlying codes differ.
  const StatusOr<Table> a = ParseTableCsv("c\nx\ny\nx\n");
  const StatusOr<Table> b = ParseTableCsv("c\ny\nx\ny\n");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NE(TableFingerprint(*a), TableFingerprint(*b));

  // Rebuilding a's decoded content through fresh interning fingerprints
  // identically even though the code assignment could differ.
  Table same(Schema({"c"}));
  same.AppendStringRow({"x"});
  same.AppendStringRow({"y"});
  same.AppendStringRow({"x"});
  EXPECT_EQ(TableFingerprint(*a), TableFingerprint(same));
}

}  // namespace
}  // namespace kanon
