#include "service/watchdog.h"

#include <memory>

#include "data/csv_table.h"
#include "data/generators/uniform.h"
#include "fault/fault.h"
#include "gtest/gtest.h"
#include "service/worker_pool.h"
#include "util/random.h"

/// \file
/// Watchdog semantics: progress (heartbeats + charged nodes) resets the
/// stall clock, a flat-lined job is preempted exactly once, unwatched
/// jobs are invisible, and through the pool an injected `worker.stall`
/// becomes one typed watchdog_preempted response — while the stall site
/// never even arms on a pool without a watchdog.

namespace kanon {
namespace {

/// A scan interval long enough that the background loop never fires
/// during a test: scans are driven manually through ScanOnce().
WatchdogOptions ManualScan(double stall_ms) {
  return WatchdogOptions{.scan_interval_ms = 1e9, .stall_ms = stall_ms};
}

TEST(WatchdogTest, FlatProgressIsPreemptedExactlyOnce) {
  Watchdog watchdog(ManualScan(/*stall_ms=*/0.0));
  auto ctx = std::make_shared<RunContext>();
  watchdog.Watch(1, ctx);
  EXPECT_EQ(watchdog.watched(), 1u);

  // No progress since Watch() and stall_ms=0: the first scan preempts.
  watchdog.ScanOnce();
  EXPECT_TRUE(ctx->preempt_requested());
  EXPECT_TRUE(ctx->cancel_requested());
  EXPECT_EQ(watchdog.preemptions(), 1u);

  // One-shot: further scans do not preempt the same entry again.
  watchdog.ScanOnce();
  watchdog.ScanOnce();
  EXPECT_EQ(watchdog.preemptions(), 1u);
}

TEST(WatchdogTest, AdvancingProgressResetsTheStallClock) {
  Watchdog watchdog(ManualScan(/*stall_ms=*/0.0));
  auto ctx = std::make_shared<RunContext>();
  watchdog.Watch(7, ctx);

  // Node charges and heartbeat polls both count as progress; as long as
  // either advances between scans, even a zero stall bound never trips.
  for (int i = 0; i < 5; ++i) {
    ctx->ChargeNodes();
    watchdog.ScanOnce();
    EXPECT_FALSE(ctx->preempt_requested()) << "scan " << i;
  }
  for (int i = 0; i < 5; ++i) {
    (void)ctx->ShouldStop();  // bumps heartbeats
    watchdog.ScanOnce();
    EXPECT_FALSE(ctx->preempt_requested()) << "scan " << i;
  }
  EXPECT_EQ(watchdog.preemptions(), 0u);

  // The moment progress flat-lines, the next scan trips.
  watchdog.ScanOnce();
  EXPECT_TRUE(ctx->preempt_requested());
  EXPECT_EQ(watchdog.preemptions(), 1u);
}

TEST(WatchdogTest, UnwatchedJobsAreInvisible) {
  Watchdog watchdog(ManualScan(/*stall_ms=*/0.0));
  auto ctx = std::make_shared<RunContext>();
  watchdog.Watch(3, ctx);
  watchdog.Unwatch(3);
  EXPECT_EQ(watchdog.watched(), 0u);

  watchdog.ScanOnce();
  EXPECT_FALSE(ctx->preempt_requested());
  EXPECT_EQ(watchdog.preemptions(), 0u);
}

AnonymizeRequest SmallRequest(uint64_t seed) {
  Rng rng(seed);
  AnonymizeRequest request;
  request.algorithm = "resilient";
  request.k = 2;
  request.table.emplace(UniformTable(
      {.num_rows = 8, .num_columns = 3, .alphabet = 3}, &rng));
  request.emit_csv = true;
  return request;
}

TEST(WatchdogPoolTest, InjectedStallBecomesOneTypedPreemptedResponse) {
  FaultPlan plan;
  plan.sites.push_back({.site = "worker.stall", .first_n = 1});
  ScopedFaultInjection injection(plan);

  Watchdog watchdog(
      WatchdogOptions{.scan_interval_ms = 5.0, .stall_ms = 100.0});
  JobQueue queue(8);
  WorkerPoolOptions options;
  options.workers = 1;
  options.watchdog = &watchdog;
  WorkerPool pool(&queue, /*cache=*/nullptr, options);

  ServiceError error = ServiceError::kNone;
  const AnonymizeResponse stalled =
      queue.Submit(SmallRequest(1), &error)->result.get();
  EXPECT_FALSE(stalled.ok());
  EXPECT_EQ(stalled.error, ServiceError::kWatchdogPreempted);
  EXPECT_NE(stalled.status.message().find("progress stall"),
            std::string::npos)
      << stalled.status.message();

  // The fault budget (first_n=1) is spent: the next job sails through
  // and must not be preempted — it heartbeats normally.
  const AnonymizeResponse healthy =
      queue.Submit(SmallRequest(2), &error)->result.get();
  EXPECT_TRUE(healthy.ok()) << healthy.status;

  queue.Close();
  pool.Join();
  EXPECT_EQ(pool.counters().watchdog_preempted, 1u);
  EXPECT_EQ(watchdog.preemptions(), 1u);
}

TEST(WatchdogPoolTest, StallSiteNeverArmsWithoutAWatchdog) {
  FaultPlan plan;
  plan.sites.push_back({.site = "worker.stall", .first_n = 1});
  ScopedFaultInjection injection(plan);

  JobQueue queue(8);
  WorkerPool pool(&queue, /*cache=*/nullptr, {.workers = 1});

  // Without a watchdog nothing could ever break the stall loop, so the
  // pool must not even poll the site; the job completes normally.
  ServiceError error = ServiceError::kNone;
  const AnonymizeResponse response =
      queue.Submit(SmallRequest(3), &error)->result.get();
  EXPECT_TRUE(response.ok()) << response.status;

  for (const FaultSiteSnapshot& site :
       FaultRegistry::Instance().Snapshot()) {
    if (site.name == "worker.stall") {
      EXPECT_EQ(site.hits, 0u);
      EXPECT_EQ(site.fires, 0u);
    }
  }
  queue.Close();
  pool.Join();
}

}  // namespace
}  // namespace kanon
