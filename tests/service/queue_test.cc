#include "service/queue.h"

#include <string>
#include <thread>
#include <vector>

#include "data/csv_table.h"
#include "gtest/gtest.h"

/// \file
/// Admission control and dispatch order of the bounded job queue:
/// reject-with-kResourceExhausted when full, priority then
/// oldest-deadline-first then FIFO dispatch, cancellation through the
/// job's RunContext, and clean close/drain.

namespace kanon {
namespace {

AnonymizeRequest SmallRequest(double deadline_ms = 0.0, int priority = 0) {
  AnonymizeRequest request;
  request.algorithm = "resilient";
  request.k = 2;
  request.deadline_ms = deadline_ms;
  request.priority = priority;
  StatusOr<Table> table = ParseTableCsv("a\n1\n1\n");
  EXPECT_TRUE(table.ok());
  request.table.emplace(*std::move(table));
  return request;
}

TEST(QueueTest, RejectsWhenFullWithResourceExhausted) {
  JobQueue queue(2);
  ServiceError error = ServiceError::kNone;
  ASSERT_TRUE(queue.Submit(SmallRequest(), &error).ok());
  ASSERT_TRUE(queue.Submit(SmallRequest(), &error).ok());

  const StatusOr<JobQueue::Ticket> overflow =
      queue.Submit(SmallRequest(), &error);
  ASSERT_FALSE(overflow.ok());
  EXPECT_EQ(overflow.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(error, ServiceError::kQueueFull);

  const JobQueue::Counters counters = queue.counters();
  EXPECT_EQ(counters.accepted, 2u);
  EXPECT_EQ(counters.rejected, 1u);
  EXPECT_EQ(queue.depth(), 2u);
}

TEST(QueueTest, PopDrainsAdmittedJobsThenBlocksUntilClose) {
  JobQueue queue(4);
  ServiceError error = ServiceError::kNone;
  ASSERT_TRUE(queue.Submit(SmallRequest(), &error).ok());
  EXPECT_TRUE(queue.Pop().has_value());

  queue.Close();
  EXPECT_FALSE(queue.Pop().has_value());  // closed and drained

  // Admission after Close is a typed rejection.
  const StatusOr<JobQueue::Ticket> late =
      queue.Submit(SmallRequest(), &error);
  ASSERT_FALSE(late.ok());
  EXPECT_EQ(late.status().code(), StatusCode::kCancelled);
  EXPECT_EQ(error, ServiceError::kShuttingDown);
}

TEST(QueueTest, DispatchOrderPriorityThenDeadlineThenFifo) {
  JobQueue queue(8);
  ServiceError error = ServiceError::kNone;
  // Admitted in scrambled order; ids are 1..5 in submission order.
  const uint64_t plain_a = queue.Submit(SmallRequest(), &error)->id;
  const uint64_t slack =
      queue.Submit(SmallRequest(/*deadline_ms=*/60000.0), &error)->id;
  const uint64_t urgent =
      queue.Submit(SmallRequest(/*deadline_ms=*/5000.0), &error)->id;
  const uint64_t vip =
      queue.Submit(SmallRequest(/*deadline_ms=*/0.0, /*priority=*/2), &error)
          ->id;
  const uint64_t plain_b = queue.Submit(SmallRequest(), &error)->id;

  // Highest priority first; then oldest (earliest) deadline; jobs with
  // no deadline sort last among equals, FIFO between themselves.
  EXPECT_EQ(queue.Pop()->id, vip);
  EXPECT_EQ(queue.Pop()->id, urgent);
  EXPECT_EQ(queue.Pop()->id, slack);
  EXPECT_EQ(queue.Pop()->id, plain_a);
  EXPECT_EQ(queue.Pop()->id, plain_b);
}

TEST(QueueTest, CancelReachesQueuedJobContext) {
  JobQueue queue(4);
  ServiceError error = ServiceError::kNone;
  const uint64_t id = queue.Submit(SmallRequest(), &error)->id;

  EXPECT_TRUE(queue.Cancel(id));
  EXPECT_FALSE(queue.Cancel(id + 100));  // unknown id

  std::optional<Job> job = queue.Pop();
  ASSERT_TRUE(job.has_value());
  EXPECT_TRUE(job->ctx->cancel_requested());

  // After the worker forgets the job, its id no longer resolves.
  queue.Forget(id);
  EXPECT_FALSE(queue.Cancel(id));
}

TEST(QueueTest, DeadlineArmsTheRunContextAtAdmission) {
  JobQueue queue(4);
  ServiceError error = ServiceError::kNone;
  ASSERT_TRUE(queue.Submit(SmallRequest(/*deadline_ms=*/60000.0), &error)
                  .ok());
  std::optional<Job> job = queue.Pop();
  ASSERT_TRUE(job.has_value());
  EXPECT_TRUE(job->ctx->has_deadline());
  EXPECT_GT(job->ctx->remaining_millis(), 0.0);
  EXPECT_LE(job->ctx->remaining_millis(), 60000.0);
}

TEST(QueueTest, LoadSheddingRaisesThePriorityBarWithOccupancy) {
  QueueOptions options;
  options.capacity = 8;
  options.shed_start_fraction = 0.5;
  options.shed_levels = 4;
  JobQueue queue(options);
  ServiceError error = ServiceError::kNone;

  // Calm queue (occupancy < 0.5): no bar, even negative priority enters.
  ASSERT_TRUE(queue.Submit(SmallRequest(0.0, /*priority=*/-3), &error).ok());
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(queue.Submit(SmallRequest(), &error).ok());
  }

  // depth 4/8 = shed start: priority >= 1 required.
  const StatusOr<JobQueue::Ticket> shed_a =
      queue.Submit(SmallRequest(), &error);
  ASSERT_FALSE(shed_a.ok());
  EXPECT_EQ(shed_a.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(error, ServiceError::kShedLowPriority);
  ASSERT_TRUE(queue.Submit(SmallRequest(0.0, /*priority=*/1), &error).ok());

  // depth 5/8: the bar is still 1.
  ASSERT_TRUE(queue.Submit(SmallRequest(0.0, /*priority=*/1), &error).ok());

  // depth 6/8 (ramp 0.5 of the way): priority >= 2 required.
  EXPECT_FALSE(queue.Submit(SmallRequest(0.0, /*priority=*/1), &error).ok());
  EXPECT_EQ(error, ServiceError::kShedLowPriority);
  ASSERT_TRUE(queue.Submit(SmallRequest(0.0, /*priority=*/2), &error).ok());

  // depth 7/8: priority >= 3 required.
  EXPECT_FALSE(queue.Submit(SmallRequest(0.0, /*priority=*/2), &error).ok());
  EXPECT_EQ(error, ServiceError::kShedLowPriority);
  ASSERT_TRUE(queue.Submit(SmallRequest(0.0, /*priority=*/3), &error).ok());

  // Full is full, whatever the priority: kQueueFull, not a shed.
  EXPECT_FALSE(
      queue.Submit(SmallRequest(0.0, /*priority=*/99), &error).ok());
  EXPECT_EQ(error, ServiceError::kQueueFull);

  const JobQueue::Counters counters = queue.counters();
  EXPECT_EQ(counters.accepted, 8u);
  EXPECT_EQ(counters.shed, 3u);
  EXPECT_EQ(counters.rejected, 4u);  // 3 shed + 1 hard-full
}

TEST(QueueTest, SheddingDisabledWhenStartFractionIsOne) {
  QueueOptions options;
  options.capacity = 2;
  options.shed_start_fraction = 1.0;
  JobQueue queue(options);
  ServiceError error = ServiceError::kNone;
  ASSERT_TRUE(queue.Submit(SmallRequest(0.0, /*priority=*/-5), &error).ok());
  ASSERT_TRUE(queue.Submit(SmallRequest(0.0, /*priority=*/-5), &error).ok());
  EXPECT_FALSE(queue.Submit(SmallRequest(), &error).ok());
  EXPECT_EQ(error, ServiceError::kQueueFull);
  EXPECT_EQ(queue.counters().shed, 0u);
}

TEST(QueueTest, ObserverSeesAdmitBeforePopAndCancel) {
  struct Recorder : JobObserver {
    std::vector<std::string> events;
    void OnAdmit(const Job& job) override {
      events.push_back("admit:" + std::to_string(job.id));
    }
    void OnCancel(uint64_t id) override {
      events.push_back("cancel:" + std::to_string(id));
    }
  };
  Recorder recorder;
  QueueOptions options;
  options.capacity = 4;
  options.observer = &recorder;
  JobQueue queue(options);
  EXPECT_EQ(queue.observer(), &recorder);

  ServiceError error = ServiceError::kNone;
  const uint64_t id = queue.Submit(SmallRequest(), &error)->id;
  ASSERT_TRUE(queue.Cancel(id));
  EXPECT_EQ(recorder.events,
            (std::vector<std::string>{"admit:" + std::to_string(id),
                                      "cancel:" + std::to_string(id)}));
}

TEST(QueueTest, CloseWakesBlockedConsumer) {
  JobQueue queue(4);
  std::thread consumer([&queue] {
    EXPECT_FALSE(queue.Pop().has_value());  // wakes empty on Close
  });
  queue.Close();
  consumer.join();
}

}  // namespace
}  // namespace kanon
