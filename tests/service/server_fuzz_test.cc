#include <sstream>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "service/server.h"
#include "util/random.h"
#include "util/string_util.h"

/// \file
/// Fuzz-style exercise of the line protocol: hundreds of mutated
/// request lines — truncations, duplicated keys, injected non-UTF8
/// bytes, out-of-domain parameters, oversized CSV payloads — must each
/// produce exactly one typed response line ("ok ..." or "error ...",
/// never a crash, never a multi-line reply), and the serving loop must
/// stay healthy enough to answer a known-good request afterwards.

namespace kanon {
namespace {

const char kBaseLine[] =
    "anonymize algo=resilient k=2 deadline_ms=200 "
    "csv=a,b;1,2;1,2;3,4;3,4";

/// One random mutation of the base line. Mutations never contain '\n'
/// (the protocol's framing byte) — everything else is fair game.
std::string Mutate(Rng* rng) {
  std::string line = kBaseLine;
  switch (rng->Uniform(7)) {
    case 0:  // truncation (models a dropped connection mid-line)
      line.resize(rng->Uniform(static_cast<uint32_t>(line.size())));
      break;
    case 1: {  // random bytes spliced in, including non-UTF8
      const size_t pos = rng->Uniform(static_cast<uint32_t>(line.size()));
      std::string noise;
      const int count = rng->UniformInt(1, 8);
      for (int i = 0; i < count; ++i) {
        char byte = static_cast<char>(rng->UniformInt(1, 255));
        if (byte == '\n' || byte == '\r') byte = '\xff';
        noise.push_back(byte);
      }
      line.insert(pos, noise);
      break;
    }
    case 2: {  // duplicated key=value token
      const std::vector<std::string> tokens = Split(line, ' ');
      line += ' ';
      line += tokens[rng->Uniform(static_cast<uint32_t>(tokens.size()))];
      break;
    }
    case 3: {  // out-of-domain parameter values
      static const char* const kBad[] = {
          "k=0", "k=999999999999999999999", "k=-3", "k=abc", "k=",
          "deadline_ms=nope", "priority=+-1", "wait=maybe",
      };
      line += ' ';
      line += kBad[rng->Uniform(sizeof(kBad) / sizeof(kBad[0]))];
      break;
    }
    case 4: {  // oversized CSV: one huge cell, or a huge row count
      if (rng->Bernoulli(0.5)) {
        line = "anonymize algo=resilient k=2 csv=a;";
        line.append(8192, 'x');
      } else {
        line = "anonymize algo=resilient k=3 deadline_ms=5 csv=a";
        for (int i = 0; i < 400; ++i) {
          line += ';';
          line += std::to_string(rng->Uniform(4));
        }
      }
      break;
    }
    case 5: {  // dropped token
      std::vector<std::string> tokens = Split(line, ' ');
      tokens.erase(tokens.begin() +
                   rng->Uniform(static_cast<uint32_t>(tokens.size())));
      line = Join(tokens, " ");
      break;
    }
    default:  // corrupted verb
      line[rng->Uniform(9)] = static_cast<char>(rng->UniformInt(33, 126));
      break;
  }
  return line;
}

TEST(ServerFuzzTest, EveryMutatedLineGetsExactlyOneTypedResponse) {
  AnonymizationService service(
      {.workers = 2, .queue_capacity = 16, .cache_capacity = 8});
  Rng rng(20260806);

  size_t ok_lines = 0;
  size_t error_lines = 0;
  for (int i = 0; i < 500; ++i) {
    const std::string line = Mutate(&rng);
    bool shutdown = false;
    const std::string response = HandleLine(service, line, &shutdown);
    ASSERT_FALSE(shutdown) << "mutation must not shut the loop down: '"
                           << line << "'";
    ASSERT_FALSE(response.empty()) << "no response for '" << line << "'";
    const bool ok = StartsWith(response, "ok ");
    const bool error = StartsWith(response, "error ");
    ASSERT_TRUE(ok || error)
        << "untyped response '" << response << "' for '" << line << "'";
    EXPECT_EQ(response.find('\n'), std::string::npos)
        << "multi-line response for '" << line << "'";
    if (error) {
      // Typed means typed: the line carries a taxonomy bucket and code.
      EXPECT_NE(response.find("error="), std::string::npos) << response;
      EXPECT_NE(response.find("code="), std::string::npos) << response;
      ++error_lines;
    } else {
      ++ok_lines;
    }
  }
  // The mutation mix must actually produce both outcomes, or the fuzz
  // is testing only one path.
  EXPECT_GT(ok_lines, 0u);
  EXPECT_GT(error_lines, 0u);

  // The service survived 500 hostile lines: a well-formed request still
  // gets a full answer.
  bool shutdown = false;
  const std::string healthy = HandleLine(service, kBaseLine, &shutdown);
  EXPECT_TRUE(StartsWith(healthy, "ok ")) << healthy;
  EXPECT_NE(healthy.find("cost="), std::string::npos) << healthy;
}

TEST(ServerFuzzTest, ServeLinesAnswersEachHostileLineInOrder) {
  AnonymizationService service(
      {.workers = 2, .queue_capacity = 16, .cache_capacity = 8});
  Rng rng(7);

  std::ostringstream input;
  const int lines = 60;
  for (int i = 0; i < lines; ++i) {
    std::string line = Mutate(&rng);
    // ServeLines skips blank and comment lines silently; keep the 1:1
    // line accounting by pinning those mutations to a non-blank form.
    if (Trim(line).empty() || Trim(line).front() == '#') line = "?";
    input << line << '\n';
  }
  input << "shutdown\n";

  std::istringstream in(input.str());
  std::ostringstream out;
  const size_t served = ServeLines(service, in, out);
  EXPECT_EQ(served, static_cast<size_t>(lines) + 1);

  size_t responses = 0;
  std::istringstream check(out.str());
  std::string response;
  while (std::getline(check, response)) {
    EXPECT_TRUE(StartsWith(response, "ok ") ||
                StartsWith(response, "error ") || response == "ok verb=shutdown")
        << response;
    ++responses;
  }
  EXPECT_EQ(responses, served);
}

}  // namespace
}  // namespace kanon
