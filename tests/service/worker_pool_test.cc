#include "service/worker_pool.h"

#include <chrono>
#include <thread>
#include <vector>

#include "core/anonymity.h"
#include "data/csv_table.h"
#include "fault/fault.h"
#include "data/generators/uniform.h"
#include "gtest/gtest.h"
#include "hypergraph/generators.h"
#include "reductions/matching_to_kanon.h"
#include "util/random.h"

/// \file
/// The worker pool's contract: every admitted job is answered with a
/// valid k-anonymization (or a typed error), repeats are served from
/// the cache, >= 4 requests run in flight on a 4-worker pool, and
/// concurrent execution does not change any per-request answer.

namespace kanon {
namespace {

AnonymizeRequest RequestFor(Table table, size_t k,
                            const std::string& algorithm = "resilient") {
  AnonymizeRequest request;
  request.algorithm = algorithm;
  request.k = k;
  request.table.emplace(std::move(table));
  return request;
}

Table SmallTable(uint64_t seed, uint32_t rows = 12) {
  Rng rng(seed);
  return UniformTable({.num_rows = rows, .num_columns = 4, .alphabet = 3},
                      &rng);
}

/// Theorem 3.1 hard instance: far too big for exact_dp to finish soon,
/// so a job running it stays busy until cancelled.
Table HardTable(uint64_t seed) {
  Rng rng(seed);
  const Hypergraph h = PlantedMatchingHypergraph(
      {.num_vertices = 21, .k = 3, .extra_edges = 6}, &rng);
  return BuildKAnonInstance(h);
}

TEST(WorkerPoolTest, ExecutesJobToValidKAnonymousAnswer) {
  JobQueue queue(8);
  ResultCache cache(8);
  WorkerPool pool(&queue, &cache, {.workers = 2});

  ServiceError error = ServiceError::kNone;
  StatusOr<JobQueue::Ticket> ticket =
      queue.Submit(RequestFor(SmallTable(1), 3), &error);
  ASSERT_TRUE(ticket.ok());
  const AnonymizeResponse response = ticket->result.get();

  ASSERT_TRUE(response.ok()) << response.status;
  EXPECT_EQ(response.id, ticket->id);
  EXPECT_EQ(response.rows, 12u);
  EXPECT_FALSE(response.stage.empty());
  EXPECT_FALSE(response.chain.empty());
  EXPECT_FALSE(response.cache_hit);

  const StatusOr<Table> anonymized = ParseTableCsv(response.anonymized_csv);
  ASSERT_TRUE(anonymized.ok());
  EXPECT_TRUE(IsKAnonymous(*anonymized, 3));
  EXPECT_EQ(anonymized->CountSuppressedCells(), response.cost);
}

TEST(WorkerPoolTest, RepeatRequestServedFromCache) {
  JobQueue queue(8);
  ResultCache cache(8);
  WorkerPool pool(&queue, &cache, {.workers = 2});

  ServiceError error = ServiceError::kNone;
  const AnonymizeResponse cold =
      queue.Submit(RequestFor(SmallTable(2), 3), &error)->result.get();
  const AnonymizeResponse warm =
      queue.Submit(RequestFor(SmallTable(2), 3), &error)->result.get();

  ASSERT_TRUE(cold.ok());
  ASSERT_TRUE(warm.ok());
  EXPECT_FALSE(cold.cache_hit);
  EXPECT_TRUE(warm.cache_hit);
  // The cached answer is byte-identical to the cold one.
  EXPECT_EQ(warm.cost, cold.cost);
  EXPECT_EQ(warm.stage, cold.stage);
  EXPECT_EQ(warm.anonymized_csv, cold.anonymized_csv);

  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(pool.counters().cache_served, 1u);
  EXPECT_EQ(pool.counters().completed, 2u);

  // A different k is a different instance: miss.
  const AnonymizeResponse other_k =
      queue.Submit(RequestFor(SmallTable(2), 4), &error)->result.get();
  EXPECT_FALSE(other_k.cache_hit);
}

TEST(WorkerPoolTest, CoresetKnobsKeyTheCacheSeparately) {
  JobQueue queue(8);
  ResultCache cache(8);
  WorkerPool pool(&queue, &cache, {.workers = 1});

  // Large enough that the resolved sample (rate 0.5 -> 40 rows) is a
  // real subsample, so different sampler seeds give different answers.
  const Table table = SmallTable(5, /*rows=*/80);
  const auto submit = [&](uint64_t coreset_seed) {
    AnonymizeRequest request = RequestFor(table, 3, "coreset_mdav");
    request.coreset_rate = 0.5;
    request.coreset_seed = coreset_seed;
    ServiceError error = ServiceError::kNone;
    return queue.Submit(std::move(request), &error)->result.get();
  };

  const AnonymizeResponse cold = submit(1);
  ASSERT_TRUE(cold.ok()) << cold.status;
  EXPECT_FALSE(cold.cache_hit);
  const StatusOr<Table> anonymized = ParseTableCsv(cold.anonymized_csv);
  ASSERT_TRUE(anonymized.ok());
  EXPECT_TRUE(IsKAnonymous(*anonymized, 3));

  // Identical knobs: a repeat is served from the cache.
  const AnonymizeResponse warm = submit(1);
  ASSERT_TRUE(warm.ok());
  EXPECT_TRUE(warm.cache_hit);
  EXPECT_EQ(warm.anonymized_csv, cold.anonymized_csv);

  // A different sampler seed is a different computation: it must miss
  // even though table, algorithm name and k all match.
  const AnonymizeResponse reseeded = submit(2);
  ASSERT_TRUE(reseeded.ok());
  EXPECT_FALSE(reseeded.cache_hit);

  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 2u);
}

TEST(WorkerPoolTest, DeadlineArtifactsAreNotCachedStructuralOnesAre) {
  JobQueue queue(8);
  ResultCache cache(8);
  WorkerPool pool(&queue, &cache, {.workers = 1});

  // 35 rows: above the exact_dp (22) and branch_bound (28) structural
  // caps, so an unlimited run deterministically degrades to
  // greedy_cover while an expired one degrades to suppress_all.
  AnonymizeRequest request = RequestFor(SmallTable(3, 35), 3);
  request.deadline_ms = 0.001;  // expired on arrival
  ServiceError error = ServiceError::kNone;
  const AnonymizeResponse degraded =
      queue.Submit(std::move(request), &error)->result.get();
  ASSERT_TRUE(degraded.ok());
  EXPECT_EQ(degraded.stage, "suppress_all");
  EXPECT_EQ(degraded.termination, StopReason::kDeadline);
  // The deadline artifact was not cached...
  EXPECT_EQ(cache.stats().size, 0u);

  // ... so an unlimited repeat re-solves (miss) and gets the better
  // greedy_cover answer; its structural degradation IS deterministic
  // for this instance and is cached.
  const AnonymizeResponse fresh =
      queue.Submit(RequestFor(SmallTable(3, 35), 3), &error)->result.get();
  ASSERT_TRUE(fresh.ok());
  EXPECT_FALSE(fresh.cache_hit);
  EXPECT_EQ(fresh.stage, "greedy_cover");
  EXPECT_EQ(fresh.termination, StopReason::kBudget);  // declines latched
  EXPECT_LE(fresh.cost, degraded.cost);
  EXPECT_EQ(cache.stats().size, 1u);

  const AnonymizeResponse replay =
      queue.Submit(RequestFor(SmallTable(3, 35), 3), &error)->result.get();
  ASSERT_TRUE(replay.ok());
  EXPECT_TRUE(replay.cache_hit);
  EXPECT_EQ(replay.stage, "greedy_cover");
  EXPECT_EQ(replay.termination, StopReason::kBudget);
  EXPECT_EQ(replay.cost, fresh.cost);
}

TEST(WorkerPoolTest, FourRequestsInFlightOnFourWorkers) {
  JobQueue queue(8);
  ResultCache cache(8);
  WorkerPool pool(&queue, &cache, {.workers = 4});

  // Four Theorem 3.1 instances with no deadline: each occupies its
  // worker in the exact_dp stage until cancelled.
  ServiceError error = ServiceError::kNone;
  std::vector<JobQueue::Ticket> tickets;
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    StatusOr<JobQueue::Ticket> ticket =
        queue.Submit(RequestFor(HardTable(seed), 3), &error);
    ASSERT_TRUE(ticket.ok());
    tickets.push_back(*std::move(ticket));
  }

  // All four jobs get popped (queue drains) while none has completed:
  // that is only possible with four simultaneously in-flight requests.
  for (int spin = 0; queue.depth() > 0 && spin < 2000; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(queue.depth(), 0u);
  EXPECT_EQ(pool.counters().completed, 0u);

  // Per-request cancellation reaches the running jobs' RunContexts; the
  // resilient chain still answers each with a valid partition — unless
  // the cancel won the pop-to-run-start race, where the worker answers
  // with the typed cancellation instead (see cancel_race_test).
  for (const JobQueue::Ticket& ticket : tickets) {
    EXPECT_TRUE(queue.Cancel(ticket.id));
  }
  for (JobQueue::Ticket& ticket : tickets) {
    const AnonymizeResponse response = ticket.result.get();
    if (!response.ok()) {
      EXPECT_EQ(response.error, ServiceError::kCancelled);
      continue;
    }
    EXPECT_EQ(response.termination, StopReason::kCancelled);
    // The 21-row instance is under branch_bound's cap, so the anytime
    // stage may still answer with its incumbent; either way the chain
    // produced something valid.
    EXPECT_FALSE(response.stage.empty());
    const StatusOr<Table> anonymized =
        ParseTableCsv(response.anonymized_csv);
    ASSERT_TRUE(anonymized.ok());
    EXPECT_TRUE(IsKAnonymous(*anonymized, 3));
  }
  EXPECT_EQ(pool.counters().completed, 4u);
}

TEST(WorkerPoolTest, ConcurrentExecutionIsDeterministicPerRequest) {
  // Reference answers computed serially, no cache.
  std::vector<AnonymizeRequest> requests;
  for (uint64_t seed = 10; seed < 18; ++seed) {
    requests.push_back(RequestFor(SmallTable(seed, 10 + seed % 4), 3,
                                  seed % 2 == 0 ? "resilient" : "mondrian"));
  }
  std::vector<AnonymizeResponse> expected;
  for (const AnonymizeRequest& request : requests) {
    RunContext ctx;
    expected.push_back(WorkerPool::Execute(request, &ctx, nullptr));
  }

  // The same 8 requests dispatched at once onto 4 workers.
  JobQueue queue(16);
  WorkerPool pool(&queue, /*cache=*/nullptr, {.workers = 4});
  ServiceError error = ServiceError::kNone;
  std::vector<JobQueue::Ticket> tickets;
  for (const AnonymizeRequest& request : requests) {
    StatusOr<JobQueue::Ticket> ticket = queue.Submit(request, &error);
    ASSERT_TRUE(ticket.ok());
    tickets.push_back(*std::move(ticket));
  }
  for (size_t i = 0; i < tickets.size(); ++i) {
    const AnonymizeResponse response = tickets[i].result.get();
    ASSERT_TRUE(response.ok()) << response.status;
    EXPECT_EQ(response.cost, expected[i].cost) << i;
    EXPECT_EQ(response.stage, expected[i].stage) << i;
    EXPECT_EQ(response.chain, expected[i].chain) << i;
    EXPECT_EQ(response.anonymized_csv, expected[i].anonymized_csv) << i;
  }
}

TEST(WorkerPoolTest, TransientDispatchFaultsAreRetriedInPlace) {
  FaultPlan plan;
  // The worker dies before running the job twice; the third attempt
  // (the last of the budget) goes through.
  plan.sites.push_back({.site = "worker.dispatch", .first_n = 2});
  ScopedFaultInjection injection(plan);

  JobQueue queue(4);
  ResultCache cache(4);
  WorkerPool pool(&queue, &cache,
                  {.workers = 1,
                   .retry = {.max_attempts = 3,
                             .base_ms = 0.01,
                             .cap_ms = 0.1}});
  ServiceError error = ServiceError::kNone;
  const AnonymizeResponse response =
      queue.Submit(RequestFor(SmallTable(30), 3), &error)->result.get();

  ASSERT_TRUE(response.ok()) << response.status;
  EXPECT_EQ(pool.counters().retries_attempted, 2u);
  EXPECT_EQ(pool.counters().retries_exhausted, 0u);

  const StatusOr<Table> anonymized = ParseTableCsv(response.anonymized_csv);
  ASSERT_TRUE(anonymized.ok());
  EXPECT_TRUE(IsKAnonymous(*anonymized, 3));
}

TEST(WorkerPoolTest, ExhaustedRetryBudgetIsATypedWorkerFailure) {
  FaultPlan plan;
  plan.sites.push_back({.site = "worker.dispatch", .probability = 1.0});
  ScopedFaultInjection injection(plan);

  JobQueue queue(4);
  WorkerPool pool(&queue, /*cache=*/nullptr,
                  {.workers = 1,
                   .retry = {.max_attempts = 2,
                             .base_ms = 0.01,
                             .cap_ms = 0.1}});
  ServiceError error = ServiceError::kNone;
  const AnonymizeResponse response =
      queue.Submit(RequestFor(SmallTable(31), 3), &error)->result.get();

  EXPECT_FALSE(response.ok());
  EXPECT_EQ(response.error, ServiceError::kWorkerFailure);
  EXPECT_EQ(response.status.code(), StatusCode::kInternal);
  EXPECT_EQ(pool.counters().retries_attempted, 1u);
  EXPECT_EQ(pool.counters().retries_exhausted, 1u);
}

TEST(WorkerPoolTest, LostDeliveryDiscardsTheResultAndRetries) {
  FaultPlan plan;
  // The worker computes an answer, then dies before delivering it: the
  // result must be discarded and the job re-run, not half-delivered.
  plan.sites.push_back({.site = "worker.deliver", .first_n = 1});
  ScopedFaultInjection injection(plan);

  JobQueue queue(4);
  ResultCache cache(4);
  WorkerPool pool(&queue, &cache,
                  {.workers = 1,
                   .retry = {.max_attempts = 3,
                             .base_ms = 0.01,
                             .cap_ms = 0.1}});
  ServiceError error = ServiceError::kNone;
  const AnonymizeResponse response =
      queue.Submit(RequestFor(SmallTable(32), 3), &error)->result.get();

  ASSERT_TRUE(response.ok()) << response.status;
  EXPECT_EQ(pool.counters().retries_attempted, 1u);
  EXPECT_EQ(pool.counters().completed, 1u);
}

TEST(RetryPolicyTest, BackoffStartsAtBaseAndStaysWithinBounds) {
  const RetryPolicy policy{.max_attempts = 5,
                           .base_ms = 1.0,
                           .cap_ms = 50.0};
  Rng rng(11);
  // First wait is exactly the base (prev = 0 pins the window to [base,
  // base]); later waits are decorrelated but always in [base, cap].
  double prev = NextBackoffMillis(policy, 0.0, rng);
  EXPECT_DOUBLE_EQ(prev, 1.0);
  for (int i = 0; i < 64; ++i) {
    prev = NextBackoffMillis(policy, prev, rng);
    EXPECT_GE(prev, policy.base_ms);
    EXPECT_LE(prev, policy.cap_ms);
  }
}

TEST(RetryPolicyTest, ScheduleIsDeterministicPerJob) {
  const RetryPolicy policy{.max_attempts = 5,
                           .base_ms = 1.0,
                           .cap_ms = 50.0};
  EXPECT_EQ(RetrySeedForJob(7), RetrySeedForJob(7));
  EXPECT_NE(RetrySeedForJob(7), RetrySeedForJob(8));

  Rng a(RetrySeedForJob(7));
  Rng b(RetrySeedForJob(7));
  double prev_a = 0.0;
  double prev_b = 0.0;
  for (int i = 0; i < 16; ++i) {
    prev_a = NextBackoffMillis(policy, prev_a, a);
    prev_b = NextBackoffMillis(policy, prev_b, b);
    EXPECT_DOUBLE_EQ(prev_a, prev_b);
  }
}

TEST(WorkerPoolTest, CancelledBeforeRunIsATypedError) {
  JobQueue queue(4);
  ServiceError error = ServiceError::kNone;
  // No pool yet: the job sits queued while we cancel it.
  StatusOr<JobQueue::Ticket> ticket =
      queue.Submit(RequestFor(SmallTable(5), 3), &error);
  ASSERT_TRUE(ticket.ok());
  ASSERT_TRUE(queue.Cancel(ticket->id));

  WorkerPool pool(&queue, /*cache=*/nullptr, {.workers = 1});
  const AnonymizeResponse response = ticket->result.get();
  EXPECT_FALSE(response.ok());
  EXPECT_EQ(response.error, ServiceError::kCancelled);
  EXPECT_EQ(response.status.code(), StatusCode::kCancelled);
  EXPECT_EQ(pool.counters().cancelled, 1u);
}

}  // namespace
}  // namespace kanon
