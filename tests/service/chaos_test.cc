#include "service/chaos.h"

#include "gtest/gtest.h"

/// \file
/// Chaos schedules as unit tests: a batch of seeded schedules must
/// uphold all three robustness invariants (every admitted job answered
/// validly or typed-failed, no tainted cache hits, journal replays from
/// any crash prefix), the same seed must replay to the identical
/// outcome fingerprint, and different seeds must actually explore
/// different schedules. The CI script runs the bigger sweep (100+
/// schedules per sanitizer config) via the chaos_service binary; these
/// tests keep the harness itself honest in every plain ctest run.

namespace kanon {
namespace {

ChaosScheduleOptions SmallSchedule(uint64_t seed) {
  ChaosScheduleOptions options;
  options.seed = seed;
  options.jobs = 10;
  options.scratch_dir = ::testing::TempDir();
  return options;
}

TEST(ChaosTest, SchedulesUpholdTheInvariants) {
  for (uint64_t seed = 1; seed <= 12; ++seed) {
    const ChaosReport report = RunChaosSchedule(SmallSchedule(seed));
    EXPECT_TRUE(report.passed())
        << "seed " << seed << ": " << report.violations.front();
    // Accounting closes: every submission was admitted or rejected, and
    // every admitted job was answered.
    EXPECT_EQ(report.submitted,
              report.rejected + report.answered_ok + report.answered_error)
        << "seed " << seed;
  }
}

TEST(ChaosTest, SameSeedReplaysToTheSameFingerprint) {
  for (uint64_t seed : {3u, 17u, 101u}) {
    const ChaosReport first = RunChaosSchedule(SmallSchedule(seed));
    const ChaosReport again = RunChaosSchedule(SmallSchedule(seed));
    EXPECT_EQ(first.outcome_fingerprint, again.outcome_fingerprint)
        << "seed " << seed;
    EXPECT_EQ(first.fires, again.fires) << "seed " << seed;
    EXPECT_EQ(first.answered_ok, again.answered_ok) << "seed " << seed;
    EXPECT_EQ(first.rejected, again.rejected) << "seed " << seed;
  }
}

TEST(ChaosTest, DifferentSeedsExploreDifferentSchedules) {
  const ChaosReport a = RunChaosSchedule(SmallSchedule(1));
  const ChaosReport b = RunChaosSchedule(SmallSchedule(2));
  EXPECT_NE(a.outcome_fingerprint, b.outcome_fingerprint);
}

TEST(ChaosTest, SchedulesActuallyInjectFaults) {
  // Across a dozen seeds, some schedules must have armed sites that
  // fired — a sweep where nothing ever fires tests nothing.
  uint64_t total_fires = 0;
  for (uint64_t seed = 1; seed <= 12; ++seed) {
    total_fires += RunChaosSchedule(SmallSchedule(seed)).fires;
  }
  EXPECT_GT(total_fires, 0u);
}

TEST(ChaosTest, JournalFreeSchedulesAlsoPass) {
  ChaosScheduleOptions options = SmallSchedule(5);
  options.with_journal = false;
  const ChaosReport report = RunChaosSchedule(options);
  EXPECT_TRUE(report.passed())
      << report.violations.front();
}

}  // namespace
}  // namespace kanon
