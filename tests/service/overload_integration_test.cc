#include <unistd.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "data/csv_table.h"
#include "core/anonymity.h"
#include "data/generators/uniform.h"
#include "fault/fault.h"
#include "gtest/gtest.h"
#include "net/client.h"
#include "net/tcp_server.h"
#include "service/journal.h"
#include "service/overload/overload.h"
#include "service/server.h"
#include "service/worker_pool.h"
#include "util/random.h"

/// \file
/// End-to-end contracts of the overload plane threaded through the
/// service: a browned-out result never answers a full-fidelity request
/// (the cache-key regression the brownout salt exists for), deadline
/// reconciliation rejects typed before any solve work, retry-budget
/// exhaustion degrades to a valid terminal answer, and the SIGTERM
/// drain + journal replay paths stay typed and balanced while the
/// plane is actively shedding and degrading.

namespace kanon {
namespace {

Table SmallTable(uint64_t seed, uint32_t rows = 12) {
  Rng rng(seed);
  return UniformTable({.num_rows = rows, .num_columns = 4, .alphabet = 3},
                      &rng);
}

AnonymizeRequest RequestFor(Table table, size_t k,
                            const std::string& algorithm) {
  AnonymizeRequest request;
  request.algorithm = algorithm;
  request.k = k;
  request.table.emplace(std::move(table));
  return request;
}

FaultPlan BrownoutEveryJob() {
  FaultPlan plan;
  plan.seed = 7;
  plan.sites.push_back({.site = "overload.brownout", .probability = 1.0});
  return plan;
}

// ---------------------------------------------------------------------
// Cache regression: the brownout salt in the knobs fingerprint.

TEST(OverloadIntegrationTest, BrownedOutResultNeverAnswersFullFidelity) {
  ServiceOptions options;
  options.workers = 1;
  options.overload_enabled = true;
  AnonymizationService service(options);
  const Table table = SmallTable(1);

  // Job 1, forced brownout: mdav is dispatched as sharded_mdav and the
  // response says so.
  AnonymizeResponse degraded;
  {
    ScopedFaultInjection armed(BrownoutEveryJob());
    degraded = service.Handle(RequestFor(table, 3, "mdav"));
  }
  ASSERT_TRUE(degraded.ok()) << degraded.status;
  EXPECT_EQ(degraded.algorithm, "mdav");
  EXPECT_EQ(degraded.effective_algorithm, "sharded_mdav");
  EXPECT_EQ(degraded.brownout, 1);
  EXPECT_FALSE(degraded.cache_hit);

  // The degraded entry sits in the cache under (sharded_mdav + brownout
  // salt). Neither full-fidelity spelling of this instance may hit it:
  // not the original request, and not even an explicit request for the
  // same effective backend.
  const AnonymizeResponse requested =
      service.Handle(RequestFor(table, 3, "mdav"));
  ASSERT_TRUE(requested.ok()) << requested.status;
  EXPECT_FALSE(requested.cache_hit);
  EXPECT_EQ(requested.brownout, 0);
  EXPECT_TRUE(requested.effective_algorithm.empty());

  const AnonymizeResponse effective =
      service.Handle(RequestFor(table, 3, "sharded_mdav"));
  ASSERT_TRUE(effective.ok()) << effective.status;
  EXPECT_FALSE(effective.cache_hit);
  EXPECT_EQ(effective.brownout, 0);

  // A repeat under the same brownout, though, is the same degraded
  // instance — that one the cache may (and does) answer.
  AnonymizeResponse repeat;
  {
    ScopedFaultInjection armed(BrownoutEveryJob());
    repeat = service.Handle(RequestFor(table, 3, "mdav"));
  }
  ASSERT_TRUE(repeat.ok()) << repeat.status;
  EXPECT_TRUE(repeat.cache_hit);
  EXPECT_EQ(repeat.brownout, 1);
  EXPECT_EQ(repeat.cost, degraded.cost);

  EXPECT_GE(service.Stats().overload_brownouts, 2u);
}

// ---------------------------------------------------------------------
// Deadline reconciliation at dispatch.

TEST(OverloadIntegrationTest, InfeasibleDeadlineIsRejectedTyped) {
  OverloadControl overload;
  // Teach the estimator that mdav takes ~300ms (optimistic bound 256ms).
  overload.RecordOutcome("mdav", 300.0, true, StopReason::kNone, false);

  JobQueue queue(8);
  ResultCache cache(8);
  WorkerPool pool(&queue, &cache,
                  {.workers = 1, .overload = &overload});

  AnonymizeRequest request = RequestFor(SmallTable(2), 3, "mdav");
  request.deadline_ms = 60.0;  // cannot fit 256ms, even optimistically
  ServiceError error = ServiceError::kNone;
  StatusOr<JobQueue::Ticket> ticket =
      queue.Submit(std::move(request), &error);
  ASSERT_TRUE(ticket.ok());
  const AnonymizeResponse response = ticket->result.get();

  EXPECT_FALSE(response.ok());
  EXPECT_EQ(response.error, ServiceError::kDeadlineInfeasible);
  EXPECT_TRUE(response.anonymized_csv.empty());
  EXPECT_EQ(pool.counters().deadline_infeasible, 1u);
  EXPECT_EQ(overload.counters().deadline_infeasible, 1u);

  // Without a deadline the same instance sails through: the estimate
  // gates deadlines, not admission.
  StatusOr<JobQueue::Ticket> open =
      queue.Submit(RequestFor(SmallTable(2), 3, "mdav"), &error);
  ASSERT_TRUE(open.ok());
  EXPECT_TRUE(open->result.get().ok());
}

// ---------------------------------------------------------------------
// Retry-budget exhaustion degrades to the terminal stage.

TEST(OverloadIntegrationTest, DrainedRetryBudgetDegradesToTerminal) {
  OverloadOptions options;
  options.retry_budget.initial = 0.0;  // dry from the start
  options.retry_budget.ratio = 0.0;
  OverloadControl overload(options);

  JobQueue queue(8);
  ResultCache cache(8);
  WorkerPool pool(&queue, &cache,
                  {.workers = 1, .overload = &overload});

  FaultPlan plan;
  plan.seed = 3;
  plan.sites.push_back({.site = "worker.dispatch", .first_n = 1});
  ScopedFaultInjection armed(plan);

  ServiceError error = ServiceError::kNone;
  StatusOr<JobQueue::Ticket> ticket =
      queue.Submit(RequestFor(SmallTable(3), 3, "mdav"), &error);
  ASSERT_TRUE(ticket.ok());
  const AnonymizeResponse response = ticket->result.get();

  // Still a valid answer — maximally suppressed — with the budget
  // exhaustion recorded in the chain, not an amplifying re-run.
  ASSERT_TRUE(response.ok()) << response.status;
  EXPECT_EQ(response.algorithm, "mdav");
  EXPECT_EQ(response.effective_algorithm, "suppress_all");
  EXPECT_EQ(response.chain,
            "mdav(declined:retry_budget)->suppress_all(ok)");
  const StatusOr<Table> anonymized = ParseTableCsv(response.anonymized_csv);
  ASSERT_TRUE(anonymized.ok());
  EXPECT_TRUE(IsKAnonymous(*anonymized, 3));

  EXPECT_EQ(pool.counters().retry_budget_degraded, 1u);
  EXPECT_EQ(pool.counters().retries_attempted, 0u);
  EXPECT_EQ(overload.counters().retry_denied, 1u);

  // The per-request artifact must not have been cached: a clean repeat
  // recomputes at full fidelity.
  FaultRegistry::Instance().Disarm();
  StatusOr<JobQueue::Ticket> clean =
      queue.Submit(RequestFor(SmallTable(3), 3, "mdav"), &error);
  ASSERT_TRUE(clean.ok());
  const AnonymizeResponse recomputed = clean->result.get();
  ASSERT_TRUE(recomputed.ok());
  EXPECT_FALSE(recomputed.cache_hit);
  EXPECT_TRUE(recomputed.effective_algorithm.empty());
}

// ---------------------------------------------------------------------
// SIGTERM drain under active overload (the kanond SIGTERM handler maps
// onto NetServer::RequestDrain).

TEST(OverloadIntegrationTest, DrainUnderActiveOverloadKeepsTheLedger) {
  ServiceOptions service_options;
  service_options.workers = 2;
  service_options.overload_enabled = true;
  AnonymizationService service(service_options);
  NetServerOptions net;
  net.port = 0;
  NetServer server(service, net);
  ASSERT_TRUE(server.Start().ok());
  std::thread serving([&server] { server.Run(); });

  // The plane is actively shedding and degrading while the burst lands
  // and the drain runs.
  FaultPlan plan;
  plan.seed = 11;
  plan.sites.push_back({.site = "overload.shed", .probability = 0.3});
  plan.sites.push_back({.site = "overload.brownout", .probability = 0.5});
  ScopedFaultInjection armed(plan);

  NetClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  constexpr uint64_t kJobs = 12;
  for (uint64_t seq = 1; seq <= kJobs; ++seq) {
    NetRequest request;
    request.verb = NetVerb::kAnonymize;
    request.client_seq = seq;
    request.request.algorithm = "mdav";
    request.request.k = 3;
    request.request.csv_text = TableToCsv(SmallTable(seq));
    ASSERT_TRUE(client.Send(request).ok());
  }
  server.RequestDrain();

  // Every admitted response still arrives — valid or typed, never a
  // hang, never a torn frame — then the connection closes cleanly.
  size_t answered = 0;
  size_t shed_typed = 0;
  size_t browned_out = 0;
  for (;;) {
    const StatusOr<NetResponse> response = client.Receive(30000.0);
    if (!response.ok()) {
      ASSERT_EQ(response.status().code(), StatusCode::kUnavailable)
          << response.status().ToString();
      break;
    }
    if (response->verb == NetVerb::kShutdown) continue;  // drain notice
    ++answered;
    if (response->ok()) {
      EXPECT_FALSE(response->csv.empty());
      if (response->brownout > 0) {
        ++browned_out;
        EXPECT_FALSE(response->effective_algorithm.empty());
      }
    } else {
      EXPECT_FALSE(response->error_name.empty());
      if (response->error_name == "shed_overload") ++shed_typed;
    }
  }
  serving.join();

  // The drain ledger closes: nothing admitted is both undelivered and
  // undropped.
  const NetServerStats stats = server.stats();
  EXPECT_EQ(stats.jobs_submitted,
            stats.responses_delivered + stats.responses_dropped);
  EXPECT_EQ(answered, stats.responses_delivered);

  service.Shutdown();
  // Typed sheds the client saw are a subset of the plane's shed count
  // (a drain may drop deliveries, never invent them).
  const ServiceStats service_stats = service.Stats();
  EXPECT_GE(service_stats.overload_shed, shed_typed);
  EXPECT_GE(service_stats.overload_brownouts, browned_out);
}

// ---------------------------------------------------------------------
// Journal replay while the overload plane is degrading resubmissions.

TEST(OverloadIntegrationTest, JournalReplayUnderActiveOverloadIsTyped) {
  const std::string path = ::testing::TempDir() +
                           "overload_replay_journal.log";
  ::unlink(path.c_str());
  {
    JobJournal journal(path);
    ASSERT_TRUE(journal.Open().ok());
    Job done_job;
    done_job.id = 1;
    done_job.request = RequestFor(SmallTable(21), 3, "mdav");
    done_job.request.csv_text = TableToCsv(*done_job.request.table);
    journal.OnAdmit(done_job);            // finished before the crash
    journal.OnStart(1);
    AnonymizeResponse done;
    journal.OnDone(1, done);
    Job pending_job;
    pending_job.id = 2;
    pending_job.request = RequestFor(SmallTable(22), 3, "mdav");
    pending_job.request.csv_text = TableToCsv(*pending_job.request.table);
    journal.OnAdmit(pending_job);         // never started -> resubmitted
    Job started_job;
    started_job.id = 3;
    started_job.request = RequestFor(SmallTable(23), 3, "mdav");
    started_job.request.csv_text = TableToCsv(*started_job.request.table);
    journal.OnAdmit(started_job);         // started, no done -> interrupted
    journal.OnStart(3);
  }

  StatusOr<JournalReplay> replay = JobJournal::ReplayFile(path);
  ASSERT_TRUE(replay.ok()) << replay.status();

  ServiceOptions options;
  options.workers = 1;
  options.overload_enabled = true;
  AnonymizationService service(options);

  // Replay with every resubmission forced through the brownout ladder.
  ScopedFaultInjection armed(BrownoutEveryJob());
  const JournalReplayReport report =
      ApplyReplayToService(std::move(*replay), service);

  EXPECT_EQ(report.completed, 1u);
  EXPECT_EQ(report.resubmitted, 1u);
  EXPECT_EQ(report.interrupted, 1u);
  for (const std::string& line : report.lines) {
    EXPECT_TRUE(line.rfind("ok verb=replay", 0) == 0 ||
                line.rfind("error verb=replay", 0) == 0)
        << line;
  }
  // The resubmission really went through the overload plane.
  EXPECT_GE(service.Stats().overload_brownouts, 1u);
  ::unlink(path.c_str());
}

}  // namespace
}  // namespace kanon
