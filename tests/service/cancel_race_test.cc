#include <atomic>
#include <chrono>
#include <future>
#include <thread>
#include <vector>

#include "data/csv_table.h"
#include "data/generators/uniform.h"
#include "gtest/gtest.h"
#include "service/queue.h"
#include "service/worker_pool.h"
#include "util/random.h"

/// \file
/// Regression tests for the cancel/dispatch race: a Cancel(id) that
/// lands *after* a worker popped the job but *before* execution starts
/// must still reach the job's RunContext (the queue keeps the id
/// registered until Forget), and concurrent cancels against a running
/// pool must never lose a response or trip TSan. The ci.sh TSan stage
/// runs this binary under -fsanitize=thread.

namespace kanon {
namespace {

AnonymizeRequest SmallRequest(uint64_t seed) {
  Rng rng(seed);
  AnonymizeRequest request;
  request.algorithm = "resilient";
  request.k = 3;
  request.table.emplace(UniformTable(
      {.num_rows = 14, .num_columns = 3, .alphabet = 3}, &rng));
  return request;
}

TEST(CancelRaceTest, CancelBetweenPopAndRunStartReachesTheContext) {
  JobQueue queue(4);
  ServiceError error = ServiceError::kNone;
  StatusOr<JobQueue::Ticket> ticket =
      queue.Submit(SmallRequest(1), &error);
  ASSERT_TRUE(ticket.ok());

  // The worker has dequeued the job but not yet started running it...
  std::optional<Job> job = queue.Pop();
  ASSERT_TRUE(job.has_value());
  EXPECT_FALSE(job->ctx->cancel_requested());

  // ...when the cancel arrives. The id must still resolve (the queue
  // only forgets it after the worker fulfills the promise), and the
  // request must reach the popped job's own RunContext.
  EXPECT_TRUE(queue.Cancel(ticket->id));
  EXPECT_TRUE(job->ctx->cancel_requested());

  // Execution then observes the cancel before doing any solver work.
  const AnonymizeResponse response =
      WorkerPool::Execute(job->request, job->ctx.get(), nullptr);
  EXPECT_FALSE(response.ok());
  EXPECT_EQ(response.error, ServiceError::kCancelled);
  EXPECT_EQ(response.status.code(), StatusCode::kCancelled);

  queue.Forget(ticket->id);
  EXPECT_FALSE(queue.Cancel(ticket->id));  // now truly gone
}

TEST(CancelRaceTest, ConcurrentCancelsNeverLoseAResponse) {
  JobQueue queue(64);
  ResultCache cache(8);
  ServiceError error = ServiceError::kNone;

  constexpr int kJobs = 32;
  std::vector<JobQueue::Ticket> tickets;
  tickets.reserve(kJobs);
  for (int i = 0; i < kJobs; ++i) {
    StatusOr<JobQueue::Ticket> ticket =
        queue.Submit(SmallRequest(static_cast<uint64_t>(i)), &error);
    ASSERT_TRUE(ticket.ok());
    tickets.push_back(*std::move(ticket));
  }

  // The canceller hammers every id while the pool drains the queue, so
  // cancels land in every window: queued, popped-not-started, running,
  // finished-and-forgotten.
  std::atomic<bool> done{false};
  std::thread canceller([&] {
    while (!done.load(std::memory_order_relaxed)) {
      for (const JobQueue::Ticket& ticket : tickets) {
        queue.Cancel(ticket.id);
      }
      std::this_thread::yield();
    }
  });

  {
    WorkerPool pool(&queue, &cache, {.workers = 4});
    for (JobQueue::Ticket& ticket : tickets) {
      // Every job resolves: either a valid (possibly degraded) answer
      // or the typed cancellation — never a hang, never a broken
      // promise.
      ASSERT_EQ(ticket.result.wait_for(std::chrono::seconds(60)),
                std::future_status::ready);
      const AnonymizeResponse response = ticket.result.get();
      if (!response.ok()) {
        EXPECT_EQ(response.error, ServiceError::kCancelled);
      }
    }
    pool.Join();
  }
  done.store(true, std::memory_order_relaxed);
  canceller.join();
}

}  // namespace
}  // namespace kanon
