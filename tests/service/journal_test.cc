#include "service/journal.h"

#include <unistd.h>

#include <fstream>
#include <sstream>
#include <string>

#include "data/csv_table.h"
#include "fault/fault.h"
#include "gtest/gtest.h"

/// \file
/// Crash journal semantics: lifecycle records round-trip through
/// ReplayFile; a torn tail (the crash signature) is dropped and
/// counted while mid-file corruption is a typed kParseError; started
/// and cancelled jobs are flagged for the `interrupted` path instead
/// of blind re-execution; an injected torn write kills the journal the
/// way a real crash would.

namespace kanon {
namespace {

std::string TempJournalPath(const std::string& tag) {
  return ::testing::TempDir() + "kanon_journal_test_" + tag + "_" +
         std::to_string(::getpid()) + ".log";
}

Job MakeJob(uint64_t id, const std::string& csv = "a,b\n1,2\n1,2\n") {
  Job job;
  job.id = id;
  job.request.algorithm = "resilient";
  job.request.k = 2;
  job.request.deadline_ms = 250.0;
  job.request.node_budget = 1000;
  job.request.priority = 1;
  job.request.csv_text = csv;
  return job;
}

std::string ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void WriteAll(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

TEST(JournalTest, LifecycleRecordsRoundTripThroughReplay) {
  const std::string path = TempJournalPath("roundtrip");
  ::unlink(path.c_str());
  {
    JobJournal journal(path);
    ASSERT_TRUE(journal.Open().ok());
    journal.OnAdmit(MakeJob(1));         // finishes ok
    journal.OnAdmit(MakeJob(2));         // never started -> pending
    journal.OnAdmit(MakeJob(3));         // started, no done -> interrupted
    journal.OnStart(1);
    AnonymizeResponse done;
    journal.OnDone(1, done);
    journal.OnStart(3);
    EXPECT_EQ(journal.appends(), 6u);
  }

  const StatusOr<JournalReplay> replay = JobJournal::ReplayFile(path);
  ASSERT_TRUE(replay.ok()) << replay.status();
  EXPECT_EQ(replay->completed, 1u);
  EXPECT_EQ(replay->torn_records, 0u);
  ASSERT_EQ(replay->pending.size(), 2u);

  // Admission order is preserved and the request fields survive.
  EXPECT_EQ(replay->pending[0].old_id, 2u);
  EXPECT_FALSE(replay->pending[0].started);
  EXPECT_EQ(replay->pending[0].request.algorithm, "resilient");
  EXPECT_EQ(replay->pending[0].request.k, 2u);
  EXPECT_DOUBLE_EQ(replay->pending[0].request.deadline_ms, 250.0);
  EXPECT_EQ(replay->pending[0].request.node_budget, 1000u);
  EXPECT_EQ(replay->pending[0].request.priority, 1);
  EXPECT_TRUE(replay->pending[0].request.emit_csv);
  EXPECT_EQ(replay->pending[0].request.csv_text, "a,b\n1,2\n1,2");

  EXPECT_EQ(replay->pending[1].old_id, 3u);
  EXPECT_TRUE(replay->pending[1].started);
  ::unlink(path.c_str());
}

TEST(JournalTest, CancelRecordFlagsTheReplayedJob) {
  const std::string path = TempJournalPath("cancel");
  ::unlink(path.c_str());
  {
    JobJournal journal(path);
    journal.OnAdmit(MakeJob(7));
    journal.OnCancel(7);
  }
  const StatusOr<JournalReplay> replay = JobJournal::ReplayFile(path);
  ASSERT_TRUE(replay.ok());
  ASSERT_EQ(replay->pending.size(), 1u);
  EXPECT_TRUE(replay->pending[0].cancelled);
  EXPECT_FALSE(replay->pending[0].started);
  ::unlink(path.c_str());
}

TEST(JournalTest, MissingFileIsAnEmptyFirstBootReplay) {
  const StatusOr<JournalReplay> replay =
      JobJournal::ReplayFile(TempJournalPath("never_written"));
  ASSERT_TRUE(replay.ok());
  EXPECT_TRUE(replay->pending.empty());
  EXPECT_EQ(replay->completed, 0u);
}

TEST(JournalTest, TornTailIsDroppedAndCounted) {
  const std::string path = TempJournalPath("torn");
  ::unlink(path.c_str());
  {
    JobJournal journal(path);
    journal.OnAdmit(MakeJob(1));
    journal.OnAdmit(MakeJob(2));
  }
  const std::string bytes = ReadAll(path);
  // Cut mid-way through the final record, as a crash during write()
  // would: the first record must still replay, the tail must not.
  WriteAll(path, bytes.substr(0, bytes.size() - 10));

  const StatusOr<JournalReplay> replay = JobJournal::ReplayFile(path);
  ASSERT_TRUE(replay.ok()) << replay.status();
  EXPECT_EQ(replay->torn_records, 1u);
  ASSERT_EQ(replay->pending.size(), 1u);
  EXPECT_EQ(replay->pending[0].old_id, 1u);
  ::unlink(path.c_str());
}

TEST(JournalTest, MidFileCorruptionIsATypedRefusal) {
  const std::string path = TempJournalPath("corrupt");
  ::unlink(path.c_str());
  {
    JobJournal journal(path);
    journal.OnAdmit(MakeJob(1));
    journal.OnAdmit(MakeJob(2));
    journal.OnStart(2);
  }
  std::string bytes = ReadAll(path);
  // Flip one payload byte of the FIRST record: a checksum mismatch
  // before the tail is tampering/bit-rot, not a crash, and replay must
  // refuse rather than silently drop admitted work.
  bytes[20] = bytes[20] == 'x' ? 'y' : 'x';
  WriteAll(path, bytes);

  const StatusOr<JournalReplay> replay = JobJournal::ReplayFile(path);
  ASSERT_FALSE(replay.ok());
  EXPECT_EQ(replay.status().code(), StatusCode::kParseError);
  ::unlink(path.c_str());
}

TEST(JournalTest, ResetTruncatesForTheNextIncarnation) {
  const std::string path = TempJournalPath("reset");
  ::unlink(path.c_str());
  {
    JobJournal journal(path);
    journal.OnAdmit(MakeJob(1));
  }
  ASSERT_FALSE(ReadAll(path).empty());
  ASSERT_TRUE(JobJournal::Reset(path).ok());
  EXPECT_TRUE(ReadAll(path).empty());

  const StatusOr<JournalReplay> replay = JobJournal::ReplayFile(path);
  ASSERT_TRUE(replay.ok());
  EXPECT_TRUE(replay->pending.empty());
  ::unlink(path.c_str());
}

TEST(JournalTest, InjectedTornWriteKillsTheJournalLikeACrash) {
  const std::string path = TempJournalPath("injected");
  ::unlink(path.c_str());

  FaultPlan plan;
  plan.sites.push_back({.site = "journal.append", .first_n = 1});
  {
    JobJournal journal(path);
    ScopedFaultInjection injection(plan);
    journal.OnAdmit(MakeJob(1));  // torn: half the line reaches disk
    journal.OnAdmit(MakeJob(2));  // dropped: the journal is dead
    EXPECT_EQ(journal.appends(), 0u);
    EXPECT_FALSE(journal.Open().ok());
  }

  // Replay sees exactly what a post-crash boot would: one torn tail,
  // no trustworthy records.
  const StatusOr<JournalReplay> replay = JobJournal::ReplayFile(path);
  ASSERT_TRUE(replay.ok()) << replay.status();
  EXPECT_EQ(replay->torn_records, 1u);
  EXPECT_TRUE(replay->pending.empty());
  ::unlink(path.c_str());
}

TEST(JournalTest, AdmitPayloadPrefersTheParsedTable) {
  Job job = MakeJob(5, "x\n1\n1\n");
  StatusOr<Table> table = ParseTableCsv("q\n3\n3\n");
  ASSERT_TRUE(table.ok());
  job.request.table.emplace(*std::move(table));
  const std::string payload = JobJournal::AdmitPayload(job);
  // The parsed table wins over stale csv_text, and rows are inlined
  // with ';' so the record stays one line.
  EXPECT_NE(payload.find("csv=q;3;3"), std::string::npos) << payload;
  EXPECT_EQ(payload.find('\n'), std::string::npos);
}

}  // namespace
}  // namespace kanon
