#include "util/stats.h"

#include <cmath>
#include <vector>

#include "gtest/gtest.h"
#include "util/random.h"

namespace kanon {
namespace {

TEST(AccumulatorTest, EmptyDefaults) {
  Accumulator acc;
  EXPECT_EQ(acc.count(), 0u);
  EXPECT_DOUBLE_EQ(acc.mean(), 0.0);
  EXPECT_DOUBLE_EQ(acc.variance(), 0.0);
  EXPECT_EQ(acc.ToString(), "(empty)");
}

TEST(AccumulatorTest, SingleValue) {
  Accumulator acc;
  acc.Add(5.0);
  EXPECT_EQ(acc.count(), 1u);
  EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
  EXPECT_DOUBLE_EQ(acc.variance(), 0.0);
  EXPECT_DOUBLE_EQ(acc.min(), 5.0);
  EXPECT_DOUBLE_EQ(acc.max(), 5.0);
  EXPECT_DOUBLE_EQ(acc.sum(), 5.0);
}

TEST(AccumulatorTest, KnownMoments) {
  Accumulator acc;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    acc.Add(x);
  }
  EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
  // Sample variance with n-1 = 7: sum sq dev = 32.
  EXPECT_NEAR(acc.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(acc.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(acc.min(), 2.0);
  EXPECT_DOUBLE_EQ(acc.max(), 9.0);
}

TEST(AccumulatorTest, NegativeValues) {
  Accumulator acc;
  acc.Add(-10.0);
  acc.Add(10.0);
  EXPECT_DOUBLE_EQ(acc.mean(), 0.0);
  EXPECT_DOUBLE_EQ(acc.min(), -10.0);
  EXPECT_DOUBLE_EQ(acc.max(), 10.0);
}

TEST(QuantileTest, MedianOfOddCount) {
  EXPECT_DOUBLE_EQ(Median({3.0, 1.0, 2.0}), 2.0);
}

TEST(QuantileTest, MedianOfEvenCountInterpolates) {
  EXPECT_DOUBLE_EQ(Median({1.0, 2.0, 3.0, 4.0}), 2.5);
}

TEST(QuantileTest, Extremes) {
  const std::vector<double> v = {5.0, 1.0, 3.0};
  EXPECT_DOUBLE_EQ(Quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 1.0), 5.0);
}

TEST(QuantileTest, SingleElement) {
  EXPECT_DOUBLE_EQ(Quantile({7.0}, 0.25), 7.0);
}

TEST(FitLinearTest, ExactLine) {
  const std::vector<double> xs = {1, 2, 3, 4};
  std::vector<double> ys;
  for (const double x : xs) ys.push_back(3.0 * x - 1.0);
  const LinearFit fit = FitLinear(xs, ys);
  EXPECT_NEAR(fit.slope, 3.0, 1e-12);
  EXPECT_NEAR(fit.intercept, -1.0, 1e-12);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
}

TEST(FitLinearTest, ConstantYs) {
  const LinearFit fit = FitLinear({1, 2, 3}, {4, 4, 4});
  EXPECT_NEAR(fit.slope, 0.0, 1e-12);
  EXPECT_NEAR(fit.intercept, 4.0, 1e-12);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
}

TEST(FitLinearTest, NoisyLineRecoversSlope) {
  Rng rng(1);
  std::vector<double> xs, ys;
  for (int i = 0; i < 200; ++i) {
    const double x = i * 0.1;
    xs.push_back(x);
    ys.push_back(2.0 * x + 5.0 + (rng.UniformDouble() - 0.5) * 0.01);
  }
  const LinearFit fit = FitLinear(xs, ys);
  EXPECT_NEAR(fit.slope, 2.0, 0.01);
  EXPECT_NEAR(fit.intercept, 5.0, 0.05);
  EXPECT_GT(fit.r_squared, 0.999);
}

TEST(FitPowerLawTest, RecoversExponent) {
  std::vector<double> xs, ys;
  for (const double x : {10.0, 20.0, 40.0, 80.0, 160.0}) {
    xs.push_back(x);
    ys.push_back(0.5 * std::pow(x, 2.5));
  }
  const LinearFit fit = FitPowerLaw(xs, ys);
  EXPECT_NEAR(fit.slope, 2.5, 1e-9);  // slope in log-log = exponent
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-9);
}

TEST(FitPowerLawTest, LinearDataHasExponentOne) {
  const LinearFit fit =
      FitPowerLaw({1.0, 2.0, 4.0, 8.0}, {3.0, 6.0, 12.0, 24.0});
  EXPECT_NEAR(fit.slope, 1.0, 1e-9);
}

}  // namespace
}  // namespace kanon
