#include "util/random.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include "gtest/gtest.h"

namespace kanon {
namespace {

TEST(SplitMix64Test, DeterministicAndDistinct) {
  uint64_t s1 = 42, s2 = 42;
  EXPECT_EQ(SplitMix64(&s1), SplitMix64(&s2));
  EXPECT_NE(SplitMix64(&s1), SplitMix64(&s2) + 1);  // states advanced alike
  uint64_t s3 = 42;
  const uint64_t a = SplitMix64(&s3);
  const uint64_t b = SplitMix64(&s3);
  EXPECT_NE(a, b);
}

TEST(RngTest, DeterministicForSeed) {
  Rng a(123, 7), b(123, 7);
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 4);
}

TEST(RngTest, DifferentStreamsDiffer) {
  Rng a(1, 1), b(1, 2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 4);
}

TEST(RngTest, UniformInRange) {
  Rng rng(99);
  for (uint32_t bound : {1u, 2u, 3u, 17u, 1000u}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.Uniform(bound), bound);
    }
  }
}

TEST(RngTest, UniformOneIsAlwaysZero) {
  Rng rng(5);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(rng.Uniform(1), 0u);
  }
}

TEST(RngTest, UniformCoversAllValues) {
  Rng rng(7);
  std::set<uint32_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.Uniform(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, UniformIntInclusiveBounds) {
  Rng rng(11);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, UniformDoubleInHalfOpenUnit) {
  Rng rng(13);
  double sum = 0;
  for (int i = 0; i < 5000; ++i) {
    const double v = rng.UniformDouble();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 5000.0, 0.5, 0.05);
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(17);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(19);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(RngTest, ZipfZeroExponentIsUniformRange) {
  Rng rng(23);
  std::set<uint32_t> seen;
  for (int i = 0; i < 400; ++i) {
    const uint32_t v = rng.Zipf(8, 0.0);
    ASSERT_LT(v, 8u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, ZipfSkewsTowardSmallRanks) {
  Rng rng(29);
  int rank0 = 0, rank_last = 0;
  for (int i = 0; i < 5000; ++i) {
    const uint32_t v = rng.Zipf(10, 1.2);
    ASSERT_LT(v, 10u);
    if (v == 0) ++rank0;
    if (v == 9) ++rank_last;
  }
  EXPECT_GT(rank0, 4 * rank_last);
}

TEST(RngTest, ShufflePreservesMultiset) {
  Rng rng(31);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8, 2};
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  std::sort(orig.begin(), orig.end());
  EXPECT_EQ(v, orig);
}

TEST(RngTest, ShuffleEmptyAndSingleton) {
  Rng rng(37);
  std::vector<int> empty;
  rng.Shuffle(&empty);
  EXPECT_TRUE(empty.empty());
  std::vector<int> one = {42};
  rng.Shuffle(&one);
  EXPECT_EQ(one, std::vector<int>{42});
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(41);
  for (int trial = 0; trial < 50; ++trial) {
    const std::vector<uint32_t> sample = rng.SampleWithoutReplacement(20, 7);
    ASSERT_EQ(sample.size(), 7u);
    std::set<uint32_t> s(sample.begin(), sample.end());
    EXPECT_EQ(s.size(), 7u);
    for (const uint32_t x : sample) EXPECT_LT(x, 20u);
  }
}

TEST(RngTest, SampleFullRangeIsPermutation) {
  Rng rng(43);
  const std::vector<uint32_t> sample = rng.SampleWithoutReplacement(10, 10);
  std::set<uint32_t> s(sample.begin(), sample.end());
  EXPECT_EQ(s.size(), 10u);
}

TEST(RngTest, SampleZeroIsEmpty) {
  Rng rng(47);
  EXPECT_TRUE(rng.SampleWithoutReplacement(5, 0).empty());
}

}  // namespace
}  // namespace kanon
