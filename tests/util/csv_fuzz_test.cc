#include <string>

#include "gtest/gtest.h"
#include "util/csv.h"
#include "util/random.h"

/// \file
/// Randomized robustness suite for the CSV engine: (1) any table of
/// random field contents round-trips exactly through Write/Parse, and
/// (2) arbitrary byte soup either parses or is rejected — never crashes
/// or returns rows that fail to re-serialize.

namespace kanon {
namespace {

std::string RandomField(Rng* rng) {
  static const char kAlphabet[] =
      "abcXYZ019 ,\"\n\r\t;|*'\\-_";
  const uint32_t len = rng->Uniform(12);
  std::string out;
  for (uint32_t i = 0; i < len; ++i) {
    out.push_back(kAlphabet[rng->Uniform(sizeof(kAlphabet) - 1)]);
  }
  return out;
}

class CsvRoundTripFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CsvRoundTripFuzz, RandomTablesRoundTripExactly) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 40; ++trial) {
    const uint32_t rows = 1 + rng.Uniform(6);
    const uint32_t cols = 1 + rng.Uniform(5);
    std::vector<CsvRow> table(rows);
    for (auto& row : table) {
      row.resize(cols);
      for (auto& field : row) field = RandomField(&rng);
    }
    const std::string text = WriteCsv(table);
    std::vector<CsvRow> parsed;
    std::string error;
    ASSERT_TRUE(ParseCsv(text, &parsed, &error))
        << error << "\ntext: " << text;
    EXPECT_EQ(parsed, table);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CsvRoundTripFuzz,
                         ::testing::Range<uint64_t>(1, 9));

class CsvGarbageFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CsvGarbageFuzz, ArbitraryBytesNeverCrash) {
  Rng rng(GetParam() * 1000);
  for (int trial = 0; trial < 200; ++trial) {
    const uint32_t len = rng.Uniform(64);
    std::string soup;
    for (uint32_t i = 0; i < len; ++i) {
      soup.push_back(static_cast<char>(rng.Uniform(256)));
    }
    std::vector<CsvRow> rows;
    std::string error;
    if (ParseCsv(soup, &rows, &error)) {
      // Accepted input must re-serialize and re-parse to the same rows
      // (serialization canonicalizes line endings, so compare rows, not
      // bytes).
      const std::string text = WriteCsv(rows);
      std::vector<CsvRow> again;
      ASSERT_TRUE(ParseCsv(text, &again, &error)) << error;
      EXPECT_EQ(again, rows);
    } else {
      EXPECT_FALSE(error.empty());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CsvGarbageFuzz,
                         ::testing::Range<uint64_t>(1, 6));

TEST(CsvPathologicalTest, DeeplyQuotedFieldRoundTrips) {
  // A field that is nothing but thousands of literal quotes: the writer
  // doubles each one, the parser must undouble them all back.
  const std::string quotes(4096, '"');
  const std::vector<CsvRow> table = {{quotes, "plain"}, {"", quotes}};
  const std::string text = WriteCsv(table);
  std::vector<CsvRow> parsed;
  std::string error;
  ASSERT_TRUE(ParseCsv(text, &parsed, &error)) << error;
  EXPECT_EQ(parsed, table);
}

TEST(CsvPathologicalTest, NestedQuotingLayersRoundTrip) {
  // Quotes wrapping commas wrapping quotes, several layers deep.
  std::string field = "x";
  for (int layer = 0; layer < 10; ++layer) {
    field = "\"" + field + "\",\r\n'" + field + "'";
  }
  const std::vector<CsvRow> table = {{field, field}};
  const std::string text = WriteCsv(table);
  std::vector<CsvRow> parsed;
  std::string error;
  ASSERT_TRUE(ParseCsv(text, &parsed, &error)) << error;
  EXPECT_EQ(parsed, table);
}

TEST(CsvPathologicalTest, MegabyteSingleRowFile) {
  // One record, a few enormous fields — no quadratic blowup, no crash.
  const std::string big_quoted(1 << 20, '"');
  const std::string big_plain(1 << 20, 'a');
  const std::vector<CsvRow> table = {{big_quoted, big_plain, ""}};
  const std::string text = WriteCsv(table);
  ASSERT_GT(text.size(), size_t{3} << 20);
  std::vector<CsvRow> parsed;
  std::string error;
  ASSERT_TRUE(ParseCsv(text, &parsed, &error)) << error;
  EXPECT_EQ(parsed, table);
}

TEST(CsvPathologicalTest, MegabyteUnterminatedQuoteRejectedCleanly) {
  std::string text = "a,b\nc,\"";
  text.append(1 << 20, 'x');  // quote never closes
  std::vector<CsvRow> rows = {{"stale"}};
  std::string error;
  EXPECT_FALSE(ParseCsv(text, &rows, &error));
  EXPECT_EQ(error, "unterminated quoted field");
  // The error path must not leave the previously parsed rows visible.
  EXPECT_TRUE(rows.empty());
}

TEST(CsvErrorStateTest, FailedParseAlwaysClearsRows) {
  // Every rejection class leaves `rows` empty, even when valid rows
  // preceded the defect and `rows` held stale data going in.
  const std::string kBad[] = {
      "ok1,ok2\nbad\"field,x",    // quote inside unquoted field
      "ok1,ok2\n\"closed\"junk",  // data after closing quote
      "ok1,ok2\n\"never closed",  // unterminated quote
  };
  for (const std::string& text : kBad) {
    std::vector<CsvRow> rows = {{"stale", "row"}};
    std::string error;
    EXPECT_FALSE(ParseCsv(text, &rows, &error)) << text;
    EXPECT_FALSE(error.empty());
    EXPECT_TRUE(rows.empty())
        << "partially parsed rows visible for: " << text;
  }
}

}  // namespace
}  // namespace kanon
