#include "util/status.h"

#include <sstream>

#include "gtest/gtest.h"

namespace kanon {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_TRUE(s.message().empty());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ConstructorsCarryCodeAndMessage) {
  const Status s = Status::InvalidArgument("k must be >= 1");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "k must be >= 1");
  EXPECT_EQ(s.ToString(), "INVALID_ARGUMENT: k must be >= 1");

  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::ParseError("x").code(), StatusCode::kParseError);
  EXPECT_EQ(Status::DeadlineExceeded("x").code(),
            StatusCode::kDeadlineExceeded);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::Cancelled("x").code(), StatusCode::kCancelled);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(StatusTest, StreamsToString) {
  std::ostringstream os;
  os << Status::NotFound("missing.csv");
  EXPECT_EQ(os.str(), "NOT_FOUND: missing.csv");
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> s = 42;
  ASSERT_TRUE(s.ok());
  EXPECT_TRUE(s.status().ok());
  EXPECT_EQ(s.value(), 42);
  EXPECT_EQ(*s, 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> s = Status::ParseError("bad row");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.status().code(), StatusCode::kParseError);
  EXPECT_EQ(s.status().message(), "bad row");
}

TEST(StatusOrTest, WorksWithoutDefaultConstructibleType) {
  struct NoDefault {
    explicit NoDefault(int v) : value(v) {}
    int value;
  };
  StatusOr<NoDefault> ok = NoDefault(7);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok->value, 7);
  StatusOr<NoDefault> err = Status::NotFound("nope");
  EXPECT_FALSE(err.ok());
}

TEST(StatusOrTest, MoveOutValue) {
  StatusOr<std::string> s = std::string("payload");
  const std::string moved = *std::move(s);
  EXPECT_EQ(moved, "payload");
}

TEST(StatusOrDeathTest, ValueOnErrorDies) {
  StatusOr<int> s = Status::NotFound("gone");
  EXPECT_DEATH((void)s.value(), "NOT_FOUND");
}

TEST(StatusOrDeathTest, ConstructingFromOkStatusDies) {
  EXPECT_DEATH((void)StatusOr<int>(Status::Ok()),
               "StatusOr constructed from OK status");
}

}  // namespace
}  // namespace kanon
