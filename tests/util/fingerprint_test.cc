#include "util/fingerprint.h"

#include "gtest/gtest.h"

namespace kanon {
namespace {

TEST(FingerprintTest, DeterministicAndContentSensitive) {
  EXPECT_EQ(Fingerprint("abc"), Fingerprint("abc"));
  EXPECT_NE(Fingerprint("abc"), Fingerprint("abd"));
  EXPECT_NE(Fingerprint("abc"), Fingerprint("ab"));
  EXPECT_NE(Fingerprint(""), 0u);  // seed, not zero
}

TEST(FingerprintTest, PieceChainingIsBoundaryProof) {
  // Without length delimiting, ("ab","c") and ("a","bc") would collide.
  uint64_t a = FingerprintPiece(kFingerprintSeed, "ab");
  a = FingerprintPiece(a, "c");
  uint64_t b = FingerprintPiece(kFingerprintSeed, "a");
  b = FingerprintPiece(b, "bc");
  EXPECT_NE(a, b);
}

TEST(FingerprintTest, IntFoldsAllEightBytes) {
  const uint64_t base = kFingerprintSeed;
  EXPECT_NE(FingerprintInt(base, 1), FingerprintInt(base, 2));
  EXPECT_NE(FingerprintInt(base, 1),
            FingerprintInt(base, 1ull << 56));  // high byte matters
}

TEST(FingerprintTest, BytesChainMatchesOneShot) {
  uint64_t chained = FingerprintBytes(kFingerprintSeed, "hel");
  chained = FingerprintBytes(chained, "lo");
  EXPECT_EQ(chained, Fingerprint("hello"));
}

}  // namespace
}  // namespace kanon
