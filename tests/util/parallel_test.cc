#include "util/parallel.h"

#include <atomic>
#include <numeric>
#include <vector>

#include "core/distance.h"
#include "data/generators/uniform.h"
#include "gtest/gtest.h"
#include "util/random.h"
#include "util/run_context.h"

namespace kanon {
namespace {

/// RAII guard restoring the global parallelism level.
class ParallelismGuard {
 public:
  explicit ParallelismGuard(unsigned workers)
      : previous_(GetParallelism()) {
    SetParallelism(workers);
  }
  ~ParallelismGuard() { SetParallelism(previous_); }

 private:
  unsigned previous_;
};

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  ParallelismGuard guard(4);
  const size_t n = 1000;
  std::vector<std::atomic<int>> hits(n);
  ParallelFor(0, n, 1, [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
    }
  });
  for (size_t i = 0; i < n; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << i;
  }
}

TEST(ParallelForTest, EmptyRangeIsNoop) {
  ParallelismGuard guard(4);
  bool called = false;
  ParallelFor(5, 5, 1, [&](size_t, size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelForTest, SmallRangeRunsInline) {
  ParallelismGuard guard(8);
  int calls = 0;
  ParallelFor(0, 3, 100, [&](size_t lo, size_t hi) {
    ++calls;
    EXPECT_EQ(lo, 0u);
    EXPECT_EQ(hi, 3u);
  });
  EXPECT_EQ(calls, 1);
}

TEST(ParallelForTest, SerialModeSingleChunk) {
  ParallelismGuard guard(1);
  int calls = 0;
  ParallelFor(0, 10000, 1, [&](size_t, size_t) { ++calls; });
  EXPECT_EQ(calls, 1);
}

TEST(ParallelForTest, SumMatchesSerial) {
  ParallelismGuard guard(6);
  const size_t n = 4096;
  std::vector<long long> out(n);
  ParallelFor(0, n, 8, [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) {
      out[i] = static_cast<long long>(i) * 3 - 7;
    }
  });
  long long total = std::accumulate(out.begin(), out.end(), 0LL);
  long long expected = 0;
  for (size_t i = 0; i < n; ++i) {
    expected += static_cast<long long>(i) * 3 - 7;
  }
  EXPECT_EQ(total, expected);
}

TEST(ParallelForTest, EmptyRangeWithZeroMinChunkIsNoop) {
  ParallelismGuard guard(4);
  bool called = false;
  ParallelFor(0, 0, 0, [&](size_t, size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelForTest, ZeroMinChunkCoversRange) {
  // min_chunk = 0 is clamped to 1 rather than dividing by zero.
  ParallelismGuard guard(4);
  const size_t n = 257;
  std::vector<std::atomic<int>> hits(n);
  ParallelFor(0, n, 0, [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
    }
  });
  for (size_t i = 0; i < n; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << i;
  }
}

TEST(ParallelForTest, InvertedRangeIsNoop) {
  ParallelismGuard guard(4);
  bool called = false;
  ParallelFor(10, 5, 1, [&](size_t, size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelForTest, PreCancelledContextSkipsAllWork) {
  ParallelismGuard guard(4);
  RunContext ctx;
  ctx.RequestCancel();
  std::atomic<int> calls{0};
  ParallelFor(0, 10000, 1,
              [&](size_t, size_t) { calls.fetch_add(1); }, &ctx);
  EXPECT_EQ(calls.load(), 0);
  EXPECT_EQ(ctx.stop_reason(), StopReason::kCancelled);
}

TEST(ParallelForTest, MidRunCancellationStopsRemainingChunks) {
  ParallelismGuard guard(1);  // deterministic serial sub-chunking
  RunContext ctx;
  std::atomic<size_t> visited{0};
  ParallelFor(
      0, 10000, 10,
      [&](size_t lo, size_t hi) {
        visited.fetch_add(hi - lo);
        ctx.RequestCancel();  // first sub-chunk pulls the plug
      },
      &ctx);
  // Only the sub-chunk in flight at cancellation time completed.
  EXPECT_LE(visited.load(), 10u);
  EXPECT_TRUE(ctx.ShouldStop());
}

TEST(ParallelForTest, NullContextMatchesHistoricalChunking) {
  // With no context the serial path must stay one contiguous call.
  ParallelismGuard guard(1);
  int calls = 0;
  ParallelFor(0, 10000, 1, [&](size_t, size_t) { ++calls; }, nullptr);
  EXPECT_EQ(calls, 1);
}

TEST(SetParallelismTest, RoundTrips) {
  ParallelismGuard guard(3);
  EXPECT_EQ(GetParallelism(), 3u);
}

TEST(SetParallelismTest, ZeroWorkersClampsToOne) {
  ParallelismGuard guard(0);
  EXPECT_EQ(GetParallelism(), 1u);
  // And the clamped configuration still executes work correctly.
  int calls = 0;
  ParallelFor(0, 100, 1, [&](size_t lo, size_t hi) {
    ++calls;
    EXPECT_EQ(lo, 0u);
    EXPECT_EQ(hi, 100u);
  });
  EXPECT_EQ(calls, 1);
}

TEST(ParallelDistanceMatrixTest, IdenticalToSerial) {
  Rng rng(1);
  const Table t = UniformTable(
      {.num_rows = 200, .num_columns = 10, .alphabet = 4}, &rng);
  std::vector<ColId> serial, parallel;
  {
    ParallelismGuard guard(1);
    const DistanceMatrix dm(t);
    for (RowId a = 0; a < t.num_rows(); ++a) {
      for (RowId b = 0; b < t.num_rows(); ++b) {
        serial.push_back(dm.at(a, b));
      }
    }
  }
  {
    ParallelismGuard guard(8);
    const DistanceMatrix dm(t);
    for (RowId a = 0; a < t.num_rows(); ++a) {
      for (RowId b = 0; b < t.num_rows(); ++b) {
        parallel.push_back(dm.at(a, b));
      }
    }
  }
  EXPECT_EQ(serial, parallel);
}

}  // namespace
}  // namespace kanon
