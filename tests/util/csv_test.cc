#include "util/csv.h"

#include <cstdio>
#include <string>

#include "gtest/gtest.h"

namespace kanon {
namespace {

std::vector<CsvRow> MustParse(std::string_view text) {
  std::vector<CsvRow> rows;
  std::string error;
  EXPECT_TRUE(ParseCsv(text, &rows, &error)) << error;
  return rows;
}

TEST(ParseCsvTest, Simple) {
  const auto rows = MustParse("a,b\n1,2\n");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0], (CsvRow{"a", "b"}));
  EXPECT_EQ(rows[1], (CsvRow{"1", "2"}));
}

TEST(ParseCsvTest, MissingFinalNewline) {
  const auto rows = MustParse("a,b\n1,2");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[1], (CsvRow{"1", "2"}));
}

TEST(ParseCsvTest, EmptyInput) {
  EXPECT_TRUE(MustParse("").empty());
}

TEST(ParseCsvTest, EmptyFields) {
  const auto rows = MustParse(",\n");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0], (CsvRow{"", ""}));
}

TEST(ParseCsvTest, QuotedComma) {
  const auto rows = MustParse("\"a,b\",c\n");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0], (CsvRow{"a,b", "c"}));
}

TEST(ParseCsvTest, EscapedQuote) {
  const auto rows = MustParse("\"he said \"\"hi\"\"\"\n");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], "he said \"hi\"");
}

TEST(ParseCsvTest, QuotedNewline) {
  const auto rows = MustParse("\"line1\nline2\",x\n");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], "line1\nline2");
}

TEST(ParseCsvTest, CrlfLineEndings) {
  const auto rows = MustParse("a,b\r\nc,d\r\n");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[1], (CsvRow{"c", "d"}));
}

TEST(ParseCsvTest, UnterminatedQuoteFails) {
  std::vector<CsvRow> rows;
  std::string error;
  EXPECT_FALSE(ParseCsv("\"abc", &rows, &error));
  EXPECT_FALSE(error.empty());
}

TEST(ParseCsvTest, JunkAfterQuoteFails) {
  std::vector<CsvRow> rows;
  std::string error;
  EXPECT_FALSE(ParseCsv("\"abc\"x,y\n", &rows, &error));
}

TEST(ParseCsvTest, QuoteInsideUnquotedFieldFails) {
  std::vector<CsvRow> rows;
  std::string error;
  EXPECT_FALSE(ParseCsv("ab\"c,d\n", &rows, &error));
}

TEST(EscapeCsvFieldTest, PlainUnchanged) {
  EXPECT_EQ(EscapeCsvField("hello"), "hello");
  EXPECT_EQ(EscapeCsvField(""), "");
}

TEST(EscapeCsvFieldTest, QuotesWhenNeeded) {
  EXPECT_EQ(EscapeCsvField("a,b"), "\"a,b\"");
  EXPECT_EQ(EscapeCsvField("a\"b"), "\"a\"\"b\"");
  EXPECT_EQ(EscapeCsvField("a\nb"), "\"a\nb\"");
}

TEST(WriteCsvTest, RoundTrip) {
  const std::vector<CsvRow> rows = {
      {"name", "note"},
      {"a,b", "he said \"hi\""},
      {"", "line1\nline2"},
  };
  const auto parsed = MustParse(WriteCsv(rows));
  EXPECT_EQ(parsed, rows);
}

TEST(FileIoTest, WriteThenRead) {
  const std::string path = testing::TempDir() + "/kanon_csv_test.txt";
  ASSERT_TRUE(WriteStringToFile(path, "hello\nworld"));
  std::string contents;
  ASSERT_TRUE(ReadFileToString(path, &contents));
  EXPECT_EQ(contents, "hello\nworld");
  std::remove(path.c_str());
}

TEST(FileIoTest, MissingFileFails) {
  std::string contents;
  EXPECT_FALSE(ReadFileToString("/nonexistent/kanon/file", &contents));
}

}  // namespace
}  // namespace kanon
