#include "util/cli.h"

#include "gtest/gtest.h"

namespace kanon {
namespace {

CommandLine ParseArgs(std::vector<const char*> argv) {
  argv.insert(argv.begin(), "prog");
  return CommandLine::Parse(static_cast<int>(argv.size()), argv.data());
}

TEST(CommandLineTest, EqualsForm) {
  const CommandLine cl = ParseArgs({"--n=42", "--name=abc"});
  EXPECT_EQ(cl.GetInt("n", 0), 42);
  EXPECT_EQ(cl.GetString("name", ""), "abc");
}

TEST(CommandLineTest, SpaceForm) {
  const CommandLine cl = ParseArgs({"--n", "7"});
  EXPECT_EQ(cl.GetInt("n", 0), 7);
}

TEST(CommandLineTest, BareFlagIsTrue) {
  const CommandLine cl = ParseArgs({"--verbose"});
  EXPECT_TRUE(cl.HasFlag("verbose"));
  EXPECT_TRUE(cl.GetBool("verbose", false));
}

TEST(CommandLineTest, MissingFlagFallsBack) {
  const CommandLine cl = ParseArgs({});
  EXPECT_FALSE(cl.HasFlag("x"));
  EXPECT_EQ(cl.GetInt("x", -1), -1);
  EXPECT_EQ(cl.GetString("x", "d"), "d");
  EXPECT_DOUBLE_EQ(cl.GetDouble("x", 2.5), 2.5);
  EXPECT_TRUE(cl.GetBool("x", true));
}

TEST(CommandLineTest, UnparsableFallsBack) {
  const CommandLine cl = ParseArgs({"--n=abc"});
  EXPECT_EQ(cl.GetInt("n", 5), 5);
}

TEST(CommandLineTest, LaterDuplicateWins) {
  const CommandLine cl = ParseArgs({"--n=1", "--n=2"});
  EXPECT_EQ(cl.GetInt("n", 0), 2);
}

TEST(CommandLineTest, Positional) {
  const CommandLine cl = ParseArgs({"input.csv", "--k=3", "out.csv"});
  ASSERT_EQ(cl.positional().size(), 2u);
  EXPECT_EQ(cl.positional()[0], "input.csv");
  EXPECT_EQ(cl.positional()[1], "out.csv");
  EXPECT_EQ(cl.GetInt("k", 0), 3);
}

TEST(CommandLineTest, BoolSpellings) {
  EXPECT_TRUE(ParseArgs({"--a=yes"}).GetBool("a", false));
  EXPECT_TRUE(ParseArgs({"--a=1"}).GetBool("a", false));
  EXPECT_TRUE(ParseArgs({"--a=on"}).GetBool("a", false));
  EXPECT_FALSE(ParseArgs({"--a=no"}).GetBool("a", true));
  EXPECT_FALSE(ParseArgs({"--a=0"}).GetBool("a", true));
  EXPECT_FALSE(ParseArgs({"--a=off"}).GetBool("a", true));
  EXPECT_TRUE(ParseArgs({"--a=bogus"}).GetBool("a", true));  // fallback
}

TEST(CommandLineTest, DoubleParsing) {
  const CommandLine cl = ParseArgs({"--rate=0.25"});
  EXPECT_DOUBLE_EQ(cl.GetDouble("rate", 0.0), 0.25);
}

TEST(CommandLineTest, UnknownFlagsFindsTheTypo) {
  const CommandLine cl =
      ParseArgs({"--workers=4", "--workres=8", "--once"});
  const std::vector<std::string> unknown =
      cl.UnknownFlags({"workers", "once", "journal"});
  ASSERT_EQ(unknown.size(), 1u);
  EXPECT_EQ(unknown[0], "workres");
}

TEST(CommandLineTest, UnknownFlagsEmptyWhenAllKnown) {
  const CommandLine cl = ParseArgs({"--workers=4", "--once"});
  EXPECT_TRUE(cl.UnknownFlags({"workers", "once"}).empty());
  EXPECT_TRUE(ParseArgs({}).UnknownFlags({"anything"}).empty());
}

TEST(CommandLineTest, UnknownFlagsIgnoresPositionalsAndSorts) {
  const CommandLine cl =
      ParseArgs({"input.csv", "--zeta=1", "--alpha=2", "out.csv"});
  const std::vector<std::string> unknown = cl.UnknownFlags({});
  ASSERT_EQ(unknown.size(), 2u);
  EXPECT_EQ(unknown[0], "alpha");
  EXPECT_EQ(unknown[1], "zeta");
}

}  // namespace
}  // namespace kanon
