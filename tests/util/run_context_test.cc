#include "util/run_context.h"

#include <thread>

#include "gtest/gtest.h"

namespace kanon {
namespace {

TEST(RunContextTest, DefaultContextNeverStops) {
  RunContext ctx;
  for (int i = 0; i < 1000; ++i) {
    EXPECT_FALSE(ctx.ShouldStop());
  }
  EXPECT_EQ(ctx.stop_reason(), StopReason::kNone);
  EXPECT_FALSE(ctx.lenient());
}

TEST(RunContextTest, ExpiredDeadlineStopsAndLatches) {
  RunContext ctx;
  ctx.set_deadline_after_millis(-1.0);  // already expired
  EXPECT_TRUE(ctx.ShouldStop());
  EXPECT_EQ(ctx.stop_reason(), StopReason::kDeadline);
  // Latched: later checks are cheap and stay stopped.
  EXPECT_TRUE(ctx.ShouldStop());
}

TEST(RunContextTest, FutureDeadlineDoesNotStopYet) {
  RunContext ctx;
  ctx.set_deadline_after_millis(60'000.0);
  EXPECT_FALSE(ctx.ShouldStop());
  EXPECT_GT(ctx.remaining_millis(), 1000.0);
}

TEST(RunContextTest, CancellationStops) {
  RunContext ctx;
  EXPECT_FALSE(ctx.ShouldStop());
  ctx.RequestCancel();
  EXPECT_TRUE(ctx.ShouldStop());
  EXPECT_EQ(ctx.stop_reason(), StopReason::kCancelled);
}

TEST(RunContextTest, CancellationPropagatesToChildren) {
  RunContext parent;
  RunContext child(&parent);
  RunContext grandchild(&child);
  EXPECT_FALSE(grandchild.ShouldStop());
  parent.RequestCancel();
  EXPECT_TRUE(grandchild.cancel_requested());
  EXPECT_TRUE(grandchild.ShouldStop());
  EXPECT_EQ(grandchild.stop_reason(), StopReason::kCancelled);
  // Limits are NOT inherited: the parent's stop does not mark a fresh
  // sibling that never observed it... but cancellation does.
  RunContext sibling(&parent);
  EXPECT_TRUE(sibling.ShouldStop());
}

TEST(RunContextTest, ChildDeadlineDoesNotAffectParent) {
  RunContext parent;
  RunContext child(&parent);
  child.set_deadline_after_millis(-1.0);
  EXPECT_TRUE(child.ShouldStop());
  EXPECT_FALSE(parent.ShouldStop());
  EXPECT_EQ(parent.stop_reason(), StopReason::kNone);
}

TEST(RunContextTest, NodeBudgetStopsAfterOverrun) {
  RunContext ctx;
  ctx.set_node_budget(10);
  ctx.ChargeNodes(9);
  EXPECT_FALSE(ctx.ShouldStop());
  ctx.ChargeNodes(2);
  EXPECT_TRUE(ctx.ShouldStop());
  EXPECT_EQ(ctx.stop_reason(), StopReason::kBudget);
  EXPECT_EQ(ctx.nodes_charged(), 11u);
}

TEST(RunContextTest, FirstStopReasonWins) {
  RunContext ctx;
  ctx.set_deadline_after_millis(-1.0);
  EXPECT_TRUE(ctx.ShouldStop());
  ctx.RequestCancel();
  EXPECT_TRUE(ctx.ShouldStop());
  EXPECT_EQ(ctx.stop_reason(), StopReason::kDeadline);
}

TEST(RunContextTest, MemoryChargingTracksPeakAndReleases) {
  RunContext ctx;  // unlimited
  EXPECT_TRUE(ctx.TryChargeMemory(1000));
  EXPECT_TRUE(ctx.TryChargeMemory(500));
  EXPECT_EQ(ctx.peak_memory_bytes(), 1500u);
  ctx.ReleaseMemory(500);
  EXPECT_TRUE(ctx.TryChargeMemory(200));
  EXPECT_EQ(ctx.peak_memory_bytes(), 1500u);  // high-water mark
  EXPECT_FALSE(ctx.ShouldStop());
}

TEST(RunContextTest, MemoryLimitDeclinesAndLatchesBudget) {
  RunContext ctx;
  ctx.set_memory_limit_bytes(1024);
  EXPECT_TRUE(ctx.TryChargeMemory(1000));
  EXPECT_FALSE(ctx.TryChargeMemory(100));  // would exceed the ceiling
  EXPECT_TRUE(ctx.ShouldStop());
  EXPECT_EQ(ctx.stop_reason(), StopReason::kBudget);
  // The failed charge was rolled back.
  EXPECT_EQ(ctx.peak_memory_bytes(), 1000u);
}

TEST(RunContextTest, MarkStoppedLatchesDirectly) {
  RunContext ctx;
  ctx.MarkStopped(StopReason::kBudget);
  EXPECT_TRUE(ctx.ShouldStop());
  EXPECT_EQ(ctx.stop_reason(), StopReason::kBudget);
}

TEST(RunContextTest, CancelFromAnotherThreadIsObserved) {
  RunContext ctx;
  std::thread canceller([&] { ctx.RequestCancel(); });
  canceller.join();
  EXPECT_TRUE(ctx.ShouldStop());
  EXPECT_EQ(ctx.stop_reason(), StopReason::kCancelled);
}

TEST(StopReasonTest, NamesAndStatusMapping) {
  EXPECT_STREQ(StopReasonName(StopReason::kNone), "completed");
  EXPECT_STREQ(StopReasonName(StopReason::kDeadline), "deadline");
  EXPECT_STREQ(StopReasonName(StopReason::kBudget), "budget");
  EXPECT_STREQ(StopReasonName(StopReason::kCancelled), "cancelled");

  EXPECT_TRUE(StopReasonToStatus(StopReason::kNone).ok());
  EXPECT_EQ(StopReasonToStatus(StopReason::kDeadline).code(),
            StatusCode::kDeadlineExceeded);
  EXPECT_EQ(StopReasonToStatus(StopReason::kBudget).code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(StopReasonToStatus(StopReason::kCancelled).code(),
            StatusCode::kCancelled);
}

}  // namespace
}  // namespace kanon
