#include "util/run_context.h"

#include <string>
#include <string_view>
#include <thread>

#include "gtest/gtest.h"

namespace kanon {
namespace {

TEST(RunContextTest, DefaultContextNeverStops) {
  RunContext ctx;
  for (int i = 0; i < 1000; ++i) {
    EXPECT_FALSE(ctx.ShouldStop());
  }
  EXPECT_EQ(ctx.stop_reason(), StopReason::kNone);
  EXPECT_FALSE(ctx.lenient());
}

TEST(RunContextTest, ExpiredDeadlineStopsAndLatches) {
  RunContext ctx;
  ctx.set_deadline_after_millis(-1.0);  // already expired
  EXPECT_TRUE(ctx.ShouldStop());
  EXPECT_EQ(ctx.stop_reason(), StopReason::kDeadline);
  // Latched: later checks are cheap and stay stopped.
  EXPECT_TRUE(ctx.ShouldStop());
}

TEST(RunContextTest, FutureDeadlineDoesNotStopYet) {
  RunContext ctx;
  ctx.set_deadline_after_millis(60'000.0);
  EXPECT_FALSE(ctx.ShouldStop());
  EXPECT_GT(ctx.remaining_millis(), 1000.0);
}

TEST(RunContextTest, CancellationStops) {
  RunContext ctx;
  EXPECT_FALSE(ctx.ShouldStop());
  ctx.RequestCancel();
  EXPECT_TRUE(ctx.ShouldStop());
  EXPECT_EQ(ctx.stop_reason(), StopReason::kCancelled);
}

TEST(RunContextTest, CancellationPropagatesToChildren) {
  RunContext parent;
  RunContext child(&parent);
  RunContext grandchild(&child);
  EXPECT_FALSE(grandchild.ShouldStop());
  parent.RequestCancel();
  EXPECT_TRUE(grandchild.cancel_requested());
  EXPECT_TRUE(grandchild.ShouldStop());
  EXPECT_EQ(grandchild.stop_reason(), StopReason::kCancelled);
  // Limits are NOT inherited: the parent's stop does not mark a fresh
  // sibling that never observed it... but cancellation does.
  RunContext sibling(&parent);
  EXPECT_TRUE(sibling.ShouldStop());
}

TEST(RunContextTest, ChildDeadlineDoesNotAffectParent) {
  RunContext parent;
  RunContext child(&parent);
  child.set_deadline_after_millis(-1.0);
  EXPECT_TRUE(child.ShouldStop());
  EXPECT_FALSE(parent.ShouldStop());
  EXPECT_EQ(parent.stop_reason(), StopReason::kNone);
}

TEST(RunContextTest, NodeBudgetStopsAfterOverrun) {
  RunContext ctx;
  ctx.set_node_budget(10);
  ctx.ChargeNodes(9);
  EXPECT_FALSE(ctx.ShouldStop());
  ctx.ChargeNodes(2);
  EXPECT_TRUE(ctx.ShouldStop());
  EXPECT_EQ(ctx.stop_reason(), StopReason::kBudget);
  EXPECT_EQ(ctx.nodes_charged(), 11u);
}

TEST(RunContextTest, FirstStopReasonWins) {
  RunContext ctx;
  ctx.set_deadline_after_millis(-1.0);
  EXPECT_TRUE(ctx.ShouldStop());
  ctx.RequestCancel();
  EXPECT_TRUE(ctx.ShouldStop());
  EXPECT_EQ(ctx.stop_reason(), StopReason::kDeadline);
}

TEST(RunContextTest, MemoryChargingTracksPeakAndReleases) {
  RunContext ctx;  // unlimited
  EXPECT_TRUE(ctx.TryChargeMemory(1000));
  EXPECT_TRUE(ctx.TryChargeMemory(500));
  EXPECT_EQ(ctx.peak_memory_bytes(), 1500u);
  ctx.ReleaseMemory(500);
  EXPECT_TRUE(ctx.TryChargeMemory(200));
  EXPECT_EQ(ctx.peak_memory_bytes(), 1500u);  // high-water mark
  EXPECT_FALSE(ctx.ShouldStop());
}

TEST(RunContextTest, MemoryLimitDeclinesAndLatchesBudget) {
  RunContext ctx;
  ctx.set_memory_limit_bytes(1024);
  EXPECT_TRUE(ctx.TryChargeMemory(1000));
  EXPECT_FALSE(ctx.TryChargeMemory(100));  // would exceed the ceiling
  EXPECT_TRUE(ctx.ShouldStop());
  EXPECT_EQ(ctx.stop_reason(), StopReason::kBudget);
  // The failed charge was rolled back.
  EXPECT_EQ(ctx.peak_memory_bytes(), 1000u);
}

TEST(RunContextTest, MarkStoppedLatchesDirectly) {
  RunContext ctx;
  ctx.MarkStopped(StopReason::kBudget);
  EXPECT_TRUE(ctx.ShouldStop());
  EXPECT_EQ(ctx.stop_reason(), StopReason::kBudget);
}

TEST(RunContextTest, CancelFromAnotherThreadIsObserved) {
  RunContext ctx;
  std::thread canceller([&] { ctx.RequestCancel(); });
  canceller.join();
  EXPECT_TRUE(ctx.ShouldStop());
  EXPECT_EQ(ctx.stop_reason(), StopReason::kCancelled);
}

class RecordingSink : public CheckpointSink {
 public:
  Status Persist(std::string_view solver,
                 const std::string& payload) override {
    solver_ = std::string(solver);
    payload_ = payload;
    ++persists_;
    return fail_ ? Status::Internal("sink down") : Status::Ok();
  }
  void set_fail(bool fail) { fail_ = fail; }
  uint64_t persists() const { return persists_; }
  const std::string& solver() const { return solver_; }
  const std::string& payload() const { return payload_; }

 private:
  bool fail_ = false;
  uint64_t persists_ = 0;
  std::string solver_;
  std::string payload_;
};

TEST(RunContextCheckpointTest, DisarmedCadenceIsNeverDue) {
  RunContext ctx;
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(ctx.CheckpointDue());
  EXPECT_FALSE(ctx.EmitCheckpoint("solver", "state").ok());
  EXPECT_EQ(ctx.checkpoints_emitted(), 0u);
}

TEST(RunContextCheckpointTest, PollCadenceFiresEveryNthPoll) {
  RecordingSink sink;
  RunContext ctx;
  ctx.ArmCheckpoints(&sink, /*every_polls=*/4);
  int due = 0;
  for (int i = 0; i < 12; ++i) {
    if (ctx.CheckpointDue()) ++due;
  }
  EXPECT_EQ(due, 3);

  ASSERT_TRUE(ctx.EmitCheckpoint("solver", "state-1").ok());
  EXPECT_EQ(sink.persists(), 1u);
  EXPECT_EQ(sink.solver(), "solver");
  EXPECT_EQ(sink.payload(), "state-1");
  EXPECT_EQ(ctx.checkpoints_emitted(), 1u);

  ctx.DisarmCheckpoints();
  EXPECT_FALSE(ctx.CheckpointDue());
  EXPECT_FALSE(ctx.EmitCheckpoint("solver", "state-2").ok());
  EXPECT_EQ(sink.persists(), 1u);
}

TEST(RunContextCheckpointTest, ChildContextReachesTheArmedRoot) {
  RecordingSink sink;
  RunContext root;
  root.ArmCheckpoints(&sink, /*every_polls=*/1);
  RunContext child(&root);
  RunContext grandchild(&child);

  // Solvers run under fallback-chain child contexts; the cadence and
  // the sink both live on the job root, like cancellation.
  EXPECT_TRUE(grandchild.CheckpointDue());
  ASSERT_TRUE(grandchild.EmitCheckpoint("solver", "deep").ok());
  EXPECT_EQ(sink.payload(), "deep");
  EXPECT_EQ(root.checkpoints_emitted(), 1u);
}

TEST(RunContextCheckpointTest, FailedPersistDoesNotCountAsEmitted) {
  RecordingSink sink;
  sink.set_fail(true);
  RunContext ctx;
  ctx.ArmCheckpoints(&sink, 1);
  EXPECT_FALSE(ctx.EmitCheckpoint("solver", "state").ok());
  EXPECT_EQ(sink.persists(), 1u);  // the sink was asked...
  EXPECT_EQ(ctx.checkpoints_emitted(), 0u);  // ...but nothing landed
}

TEST(RunContextCheckpointTest, ResumePayloadIsSharedDownTheChain) {
  RunContext root;
  root.SetResume("annealing", "rng-and-partition");
  RunContext child(&root);

  ASSERT_TRUE(child.resume_payload("annealing").has_value());
  EXPECT_EQ(*child.resume_payload("annealing"), "rng-and-partition");
  // Non-consuming: an in-place retry re-resumes deterministically.
  EXPECT_TRUE(child.resume_payload("annealing").has_value());
  EXPECT_FALSE(child.resume_payload("local_search").has_value());
}

TEST(RunContextCheckpointTest, IsolationBlocksTheAncestorWalk) {
  // A parallel fan-out wrapper (the sharded pipeline) isolates its
  // per-shard children: solvers under the barrier see neither the armed
  // job-root sink (no concurrent snapshot writers) nor job-root resume
  // payloads (no cross-shard state restoration) — while cancellation
  // and heartbeats still flow through.
  RecordingSink sink;
  RunContext root;
  root.ArmCheckpoints(&sink, /*every_polls=*/1);
  root.SetResume("mdav", "whole-table-state");
  RunContext shard(&root);
  shard.set_checkpoint_isolated(true);
  RunContext inner(&shard);

  EXPECT_FALSE(shard.CheckpointDue());
  EXPECT_FALSE(inner.CheckpointDue());
  EXPECT_FALSE(inner.EmitCheckpoint("mdav", "shard-local").ok());
  EXPECT_EQ(sink.persists(), 0u);
  EXPECT_FALSE(shard.resume_payload("mdav").has_value());
  EXPECT_FALSE(inner.resume_payload("mdav").has_value());

  // The barrier context's own slot and arming stay visible below it.
  shard.SetResume("mdav", "shard-scoped");
  ASSERT_TRUE(inner.resume_payload("mdav").has_value());
  EXPECT_EQ(*inner.resume_payload("mdav"), "shard-scoped");

  // The rest of the ancestor chain is unaffected by the barrier.
  const uint64_t before = root.heartbeats();
  (void)inner.ShouldStop();
  EXPECT_EQ(root.heartbeats(), before + 1);
  root.RequestCancel();
  EXPECT_TRUE(inner.cancel_requested());
}

TEST(RunContextTest, HeartbeatsBumpTheWholeAncestorChain) {
  RunContext root;
  RunContext child(&root);
  const uint64_t before = root.heartbeats();
  for (int i = 0; i < 5; ++i) (void)child.ShouldStop();
  EXPECT_EQ(child.heartbeats(), 5u);
  EXPECT_EQ(root.heartbeats(), before + 5);
}

TEST(RunContextTest, PreemptImpliesCancelAndIsInherited) {
  RunContext root;
  RunContext child(&root);
  EXPECT_FALSE(child.preempt_requested());
  root.RequestPreempt();
  EXPECT_TRUE(child.preempt_requested());
  EXPECT_TRUE(child.cancel_requested());
  EXPECT_TRUE(child.ShouldStop());
  EXPECT_EQ(child.stop_reason(), StopReason::kCancelled);
}

TEST(ScopedMemoryBudgetTest, ChargesParentCapsChildAndReleases) {
  RunContext parent;
  parent.set_memory_limit_bytes(1000);
  {
    RunContext child(&parent);
    ScopedMemoryBudget slice(&parent, &child, 400);
    ASSERT_TRUE(slice.ok());
    EXPECT_EQ(parent.memory_charged_bytes(), 400u);
    EXPECT_EQ(child.memory_limit_bytes(), 400u);
    // The child spends against its own slice, not the parent's ledger.
    EXPECT_TRUE(child.TryChargeMemory(300));
    EXPECT_FALSE(child.TryChargeMemory(200));
    EXPECT_EQ(child.stop_reason(), StopReason::kBudget);
    EXPECT_EQ(parent.memory_charged_bytes(), 400u);
  }
  // Destruction returns the slice to the parent.
  EXPECT_EQ(parent.memory_charged_bytes(), 0u);
  EXPECT_GE(parent.peak_memory_bytes(), 400u);
}

TEST(ScopedMemoryBudgetTest, OverdrawnParentLatchesBudgetAndNotOk) {
  RunContext parent;
  parent.set_memory_limit_bytes(100);
  RunContext child(&parent);
  ScopedMemoryBudget slice(&parent, &child, 400);
  EXPECT_FALSE(slice.ok());
  EXPECT_TRUE(parent.ShouldStop());
  EXPECT_EQ(parent.stop_reason(), StopReason::kBudget);
}

TEST(ScopedMemoryBudgetTest, NoOpWhenParentIsUnlimitedOrAbsent) {
  {
    RunContext parent;  // no memory limit set
    RunContext child(&parent);
    ScopedMemoryBudget slice(&parent, &child, 400);
    EXPECT_TRUE(slice.ok());
    EXPECT_EQ(parent.memory_charged_bytes(), 0u);
    EXPECT_EQ(child.memory_limit_bytes(), 0u);
  }
  {
    RunContext child(nullptr);
    ScopedMemoryBudget slice(nullptr, &child, 400);
    EXPECT_TRUE(slice.ok());
  }
  {
    RunContext parent;
    parent.set_memory_limit_bytes(100);
    RunContext child(&parent);
    ScopedMemoryBudget slice(&parent, &child, 0);
    EXPECT_TRUE(slice.ok());
    EXPECT_EQ(parent.memory_charged_bytes(), 0u);
  }
}

TEST(StopReasonTest, NamesAndStatusMapping) {
  EXPECT_STREQ(StopReasonName(StopReason::kNone), "completed");
  EXPECT_STREQ(StopReasonName(StopReason::kDeadline), "deadline");
  EXPECT_STREQ(StopReasonName(StopReason::kBudget), "budget");
  EXPECT_STREQ(StopReasonName(StopReason::kCancelled), "cancelled");

  EXPECT_TRUE(StopReasonToStatus(StopReason::kNone).ok());
  EXPECT_EQ(StopReasonToStatus(StopReason::kDeadline).code(),
            StatusCode::kDeadlineExceeded);
  EXPECT_EQ(StopReasonToStatus(StopReason::kBudget).code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(StopReasonToStatus(StopReason::kCancelled).code(),
            StatusCode::kCancelled);
}

}  // namespace
}  // namespace kanon
