#include "util/report.h"

#include <algorithm>
#include <cstdio>

#include "gtest/gtest.h"
#include "util/csv.h"

namespace kanon::bench {
namespace {

TEST(ReportTableTest, AlignsColumns) {
  ReportTable table({"name", "value"});
  table.AddRow({"a", "1"});
  table.AddRow({"longer", "22"});
  const std::string s = table.ToString();
  // Header, separator, two rows.
  EXPECT_EQ(std::count(s.begin(), s.end(), '\n'), 4);
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("longer"), std::string::npos);
  // Right alignment pads the short name.
  EXPECT_NE(s.find("     a"), std::string::npos);
}

TEST(ReportTableTest, NumAndIntFormatting) {
  EXPECT_EQ(ReportTable::Num(3.14159, 2), "3.14");
  EXPECT_EQ(ReportTable::Num(2.0, 0), "2");
  EXPECT_EQ(ReportTable::Int(-42), "-42");
}

TEST(ReportTableTest, WriteCsvRoundTrips) {
  ReportTable table({"k", "cost"});
  table.AddRow({"2", "10"});
  table.AddRow({"3", "25"});
  const std::string path = testing::TempDir() + "/kanon_report.csv";
  ASSERT_TRUE(table.WriteCsv(path));
  std::string contents;
  ASSERT_TRUE(ReadFileToString(path, &contents));
  std::vector<CsvRow> rows;
  std::string error;
  ASSERT_TRUE(ParseCsv(contents, &rows, &error)) << error;
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0], (CsvRow{"k", "cost"}));
  EXPECT_EQ(rows[2], (CsvRow{"3", "25"}));
  std::remove(path.c_str());
}

TEST(ReportTableDeathTest, ArityMismatchDies) {
  ReportTable table({"a", "b"});
  EXPECT_DEATH(table.AddRow({"only one"}), "Check failed");
}

TEST(ReportTableTest, CommasInCellsQuotedInCsv) {
  ReportTable table({"note"});
  table.AddRow({"a,b"});
  const std::string path = testing::TempDir() + "/kanon_report2.csv";
  ASSERT_TRUE(table.WriteCsv(path));
  std::string contents;
  ASSERT_TRUE(ReadFileToString(path, &contents));
  EXPECT_NE(contents.find("\"a,b\""), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace kanon::bench
