#include "util/string_util.h"

#include "gtest/gtest.h"

namespace kanon {
namespace {

TEST(SplitTest, Basic) {
  EXPECT_EQ(Split("a,b,c", ','),
            (std::vector<std::string>{"a", "b", "c"}));
}

TEST(SplitTest, EmptyFields) {
  EXPECT_EQ(Split(",a,,b,", ','),
            (std::vector<std::string>{"", "a", "", "b", ""}));
}

TEST(SplitTest, EmptyInputYieldsOneEmptyField) {
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
}

TEST(SplitTest, NoSeparator) {
  EXPECT_EQ(Split("abc", ','), (std::vector<std::string>{"abc"}));
}

TEST(JoinTest, RoundTripWithSplit) {
  const std::vector<std::string> parts = {"x", "", "yz"};
  EXPECT_EQ(Split(Join(parts, ","), ','), parts);
}

TEST(JoinTest, EmptyAndSingle) {
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"a"}, ","), "a");
}

TEST(TrimTest, Whitespace) {
  EXPECT_EQ(Trim("  hi \t\n"), "hi");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim("a b"), "a b");
}

TEST(StartsWithTest, Basic) {
  EXPECT_TRUE(StartsWith("--flag", "--"));
  EXPECT_FALSE(StartsWith("-", "--"));
  EXPECT_TRUE(StartsWith("abc", ""));
}

TEST(PadTest, LeftAndRight) {
  EXPECT_EQ(PadLeft("ab", 5), "   ab");
  EXPECT_EQ(PadRight("ab", 5), "ab   ");
  EXPECT_EQ(PadLeft("abcdef", 3), "abcdef");  // never truncates
  EXPECT_EQ(PadRight("abcdef", 3), "abcdef");
}

TEST(FormatDoubleTest, Digits) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(2.0, 0), "2");
  EXPECT_EQ(FormatDouble(-0.5, 1), "-0.5");
}

TEST(ParseIntTest, Valid) {
  long long v = 0;
  EXPECT_TRUE(ParseInt("42", &v));
  EXPECT_EQ(v, 42);
  EXPECT_TRUE(ParseInt("-7", &v));
  EXPECT_EQ(v, -7);
  EXPECT_TRUE(ParseInt("  13 ", &v));
  EXPECT_EQ(v, 13);
}

TEST(ParseIntTest, Invalid) {
  long long v = 0;
  EXPECT_FALSE(ParseInt("", &v));
  EXPECT_FALSE(ParseInt("12x", &v));
  EXPECT_FALSE(ParseInt("x12", &v));
  EXPECT_FALSE(ParseInt("1.5", &v));
  EXPECT_FALSE(ParseInt("999999999999999999999999", &v));  // overflow
}

TEST(ParseDoubleTest, Valid) {
  double v = 0;
  EXPECT_TRUE(ParseDouble("2.5", &v));
  EXPECT_DOUBLE_EQ(v, 2.5);
  EXPECT_TRUE(ParseDouble("-1e3", &v));
  EXPECT_DOUBLE_EQ(v, -1000.0);
}

TEST(ParseDoubleTest, Invalid) {
  double v = 0;
  EXPECT_FALSE(ParseDouble("", &v));
  EXPECT_FALSE(ParseDouble("2.5garbage", &v));
}

}  // namespace
}  // namespace kanon
