#include "data/table.h"

#include "gtest/gtest.h"

namespace kanon {
namespace {

Table SmallTable() {
  Schema schema({"x", "y", "z"});
  Table t(std::move(schema));
  t.AppendStringRow({"a", "b", "c"});
  t.AppendStringRow({"a", "q", "c"});
  t.AppendStringRow({"a", "b", "c"});
  return t;
}

TEST(SchemaTest, AttributeNamesAndLookup) {
  Schema s({"age", "race"});
  EXPECT_EQ(s.num_attributes(), 2u);
  EXPECT_EQ(s.attribute_name(0), "age");
  EXPECT_EQ(s.FindAttribute("race"), 1u);
  EXPECT_EQ(s.FindAttribute("missing"), 2u);  // == num_attributes()
}

TEST(SchemaTest, AddAttribute) {
  Schema s;
  EXPECT_EQ(s.AddAttribute("a"), 0u);
  EXPECT_EQ(s.AddAttribute("b"), 1u);
  EXPECT_EQ(s.num_attributes(), 2u);
}

TEST(SchemaTest, PerColumnDictionariesAreIndependent) {
  Schema s({"x", "y"});
  const ValueCode cx = s.Intern(0, "v");
  const ValueCode cy = s.Intern(1, "other");
  EXPECT_EQ(cx, 0u);
  EXPECT_EQ(cy, 0u);  // independent dictionaries both start at 0
  EXPECT_EQ(s.Decode(0, 0), "v");
  EXPECT_EQ(s.Decode(1, 0), "other");
}

TEST(TableTest, AppendAndAccess) {
  const Table t = SmallTable();
  EXPECT_EQ(t.num_rows(), 3u);
  EXPECT_EQ(t.num_columns(), 3u);
  EXPECT_EQ(t.schema().Decode(1, t.at(1, 1)), "q");
}

TEST(TableTest, RowsEqual) {
  const Table t = SmallTable();
  EXPECT_TRUE(t.RowsEqual(0, 2));
  EXPECT_FALSE(t.RowsEqual(0, 1));
}

TEST(TableTest, RowSpanMatchesAt) {
  const Table t = SmallTable();
  const auto row = t.row(1);
  ASSERT_EQ(row.size(), 3u);
  for (ColId c = 0; c < 3; ++c) {
    EXPECT_EQ(row[c], t.at(1, c));
  }
}

TEST(TableTest, SetCell) {
  Table t = SmallTable();
  t.set(0, 0, kSuppressedCode);
  EXPECT_EQ(t.at(0, 0), kSuppressedCode);
  EXPECT_EQ(t.CountSuppressedCells(), 1u);
}

TEST(TableTest, DecodeRowWithStar) {
  Table t = SmallTable();
  t.set(0, 1, kSuppressedCode);
  EXPECT_EQ(t.DecodeRow(0), (std::vector<std::string>{"a", "*", "c"}));
}

TEST(TableTest, CountSuppressedInitiallyZero) {
  EXPECT_EQ(SmallTable().CountSuppressedCells(), 0u);
}

TEST(TableTest, ToStringContainsHeaderAndValues) {
  const Table t = SmallTable();
  const std::string s = t.ToString();
  EXPECT_NE(s.find("x"), std::string::npos);
  EXPECT_NE(s.find("q"), std::string::npos);
}

TEST(TableTest, ToStringTruncates) {
  Table t = SmallTable();
  const std::string s = t.ToString(1);
  EXPECT_NE(s.find("more rows"), std::string::npos);
}

TEST(TableTest, CopySemanticsIndependent) {
  Table a = SmallTable();
  Table b = a;
  b.set(0, 0, kSuppressedCode);
  EXPECT_EQ(a.CountSuppressedCells(), 0u);
  EXPECT_EQ(b.CountSuppressedCells(), 1u);
}

TEST(TableProjectTest, SelectsAndReordersColumns) {
  const Table t = SmallTable();
  const Table p = t.Project({2, 0});
  EXPECT_EQ(p.num_columns(), 2u);
  EXPECT_EQ(p.num_rows(), t.num_rows());
  EXPECT_EQ(p.schema().attribute_name(0), "z");
  EXPECT_EQ(p.schema().attribute_name(1), "x");
  for (RowId r = 0; r < t.num_rows(); ++r) {
    EXPECT_EQ(p.DecodeRow(r)[0], t.DecodeRow(r)[2]);
    EXPECT_EQ(p.DecodeRow(r)[1], t.DecodeRow(r)[0]);
  }
}

TEST(TableProjectTest, DuplicateColumnsAllowed) {
  const Table t = SmallTable();
  const Table p = t.Project({1, 1});
  EXPECT_EQ(p.num_columns(), 2u);
  EXPECT_EQ(p.DecodeRow(1), (std::vector<std::string>{"q", "q"}));
}

TEST(TableProjectTest, EmptyProjection) {
  const Table t = SmallTable();
  const Table p = t.Project({});
  EXPECT_EQ(p.num_columns(), 0u);
  EXPECT_EQ(p.num_rows(), 3u);
}

TEST(TableProjectTest, PreservesSuppressedCells) {
  Table t = SmallTable();
  t.set(0, 1, kSuppressedCode);
  const Table p = t.Project({1});
  EXPECT_EQ(p.at(0, 0), kSuppressedCode);
  EXPECT_EQ(p.DecodeRow(0)[0], "*");
}

TEST(TableProjectDeathTest, OutOfRangeColumnDies) {
  const Table t = SmallTable();
  EXPECT_DEATH(t.Project({7}), "Check failed");
}

TEST(TableDeathTest, WrongArityDies) {
  Table t = SmallTable();
  EXPECT_DEATH(t.AppendStringRow({"only", "two"}), "Check failed");
}

TEST(TableDeathTest, OutOfRangeAccessDies) {
  const Table t = SmallTable();
  EXPECT_DEATH(t.at(99, 0), "Check failed");
  EXPECT_DEATH(t.at(0, 99), "Check failed");
}

}  // namespace
}  // namespace kanon
