#include "data/dictionary.h"

#include "gtest/gtest.h"

namespace kanon {
namespace {

TEST(DictionaryTest, InternAssignsDenseCodes) {
  Dictionary d;
  EXPECT_EQ(d.Intern("a"), 0u);
  EXPECT_EQ(d.Intern("b"), 1u);
  EXPECT_EQ(d.Intern("c"), 2u);
  EXPECT_EQ(d.size(), 3u);
}

TEST(DictionaryTest, InternIsIdempotent) {
  Dictionary d;
  const ValueCode a = d.Intern("x");
  EXPECT_EQ(d.Intern("x"), a);
  EXPECT_EQ(d.size(), 1u);
}

TEST(DictionaryTest, LookupMissingIsSuppressed) {
  Dictionary d;
  d.Intern("x");
  EXPECT_EQ(d.Lookup("y"), kSuppressedCode);
  EXPECT_EQ(d.Lookup("x"), 0u);
}

TEST(DictionaryTest, Contains) {
  Dictionary d;
  d.Intern("x");
  EXPECT_TRUE(d.Contains("x"));
  EXPECT_FALSE(d.Contains("y"));
}

TEST(DictionaryTest, DecodeRoundTrip) {
  Dictionary d;
  const ValueCode a = d.Intern("alpha");
  const ValueCode b = d.Intern("beta");
  EXPECT_EQ(d.Decode(a), "alpha");
  EXPECT_EQ(d.Decode(b), "beta");
}

TEST(DictionaryTest, DecodeSuppressedIsStar) {
  Dictionary d;
  EXPECT_EQ(d.Decode(kSuppressedCode), "*");
}

TEST(DictionaryTest, ValuesInCodeOrder) {
  Dictionary d;
  d.Intern("z");
  d.Intern("a");
  EXPECT_EQ(d.values(), (std::vector<std::string>{"z", "a"}));
}

TEST(DictionaryTest, EmptyStringIsAValue) {
  Dictionary d;
  const ValueCode c = d.Intern("");
  EXPECT_EQ(d.Decode(c), "");
  EXPECT_TRUE(d.Contains(""));
}

TEST(SchemaDeathTest, DecodeOutOfRangeDies) {
  Dictionary d;
  d.Intern("x");
  EXPECT_DEATH(d.Decode(5), "Check failed");
}

}  // namespace
}  // namespace kanon
