#include "data/generators/adversarial.h"

#include "algo/exact_dp.h"
#include "algo/registry.h"
#include "core/cost.h"
#include "core/distance.h"
#include "gtest/gtest.h"
#include "util/random.h"

namespace kanon {
namespace {

TEST(OneHotTableTest, Structure) {
  const Table t = OneHotTable(6);
  EXPECT_EQ(t.num_rows(), 6u);
  EXPECT_EQ(t.num_columns(), 6u);
  for (RowId a = 0; a < 6; ++a) {
    for (RowId b = a + 1; b < 6; ++b) {
      EXPECT_EQ(RowDistance(t, a, b), 2u);
    }
  }
}

TEST(OneHotTableTest, GroupCostEqualsSizeSquared) {
  const Table t = OneHotTable(8);
  const Group g = {0, 3, 5};
  // 3 rows disagree on their 3 one-hot columns: cost 3*3.
  EXPECT_EQ(AnonCost(t, g), 9u);
  const Group pair = {1, 2};
  EXPECT_EQ(AnonCost(t, pair), 4u);
}

TEST(OneHotTableTest, ExactOptimumIsNTimesK) {
  // Any partition costs sum |S|^2 >= n*k with equality at all-|S|=k.
  const Table t = OneHotTable(8);
  ExactDpAnonymizer exact;
  EXPECT_EQ(exact.Run(t, 2).cost, 16u);
  EXPECT_EQ(exact.Run(t, 4).cost, 32u);
}

TEST(OneHotTableTest, AllAlgorithmsAchieveOptimumForK2) {
  // With uniform pairwise distances every [k,k]-partition is optimal;
  // all algorithms should land on n*k (groups may be up to 2k-1, which
  // costs more — allow the documented slack).
  const Table t = OneHotTable(8);
  for (const std::string name :
       {"ball_cover", "cluster_greedy", "greedy_cover"}) {
    auto algo = MakeAnonymizer(name);
    const auto result = ValidateResult(t, 2, algo->Run(t, 2));
    // Worst valid grouping into [2,3] groups: 3 groups of sizes 3,3,2
    // -> 9+9+4 = 22.
    EXPECT_GE(result.cost, 16u) << name;
    EXPECT_LE(result.cost, 22u) << name;
  }
}

TEST(DecoyClusterTableTest, ShapeAndFlags) {
  Rng rng(1);
  DecoyClusterOptions opt;
  std::vector<bool> is_decoy;
  const Table t = DecoyClusterTable(opt, &rng, &is_decoy);
  const uint32_t expected =
      opt.num_clusters * (opt.cluster_size + opt.decoys_per_cluster);
  EXPECT_EQ(t.num_rows(), expected);
  ASSERT_EQ(is_decoy.size(), expected);
  size_t decoys = 0;
  for (const bool d : is_decoy) {
    if (d) ++decoys;
  }
  EXPECT_EQ(decoys, opt.num_clusters * opt.decoys_per_cluster);
}

TEST(DecoyClusterTableTest, DecoysMatchProbeDivergeElsewhere) {
  Rng rng(2);
  DecoyClusterOptions opt;
  opt.num_clusters = 1;
  opt.cluster_size = 3;
  opt.decoys_per_cluster = 2;
  std::vector<bool> is_decoy;
  const Table t = DecoyClusterTable(opt, &rng, &is_decoy);
  // Row 0 is a genuine center copy; rows 3,4 are decoys.
  for (RowId decoy = 3; decoy <= 4; ++decoy) {
    for (ColId c = 0; c < opt.probe_columns; ++c) {
      EXPECT_EQ(t.at(decoy, c), t.at(0, c));
    }
    for (ColId c = opt.probe_columns; c < opt.num_columns; ++c) {
      EXPECT_NE(t.at(decoy, c), t.at(0, c));
    }
  }
}

TEST(DecoyClusterTableTest, GenuineClusterIsFree) {
  Rng rng(3);
  DecoyClusterOptions opt;
  opt.num_clusters = 2;
  opt.cluster_size = 4;
  opt.decoys_per_cluster = 1;
  std::vector<bool> is_decoy;
  const Table t = DecoyClusterTable(opt, &rng, &is_decoy);
  // Rows 0-3 are identical copies of center 0.
  EXPECT_EQ(AnonCost(t, Group{0, 1, 2, 3}), 0u);
}

TEST(DecoyClusterTableTest, LocalSearchRecoversFromDecoys) {
  Rng rng(4);
  DecoyClusterOptions opt;
  opt.num_clusters = 3;
  opt.cluster_size = 4;
  opt.decoys_per_cluster = 2;
  std::vector<bool> is_decoy;
  const Table t = DecoyClusterTable(opt, &rng, &is_decoy);
  auto plain = MakeAnonymizer("ball_cover");
  auto improved = MakeAnonymizer("ball_cover+local_search");
  const size_t plain_cost = plain->Run(t, 4).cost;
  const size_t improved_cost =
      ValidateResult(t, 4, improved->Run(t, 4)).cost;
  EXPECT_LE(improved_cost, plain_cost);
}

}  // namespace
}  // namespace kanon
