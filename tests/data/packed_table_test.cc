#include "data/packed_table.h"

#include <set>

#include "core/distance.h"
#include "data/generators/uniform.h"
#include "gtest/gtest.h"
#include "util/random.h"

namespace kanon {
namespace {

/// Random table with a sprinkling of pre-suppressed cells, so the
/// suppressed code path is exercised too.
Table MakeTable(RowId n, ColId m, uint64_t seed) {
  Rng rng(seed);
  Table t = UniformTable({.num_rows = n, .num_columns = m, .alphabet = 5},
                         &rng);
  for (RowId r = 0; r < n; ++r) {
    for (ColId c = 0; c < m; ++c) {
      if (rng.Uniform(10) == 0) t.set(r, c, kSuppressedCode);
    }
  }
  return t;
}

TEST(PackedTableTest, MirrorsEveryCell) {
  const Table t = MakeTable(17, 6, 1);
  const PackedTable packed(t);
  ASSERT_EQ(packed.num_rows(), t.num_rows());
  ASSERT_EQ(packed.num_columns(), t.num_columns());
  for (ColId c = 0; c < t.num_columns(); ++c) {
    const std::span<const ValueCode> column = packed.column(c);
    ASSERT_EQ(column.size(), t.num_rows());
    for (RowId r = 0; r < t.num_rows(); ++r) {
      EXPECT_EQ(column[r], t.at(r, c));
      EXPECT_EQ(packed.at(r, c), t.at(r, c));
    }
  }
}

TEST(PackedTableTest, DistinctCountsMatchBruteForce) {
  const Table t = MakeTable(23, 5, 2);
  const PackedTable packed(t);
  for (ColId c = 0; c < t.num_columns(); ++c) {
    std::set<ValueCode> seen;
    for (RowId r = 0; r < t.num_rows(); ++r) seen.insert(t.at(r, c));
    EXPECT_EQ(packed.distinct_count(c), seen.size()) << "column " << c;
    const ColumnView view = packed.view(c);
    EXPECT_EQ(view.distinct, seen.size());
    EXPECT_EQ(view.codes.size(), t.num_rows());
  }
}

TEST(PackedTableTest, AppendRowKeepsMirrorInSync) {
  const Table t = MakeTable(19, 4, 3);
  const PackedTable whole(t);
  PackedTable grown(t.num_columns());
  EXPECT_EQ(grown.num_rows(), 0u);
  for (RowId r = 0; r < t.num_rows(); ++r) {
    grown.AppendRow(t.row(r));
    EXPECT_EQ(grown.num_rows(), r + 1);
  }
  for (ColId c = 0; c < t.num_columns(); ++c) {
    EXPECT_EQ(grown.distinct_count(c), whole.distinct_count(c));
    for (RowId r = 0; r < t.num_rows(); ++r) {
      EXPECT_EQ(grown.at(r, c), whole.at(r, c));
    }
  }
}

TEST(PackedTableTest, RowHammingMatchesRowMajorKernel) {
  const Table t = MakeTable(15, 7, 4);
  const PackedTable packed(t);
  for (RowId a = 0; a < t.num_rows(); ++a) {
    for (RowId b = 0; b < t.num_rows(); ++b) {
      EXPECT_EQ(packed.RowHamming(a, b), RowDistance(t, a, b))
          << "rows " << a << "," << b;
    }
  }
}

TEST(PackedTableTest, EmptyTable) {
  const Table t(Schema({"a", "b"}));
  const PackedTable packed(t);
  EXPECT_EQ(packed.num_rows(), 0u);
  EXPECT_EQ(packed.num_columns(), 2u);
  EXPECT_EQ(packed.distinct_count(0), 0u);
  EXPECT_TRUE(packed.column(1).empty());
}

}  // namespace
}  // namespace kanon
