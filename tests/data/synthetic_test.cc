#include "data/generators/synthetic.h"

#include <set>
#include <string>

#include "data/csv_table.h"
#include "gtest/gtest.h"

/// \file
/// Generator contract for the kanon_gen workload: exact shape, per-column
/// alphabet bounds (cycled), seed determinism, and Zipf skew actually
/// skewing.

namespace kanon {
namespace {

TEST(SyntheticTableTest, ShapeAndAttributeNames) {
  SyntheticTableOptions options;
  options.num_rows = 64;
  options.num_columns = 3;
  const Table table = SyntheticTable(options);
  ASSERT_EQ(table.num_rows(), 64u);
  ASSERT_EQ(table.num_columns(), 3u);
  EXPECT_EQ(table.schema().attribute_name(0), "a0");
  EXPECT_EQ(table.schema().attribute_name(2), "a2");
}

TEST(SyntheticTableTest, AlphabetSizesCycleAcrossColumns) {
  SyntheticTableOptions options;
  options.num_rows = 2000;
  options.num_columns = 5;
  options.alphabet_sizes = {4, 2};  // columns use 4,2,4,2,4
  const Table table = SyntheticTable(options);
  for (ColId c = 0; c < table.num_columns(); ++c) {
    const uint32_t limit = (c % 2 == 0) ? 4 : 2;
    std::set<std::string> seen;
    for (RowId r = 0; r < table.num_rows(); ++r) {
      seen.insert(table.schema().Decode(c, table.at(r, c)));
    }
    EXPECT_LE(seen.size(), limit) << "column " << c;
    // 2000 draws over <= 4 values: every value should appear.
    EXPECT_EQ(seen.size(), limit) << "column " << c;
  }
}

TEST(SyntheticTableTest, DeterministicFromSeed) {
  SyntheticTableOptions options;
  options.num_rows = 128;
  options.seed = 9;
  const std::string a = TableToCsv(SyntheticTable(options));
  const std::string b = TableToCsv(SyntheticTable(options));
  EXPECT_EQ(a, b);
  options.seed = 10;
  EXPECT_NE(a, TableToCsv(SyntheticTable(options)));
}

TEST(SyntheticTableTest, ZipfSkewConcentratesMass) {
  SyntheticTableOptions uniform;
  uniform.num_rows = 4000;
  uniform.num_columns = 1;
  uniform.alphabet_sizes = {16};
  SyntheticTableOptions skewed = uniform;
  skewed.zipf_s = 1.5;

  const auto top_share = [](const Table& table) {
    std::vector<size_t> counts;
    for (RowId r = 0; r < table.num_rows(); ++r) {
      const size_t code = table.at(r, 0);
      if (code >= counts.size()) counts.resize(code + 1);
      ++counts[code];
    }
    size_t top = 0;
    for (const size_t c : counts) top = std::max(top, c);
    return static_cast<double>(top) /
           static_cast<double>(table.num_rows());
  };
  const double uniform_share = top_share(SyntheticTable(uniform));
  const double skewed_share = top_share(SyntheticTable(skewed));
  // Uniform: ~1/16 per value. Zipf 1.5: the head value dominates.
  EXPECT_LT(uniform_share, 0.2);
  EXPECT_GT(skewed_share, 0.3);
}

}  // namespace
}  // namespace kanon
