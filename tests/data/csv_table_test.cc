#include "data/csv_table.h"

#include <cstdio>

#include "gtest/gtest.h"

namespace kanon {
namespace {

TEST(TableFromCsvTest, Basic) {
  std::string error;
  const auto t = TableFromCsv("first,last\nharry,stone\njohn,reyser\n",
                              &error);
  ASSERT_TRUE(t.has_value()) << error;
  EXPECT_EQ(t->num_rows(), 2u);
  EXPECT_EQ(t->num_columns(), 2u);
  EXPECT_EQ(t->schema().attribute_name(0), "first");
  EXPECT_EQ(t->DecodeRow(1), (std::vector<std::string>{"john", "reyser"}));
}

TEST(TableFromCsvTest, StarDecodesAsSuppressed) {
  std::string error;
  const auto t = TableFromCsv("a,b\n*,x\n", &error);
  ASSERT_TRUE(t.has_value()) << error;
  EXPECT_EQ(t->at(0, 0), kSuppressedCode);
  EXPECT_EQ(t->DecodeRow(0), (std::vector<std::string>{"*", "x"}));
}

TEST(TableFromCsvTest, HeaderOnlyIsEmptyTable) {
  std::string error;
  const auto t = TableFromCsv("a,b\n", &error);
  ASSERT_TRUE(t.has_value()) << error;
  EXPECT_EQ(t->num_rows(), 0u);
  EXPECT_EQ(t->num_columns(), 2u);
}

TEST(TableFromCsvTest, EmptyInputFails) {
  std::string error;
  EXPECT_FALSE(TableFromCsv("", &error).has_value());
  EXPECT_NE(error.find("header"), std::string::npos);
}

TEST(TableFromCsvTest, RaggedRowFails) {
  std::string error;
  EXPECT_FALSE(TableFromCsv("a,b\n1\n", &error).has_value());
  EXPECT_NE(error.find("fields"), std::string::npos);
}

TEST(TableFromCsvTest, MalformedCsvFails) {
  std::string error;
  EXPECT_FALSE(TableFromCsv("a,b\n\"unterminated\n", &error).has_value());
}

TEST(TableToCsvTest, RoundTrip) {
  std::string error;
  const std::string csv = "first,last\nharry,stone\n*,*\n";
  const auto t = TableFromCsv(csv, &error);
  ASSERT_TRUE(t.has_value()) << error;
  EXPECT_EQ(TableToCsv(*t), csv);
}

TEST(TableToCsvTest, QuotesSpecialValues) {
  Schema schema({"note"});
  Table t(std::move(schema));
  t.AppendStringRow({"a,b"});
  const std::string csv = TableToCsv(t);
  EXPECT_EQ(csv, "note\n\"a,b\"\n");
  std::string error;
  const auto back = TableFromCsv(csv, &error);
  ASSERT_TRUE(back.has_value()) << error;
  EXPECT_EQ(back->DecodeRow(0)[0], "a,b");
}

TEST(CsvFileTest, SaveAndLoad) {
  Schema schema({"x", "y"});
  Table t(std::move(schema));
  t.AppendStringRow({"1", "2"});
  const std::string path = testing::TempDir() + "/kanon_table_test.csv";
  ASSERT_TRUE(SaveTableCsv(t, path));
  std::string error;
  const auto loaded = LoadTableCsv(path, &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  EXPECT_EQ(loaded->num_rows(), 1u);
  EXPECT_EQ(loaded->DecodeRow(0), (std::vector<std::string>{"1", "2"}));
  std::remove(path.c_str());
}

TEST(CsvFileTest, LoadMissingFails) {
  std::string error;
  EXPECT_FALSE(LoadTableCsv("/no/such/file.csv", &error).has_value());
  EXPECT_NE(error.find("cannot open"), std::string::npos);
}

}  // namespace
}  // namespace kanon
