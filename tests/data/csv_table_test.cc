#include "data/csv_table.h"

#include <cstdio>

#include "gtest/gtest.h"

namespace kanon {
namespace {

TEST(ParseTableCsvTest, Basic) {
  const StatusOr<Table> t =
      ParseTableCsv("first,last\nharry,stone\njohn,reyser\n");
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  EXPECT_EQ(t->num_rows(), 2u);
  EXPECT_EQ(t->num_columns(), 2u);
  EXPECT_EQ(t->schema().attribute_name(0), "first");
  EXPECT_EQ(t->DecodeRow(1), (std::vector<std::string>{"john", "reyser"}));
}

TEST(ParseTableCsvTest, StarDecodesAsSuppressed) {
  const StatusOr<Table> t = ParseTableCsv("a,b\n*,x\n");
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  EXPECT_EQ(t->at(0, 0), kSuppressedCode);
  EXPECT_EQ(t->DecodeRow(0), (std::vector<std::string>{"*", "x"}));
}

TEST(ParseTableCsvTest, HeaderOnlyIsEmptyTable) {
  const StatusOr<Table> t = ParseTableCsv("a,b\n");
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  EXPECT_EQ(t->num_rows(), 0u);
  EXPECT_EQ(t->num_columns(), 2u);
}

TEST(ParseTableCsvTest, EmptyInputFails) {
  const StatusOr<Table> t = ParseTableCsv("");
  ASSERT_FALSE(t.ok());
  EXPECT_EQ(t.status().code(), StatusCode::kParseError);
  EXPECT_NE(t.status().message().find("header"), std::string::npos);
}

TEST(ParseTableCsvTest, RaggedRowFails) {
  const StatusOr<Table> t = ParseTableCsv("a,b\n1\n");
  ASSERT_FALSE(t.ok());
  EXPECT_EQ(t.status().code(), StatusCode::kParseError);
  EXPECT_NE(t.status().message().find("fields"), std::string::npos);
}

TEST(ParseTableCsvTest, MalformedCsvFails) {
  const StatusOr<Table> t = ParseTableCsv("a,b\n\"unterminated\n");
  ASSERT_FALSE(t.ok());
  EXPECT_EQ(t.status().code(), StatusCode::kParseError);
}

TEST(TableToCsvTest, RoundTrip) {
  const std::string csv = "first,last\nharry,stone\n*,*\n";
  const StatusOr<Table> t = ParseTableCsv(csv);
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  EXPECT_EQ(TableToCsv(*t), csv);
}

TEST(TableToCsvTest, QuotesSpecialValues) {
  Schema schema({"note"});
  Table t(std::move(schema));
  t.AppendStringRow({"a,b"});
  const std::string csv = TableToCsv(t);
  EXPECT_EQ(csv, "note\n\"a,b\"\n");
  const StatusOr<Table> back = ParseTableCsv(csv);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->DecodeRow(0)[0], "a,b");
}

TEST(CsvFileTest, WriteAndRead) {
  Schema schema({"x", "y"});
  Table t(std::move(schema));
  t.AppendStringRow({"1", "2"});
  const std::string path = testing::TempDir() + "/kanon_table_test.csv";
  ASSERT_TRUE(WriteTableCsv(t, path).ok());
  const StatusOr<Table> loaded = ReadTableCsv(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->num_rows(), 1u);
  EXPECT_EQ(loaded->DecodeRow(0), (std::vector<std::string>{"1", "2"}));
  std::remove(path.c_str());
}

TEST(CsvFileTest, ReadMissingFails) {
  const StatusOr<Table> t = ReadTableCsv("/no/such/file.csv");
  ASSERT_FALSE(t.ok());
  EXPECT_EQ(t.status().code(), StatusCode::kNotFound);
  EXPECT_NE(t.status().message().find("cannot open"), std::string::npos);
}

}  // namespace
}  // namespace kanon
