#include "data/generators/census.h"
#include "data/generators/clustered.h"
#include "data/generators/medical.h"
#include "data/generators/uniform.h"

#include "core/distance.h"
#include "gtest/gtest.h"
#include "util/random.h"

namespace kanon {
namespace {

TEST(UniformTableTest, ShapeAndAlphabet) {
  Rng rng(1);
  UniformTableOptions opt;
  opt.num_rows = 20;
  opt.num_columns = 5;
  opt.alphabet = 3;
  const Table t = UniformTable(opt, &rng);
  EXPECT_EQ(t.num_rows(), 20u);
  EXPECT_EQ(t.num_columns(), 5u);
  for (RowId r = 0; r < t.num_rows(); ++r) {
    for (ColId c = 0; c < t.num_columns(); ++c) {
      EXPECT_LT(t.at(r, c), 3u);
    }
  }
  for (ColId c = 0; c < t.num_columns(); ++c) {
    EXPECT_EQ(t.schema().dictionary(c).size(), 3u);
  }
}

TEST(UniformTableTest, DeterministicForSeed) {
  Rng rng1(7), rng2(7);
  UniformTableOptions opt;
  const Table a = UniformTable(opt, &rng1);
  const Table b = UniformTable(opt, &rng2);
  ASSERT_EQ(a.num_rows(), b.num_rows());
  for (RowId r = 0; r < a.num_rows(); ++r) {
    EXPECT_EQ(std::vector<ValueCode>(a.row(r).begin(), a.row(r).end()),
              std::vector<ValueCode>(b.row(r).begin(), b.row(r).end()));
  }
}

TEST(UniformTableTest, ZipfSkewsFirstCode) {
  Rng rng(3);
  UniformTableOptions opt;
  opt.num_rows = 300;
  opt.num_columns = 2;
  opt.alphabet = 10;
  opt.zipf_s = 1.5;
  const Table t = UniformTable(opt, &rng);
  size_t zero = 0, last = 0;
  for (RowId r = 0; r < t.num_rows(); ++r) {
    if (t.at(r, 0) == 0) ++zero;
    if (t.at(r, 0) == 9) ++last;
  }
  EXPECT_GT(zero, 3 * (last + 1));
}

TEST(ClusteredTableTest, NoNoiseMakesClusterRowsIdentical) {
  Rng rng(5);
  ClusteredTableOptions opt;
  opt.num_rows = 12;
  opt.num_clusters = 3;
  opt.noise_flips = 0;
  std::vector<uint32_t> center_of_row;
  const Table t = ClusteredTable(opt, &rng, &center_of_row);
  ASSERT_EQ(center_of_row.size(), 12u);
  for (RowId a = 0; a < t.num_rows(); ++a) {
    for (RowId b = 0; b < t.num_rows(); ++b) {
      if (center_of_row[a] == center_of_row[b]) {
        EXPECT_TRUE(t.RowsEqual(a, b));
      }
    }
  }
}

TEST(ClusteredTableTest, NoiseBoundsDistanceToCenterMate) {
  Rng rng(9);
  ClusteredTableOptions opt;
  opt.num_rows = 20;
  opt.num_columns = 8;
  opt.num_clusters = 4;
  opt.noise_flips = 2;
  std::vector<uint32_t> center_of_row;
  const Table t = ClusteredTable(opt, &rng, &center_of_row);
  // Two rows of the same cluster differ in at most 2 * noise_flips coords.
  for (RowId a = 0; a < t.num_rows(); ++a) {
    for (RowId b = a + 1; b < t.num_rows(); ++b) {
      if (center_of_row[a] == center_of_row[b]) {
        EXPECT_LE(RowDistance(t, a, b), 4u);
      }
    }
  }
}

TEST(ClusteredTableTest, RoundRobinClusterSizes) {
  Rng rng(11);
  ClusteredTableOptions opt;
  opt.num_rows = 10;
  opt.num_clusters = 3;
  std::vector<uint32_t> center_of_row;
  ClusteredTable(opt, &rng, &center_of_row);
  std::vector<int> sizes(3, 0);
  for (const uint32_t c : center_of_row) ++sizes[c];
  // 10 rows over 3 clusters round-robin: sizes 4,3,3.
  EXPECT_EQ(sizes[0], 4);
  EXPECT_EQ(sizes[1], 3);
  EXPECT_EQ(sizes[2], 3);
}

TEST(CensusTableTest, SchemaShape) {
  Rng rng(13);
  CensusTableOptions opt;
  opt.num_rows = 50;
  const Table t = CensusTable(opt, &rng);
  EXPECT_EQ(t.num_rows(), 50u);
  EXPECT_EQ(t.num_columns(), 8u);
  EXPECT_EQ(t.schema().attribute_name(0), "age_band");
  EXPECT_EQ(t.schema().FindAttribute("sex"), 6u);
  EXPECT_EQ(t.schema().dictionary(6).size(), 2u);  // male/female
}

TEST(CensusTableTest, SkewedCountryMarginal) {
  Rng rng(17);
  CensusTableOptions opt;
  opt.num_rows = 500;
  const Table t = CensusTable(opt, &rng);
  const ColId country = t.schema().FindAttribute("country");
  const ValueCode us = t.schema().dictionary(country).Lookup("us");
  size_t us_count = 0;
  for (RowId r = 0; r < t.num_rows(); ++r) {
    if (t.at(r, country) == us) ++us_count;
  }
  EXPECT_GT(us_count, 300u);  // ~83% expected
}

TEST(CensusTableTest, CorrelationLinksEducationToOccupation) {
  Rng rng(19);
  CensusTableOptions opt;
  opt.num_rows = 600;
  opt.correlation = 1.0;
  const Table t = CensusTable(opt, &rng);
  const ColId edu = t.schema().FindAttribute("education");
  const ColId occ = t.schema().FindAttribute("occupation");
  const auto& occ_dict = t.schema().dictionary(occ);
  const ValueCode exec = occ_dict.Lookup("exec");
  const ValueCode prof = occ_dict.Lookup("prof");
  const ValueCode tech = occ_dict.Lookup("tech");
  for (RowId r = 0; r < t.num_rows(); ++r) {
    if (t.at(r, edu) >= 4) {  // bachelors+
      const ValueCode o = t.at(r, occ);
      EXPECT_TRUE(o == exec || o == prof || o == tech);
    }
  }
}

TEST(MedicalTableTest, ShapeAndPools) {
  Rng rng(23);
  MedicalTableOptions opt;
  opt.num_rows = 30;
  opt.name_pool = 4;
  const Table t = MedicalTable(opt, &rng);
  EXPECT_EQ(t.num_rows(), 30u);
  EXPECT_EQ(t.num_columns(), 5u);
  EXPECT_LE(t.schema().dictionary(0).size(), 4u);
  EXPECT_LE(t.schema().dictionary(1).size(), 4u);
}

TEST(PaperIntroTableTest, MatchesSectionOneExample) {
  const Table t = PaperIntroTable();
  ASSERT_EQ(t.num_rows(), 4u);
  ASSERT_EQ(t.num_columns(), 4u);
  EXPECT_EQ(t.DecodeRow(0),
            (std::vector<std::string>{"harry", "stone", "34", "afr-am"}));
  EXPECT_EQ(t.DecodeRow(3),
            (std::vector<std::string>{"john", "ramos", "22", "hisp"}));
}

}  // namespace
}  // namespace kanon
