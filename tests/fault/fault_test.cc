#include "fault/fault.h"

#include <vector>

#include "gtest/gtest.h"
#include "util/fingerprint.h"

/// \file
/// The fault-injection registry's contract: FireDecision is a pure
/// function of (seed, site, hit index); disarmed sites are inert and
/// count nothing; armed sites honor probability / first:n overrides;
/// re-arming the same plan replays the identical fire sequence; and
/// ParseFaultPlan round-trips the compact spec syntax with typed errors.

namespace kanon {
namespace {

TEST(FaultDecisionTest, PureFunctionOfSeedSiteAndHit) {
  const uint64_t site_fp = Fingerprint("some.site");
  for (uint64_t hit = 0; hit < 64; ++hit) {
    EXPECT_EQ(FaultRegistry::FireDecision(42, site_fp, hit, 0.3),
              FaultRegistry::FireDecision(42, site_fp, hit, 0.3));
  }
  // Degenerate probabilities short-circuit.
  EXPECT_FALSE(FaultRegistry::FireDecision(42, site_fp, 0, 0.0));
  EXPECT_TRUE(FaultRegistry::FireDecision(42, site_fp, 0, 1.0));
}

TEST(FaultDecisionTest, SeedAndSiteChangeTheSequence) {
  const uint64_t fp_a = Fingerprint("site.a");
  const uint64_t fp_b = Fingerprint("site.b");
  int seed_diffs = 0;
  int site_diffs = 0;
  for (uint64_t hit = 0; hit < 256; ++hit) {
    if (FaultRegistry::FireDecision(1, fp_a, hit, 0.5) !=
        FaultRegistry::FireDecision(2, fp_a, hit, 0.5)) {
      ++seed_diffs;
    }
    if (FaultRegistry::FireDecision(1, fp_a, hit, 0.5) !=
        FaultRegistry::FireDecision(1, fp_b, hit, 0.5)) {
      ++site_diffs;
    }
  }
  EXPECT_GT(seed_diffs, 0);
  EXPECT_GT(site_diffs, 0);
}

TEST(FaultDecisionTest, FiresAtRoughlyTheRequestedRate) {
  const uint64_t site_fp = Fingerprint("rate.site");
  int fires = 0;
  const int trials = 4000;
  for (uint64_t hit = 0; hit < trials; ++hit) {
    if (FaultRegistry::FireDecision(7, site_fp, hit, 0.25)) ++fires;
  }
  EXPECT_GT(fires, trials / 8);      // > 12.5%
  EXPECT_LT(fires, trials * 3 / 8);  // < 37.5%
}

TEST(FaultRegistryTest, DisarmedPointIsInertAndCountsNothing) {
  FaultRegistry::Instance().Disarm();
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(KANON_FAULT_POINT("test.inert"));
  }
  for (const FaultSiteSnapshot& site :
       FaultRegistry::Instance().Snapshot()) {
    if (site.name == "test.inert") {
      EXPECT_EQ(site.fires, 0u);
      return;  // registered (the macro's static ran) but never armed
    }
  }
  FAIL() << "site test.inert was not registered";
}

TEST(FaultRegistryTest, ProbabilityOneAlwaysFiresProbabilityZeroNever) {
  FaultPlan plan;
  plan.seed = 3;
  plan.sites.push_back({.site = "test.always", .probability = 1.0});
  plan.sites.push_back({.site = "test.never", .probability = 0.0});
  ScopedFaultInjection injection(plan);
  for (int i = 0; i < 50; ++i) {
    EXPECT_TRUE(KANON_FAULT_POINT("test.always"));
    EXPECT_FALSE(KANON_FAULT_POINT("test.never"));
  }
}

TEST(FaultRegistryTest, FirstNFiresExactlyTheFirstNHits) {
  FaultPlan plan;
  plan.seed = 4;
  plan.sites.push_back({.site = "test.first", .first_n = 3});
  ScopedFaultInjection injection(plan);
  int fires = 0;
  for (int i = 0; i < 20; ++i) {
    if (KANON_FAULT_POINT("test.first")) ++fires;
    // The first three hits fire, later ones never do.
    EXPECT_EQ(fires, i < 3 ? i + 1 : 3);
  }
}

TEST(FaultRegistryTest, ReArmingTheSamePlanReplaysTheSameSequence) {
  FaultPlan plan;
  plan.seed = 99;
  plan.sites.push_back({.site = "test.replay", .probability = 0.5});

  std::vector<bool> first_run;
  {
    ScopedFaultInjection injection(plan);
    for (int i = 0; i < 200; ++i) {
      first_run.push_back(KANON_FAULT_POINT("test.replay"));
    }
  }
  std::vector<bool> second_run;
  {
    ScopedFaultInjection injection(plan);  // Arm resets hit counters
    for (int i = 0; i < 200; ++i) {
      second_run.push_back(KANON_FAULT_POINT("test.replay"));
    }
  }
  EXPECT_EQ(first_run, second_run);

  plan.seed = 100;
  std::vector<bool> other_seed;
  {
    ScopedFaultInjection injection(plan);
    for (int i = 0; i < 200; ++i) {
      other_seed.push_back(KANON_FAULT_POINT("test.replay"));
    }
  }
  EXPECT_NE(first_run, other_seed);
}

TEST(FaultRegistryTest, ScopedInjectionDisarmsOnScopeExit) {
  EXPECT_FALSE(FaultRegistry::Armed());
  {
    FaultPlan plan;
    plan.default_probability = 1.0;
    ScopedFaultInjection injection(plan);
    EXPECT_TRUE(FaultRegistry::Armed());
    EXPECT_TRUE(KANON_FAULT_POINT("test.scoped"));
  }
  EXPECT_FALSE(FaultRegistry::Armed());
  EXPECT_FALSE(KANON_FAULT_POINT("test.scoped"));
}

TEST(FaultRegistryTest, SnapshotTracksHitsAndFires) {
  FaultPlan plan;
  plan.seed = 5;
  plan.sites.push_back({.site = "test.counted", .first_n = 2});
  ScopedFaultInjection injection(plan);
  for (int i = 0; i < 10; ++i) (void)KANON_FAULT_POINT("test.counted");

  bool found = false;
  for (const FaultSiteSnapshot& site :
       FaultRegistry::Instance().Snapshot()) {
    if (site.name != "test.counted") continue;
    found = true;
    EXPECT_EQ(site.hits, 10u);
    EXPECT_EQ(site.fires, 2u);
    EXPECT_EQ(site.first_n, 2u);
  }
  EXPECT_TRUE(found);
  EXPECT_GE(FaultRegistry::Instance().TotalFires(), 2u);
}

TEST(FaultPlanTest, ParsesSeedDefaultAndSiteOverrides) {
  const StatusOr<FaultPlan> plan = ParseFaultPlan(
      "seed=42 p=0.01 worker.dispatch=0.5 exact_dp.alloc=first:2");
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_EQ(plan->seed, 42u);
  EXPECT_DOUBLE_EQ(plan->default_probability, 0.01);
  ASSERT_EQ(plan->sites.size(), 2u);
  EXPECT_EQ(plan->sites[0].site, "worker.dispatch");
  EXPECT_DOUBLE_EQ(plan->sites[0].probability, 0.5);
  EXPECT_EQ(plan->sites[0].first_n, 0u);
  EXPECT_EQ(plan->sites[1].site, "exact_dp.alloc");
  EXPECT_EQ(plan->sites[1].first_n, 2u);
}

TEST(FaultPlanTest, EmptySpecIsAnEmptyPlan) {
  const StatusOr<FaultPlan> plan = ParseFaultPlan("   ");
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->seed, 0u);
  EXPECT_DOUBLE_EQ(plan->default_probability, 0.0);
  EXPECT_TRUE(plan->sites.empty());
}

TEST(FaultPlanTest, RejectsMalformedSpecsWithInvalidArgument) {
  for (const char* bad :
       {"novalue", "=0.5", "seed=-1", "seed=abc", "p=1.5", "p=x",
        "site.a=2.0", "site.a=first:0", "site.a=first:x"}) {
    const StatusOr<FaultPlan> plan = ParseFaultPlan(bad);
    EXPECT_FALSE(plan.ok()) << "spec '" << bad << "' should not parse";
    if (!plan.ok()) {
      EXPECT_EQ(plan.status().code(), StatusCode::kInvalidArgument) << bad;
    }
  }
}

}  // namespace
}  // namespace kanon
