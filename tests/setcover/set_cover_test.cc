#include "setcover/set_cover.h"

#include <cmath>
#include <set>

#include "gtest/gtest.h"
#include "util/random.h"

namespace kanon {
namespace {

SetCoverResult RunCover(size_t n, std::vector<std::vector<uint32_t>> sets,
                   std::vector<double> weights) {
  const VectorSetFamily family(n, std::move(sets), std::move(weights));
  return GreedySetCover(family);
}

std::set<uint32_t> CoveredBy(const VectorSetFamily& family,
                             const SetCoverResult& result) {
  std::set<uint32_t> covered;
  for (const size_t s : result.chosen) {
    for (const uint32_t e : family.Members(s)) covered.insert(e);
  }
  return covered;
}

TEST(GreedySetCoverTest, SingleSetCoversAll) {
  const auto result = RunCover(3, {{0, 1, 2}}, {5.0});
  EXPECT_TRUE(result.complete);
  EXPECT_EQ(result.chosen, std::vector<size_t>{0});
  EXPECT_DOUBLE_EQ(result.total_weight, 5.0);
}

TEST(GreedySetCoverTest, PrefersCheaperPerElement) {
  // Set 0 covers {0,1} at weight 2 (ratio 1); set 1 covers {0} at weight
  // 0.5 then {1} must come from somewhere. Classic greedy picks by ratio.
  const auto result =
      RunCover(2, {{0, 1}, {0}, {1}}, {2.0, 0.5, 0.5});
  EXPECT_TRUE(result.complete);
  // Ratios: set0 = 1.0, set1 = 0.5, set2 = 0.5 -> picks 1 then 2.
  EXPECT_EQ(result.chosen, (std::vector<size_t>{1, 2}));
  EXPECT_DOUBLE_EQ(result.total_weight, 1.0);
}

TEST(GreedySetCoverTest, RatioUpdatesAfterCoverage) {
  // After picking {0,1,2} (ratio 1), set {2,3} has only one fresh
  // element so its effective ratio doubles.
  const auto result =
      RunCover(4, {{0, 1, 2}, {2, 3}, {3}}, {3.0, 2.4, 1.3});
  EXPECT_TRUE(result.complete);
  // First pick: set0 (ratio 1.0 vs 1.2 vs 1.3). Then set1's fresh ratio
  // is 2.4, set2's is 1.3 -> set2.
  EXPECT_EQ(result.chosen, (std::vector<size_t>{0, 2}));
}

TEST(GreedySetCoverTest, ZeroWeightSetsFirst) {
  const auto result = RunCover(3, {{0}, {1, 2}, {0, 1, 2}}, {0.0, 0.0, 9.0});
  EXPECT_TRUE(result.complete);
  EXPECT_DOUBLE_EQ(result.total_weight, 0.0);
}

TEST(GreedySetCoverTest, IncompleteWhenFamilyLacksElement) {
  const auto result = RunCover(3, {{0, 1}}, {1.0});
  EXPECT_FALSE(result.complete);
  EXPECT_EQ(result.chosen.size(), 1u);
}

TEST(GreedySetCoverTest, EmptyUniverseTriviallyComplete) {
  const auto result = RunCover(0, {}, {});
  EXPECT_TRUE(result.complete);
  EXPECT_TRUE(result.chosen.empty());
}

TEST(GreedySetCoverTest, DeterministicTieBreakTowardLowerIndex) {
  const auto result = RunCover(2, {{0, 1}, {0, 1}}, {1.0, 1.0});
  EXPECT_EQ(result.chosen, std::vector<size_t>{0});
}

TEST(GreedySetCoverTest, PickRatiosNonDecreasing) {
  Rng rng(42);
  const size_t n = 40;
  std::vector<std::vector<uint32_t>> sets;
  std::vector<double> weights;
  for (int s = 0; s < 120; ++s) {
    const uint32_t size = 1 + rng.Uniform(6);
    std::vector<uint32_t> members = rng.SampleWithoutReplacement(n, size);
    sets.push_back(std::move(members));
    weights.push_back(rng.UniformDouble() * 10.0);
  }
  // Ensure coverage.
  for (uint32_t e = 0; e < n; ++e) {
    sets.push_back({e});
    weights.push_back(20.0);
  }
  const VectorSetFamily family(n, sets, weights);
  const auto result = GreedySetCover(family);
  ASSERT_TRUE(result.complete);
  for (size_t i = 1; i < result.pick_ratios.size(); ++i) {
    // Classic greedy invariant: the chosen ratio sequence is
    // non-decreasing (up to FP noise).
    EXPECT_LE(result.pick_ratios[i - 1], result.pick_ratios[i] + 1e-9);
  }
  EXPECT_EQ(CoveredBy(family, result).size(), n);
}

TEST(GreedySetCoverTest, LogNApproximationOnRandomInstances) {
  // Compare greedy weight against the trivially-known optimal on planted
  // instances: universe partitioned into q blocks, each with one cheap
  // covering set (weight 1); OPT = q. Distractor sets are expensive.
  Rng rng(7);
  const size_t q = 8, block = 5, n = q * block;
  std::vector<std::vector<uint32_t>> sets;
  std::vector<double> weights;
  for (size_t b = 0; b < q; ++b) {
    std::vector<uint32_t> members;
    for (size_t i = 0; i < block; ++i) {
      members.push_back(static_cast<uint32_t>(b * block + i));
    }
    sets.push_back(std::move(members));
    weights.push_back(1.0);
  }
  for (int s = 0; s < 60; ++s) {
    sets.push_back(rng.SampleWithoutReplacement(n, 1 + rng.Uniform(10)));
    weights.push_back(5.0 + rng.UniformDouble() * 10.0);
  }
  const VectorSetFamily family(n, sets, weights);
  const auto result = GreedySetCover(family);
  ASSERT_TRUE(result.complete);
  const double h_bound = 1.0 + std::log(static_cast<double>(block));
  EXPECT_LE(result.total_weight, q * h_bound + 1e-9);
}

TEST(VectorSetFamilyDeathTest, OutOfRangeElementDies) {
  EXPECT_DEATH(VectorSetFamily(2, {{0, 5}}, {1.0}), "Check failed");
}

TEST(VectorSetFamilyDeathTest, NegativeWeightDies) {
  EXPECT_DEATH(VectorSetFamily(2, {{0}}, {-1.0}), "Check failed");
}

TEST(VectorSetFamilyDeathTest, SizeMismatchDies) {
  EXPECT_DEATH(VectorSetFamily(2, {{0}}, {1.0, 2.0}), "Check failed");
}

}  // namespace
}  // namespace kanon
