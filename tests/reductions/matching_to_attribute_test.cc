#include "reductions/matching_to_attribute.h"

#include "algo/attribute_exact.h"
#include "core/anonymity.h"
#include "gtest/gtest.h"
#include "hypergraph/generators.h"
#include "hypergraph/matching.h"
#include "util/random.h"

namespace kanon {
namespace {

TEST(BuildAttributeInstanceTest, BinaryIncidence) {
  Hypergraph h(6, 3);
  h.AddEdge({0, 1, 2});
  h.AddEdge({3, 4, 5});
  const Table t = BuildAttributeInstance(h);
  EXPECT_EQ(t.num_rows(), 6u);
  EXPECT_EQ(t.num_columns(), 2u);
  EXPECT_EQ(t.DecodeRow(0), (std::vector<std::string>{"1", "0"}));
  EXPECT_EQ(t.DecodeRow(4), (std::vector<std::string>{"0", "1"}));
  for (ColId c = 0; c < t.num_columns(); ++c) {
    EXPECT_LE(t.schema().dictionary(c).size(), 2u);  // binary alphabet
  }
}

TEST(BuildAttributeInstanceTest, EachColumnHasExactlyKOnes) {
  Rng rng(1);
  const Hypergraph h = PlantedMatchingHypergraph(
      {.num_vertices = 12, .k = 3, .extra_edges = 5}, &rng);
  const Table t = BuildAttributeInstance(h);
  for (ColId j = 0; j < t.num_columns(); ++j) {
    const ValueCode one = t.schema().dictionary(j).Lookup("1");
    size_t ones = 0;
    for (RowId r = 0; r < t.num_rows(); ++r) {
      if (t.at(r, j) == one) ++ones;
    }
    EXPECT_EQ(ones, 3u);
  }
}

TEST(MatchingToSuppressedColumnsTest, ForwardDirection) {
  Hypergraph h(6, 3);
  h.AddEdge({0, 1, 2});
  h.AddEdge({0, 1, 3});
  h.AddEdge({3, 4, 5});
  const Table t = BuildAttributeInstance(h);
  const std::vector<ColId> suppressed =
      MatchingToSuppressedColumns(h, {0, 2});
  EXPECT_EQ(suppressed, std::vector<ColId>{1});
  EXPECT_EQ(suppressed.size(), AttributeHardnessThreshold(h));
  // Keeping columns {0, 2} must be 3-anonymous.
  EXPECT_TRUE(KeptSetFeasible(t, 0b101, 3));
}

TEST(MatchingToSuppressedColumnsTest, RoundTrip) {
  Rng rng(2);
  const Hypergraph h = PlantedMatchingHypergraph(
      {.num_vertices = 9, .k = 3, .extra_edges = 4}, &rng);
  const Table t = BuildAttributeInstance(h);
  const auto matching = FindPerfectMatching(h);
  ASSERT_TRUE(matching.has_value());
  const auto suppressed = MatchingToSuppressedColumns(h, *matching);
  const auto extracted = ExtractMatchingFromColumns(h, t, suppressed);
  ASSERT_TRUE(extracted.has_value());
  EXPECT_TRUE(IsPerfectMatching(h, *extracted));
}

TEST(ExtractMatchingFromColumnsTest, RejectsTooManySuppressed) {
  Hypergraph h(6, 3);
  h.AddEdge({0, 1, 2});
  h.AddEdge({3, 4, 5});
  h.AddEdge({1, 2, 3});
  const Table t = BuildAttributeInstance(h);
  // Threshold is 3 - 2 = 1; suppressing two columns is over budget.
  EXPECT_FALSE(
      ExtractMatchingFromColumns(h, t, {0, 1}).has_value());
}

TEST(ExtractMatchingFromColumnsTest, RejectsInfeasibleKeptSet) {
  Hypergraph h(6, 3);
  h.AddEdge({0, 1, 2});
  h.AddEdge({1, 2, 3});  // overlaps edge 0
  h.AddEdge({3, 4, 5});
  const Table t = BuildAttributeInstance(h);
  // Suppressing only column 2 keeps overlapping edges 0,1 -> projection
  // is not 3-anonymous.
  EXPECT_FALSE(ExtractMatchingFromColumns(h, t, {2}).has_value());
}

// Theorem 3.2, both directions, via the exact attribute solver.
class Theorem32Test : public ::testing::TestWithParam<uint64_t> {};

TEST_P(Theorem32Test, YesInstancesMeetThreshold) {
  Rng rng(GetParam());
  const Hypergraph h = PlantedMatchingHypergraph(
      {.num_vertices = 9, .k = 3, .extra_edges = 4}, &rng);
  const Table t = BuildAttributeInstance(h);
  ExactAttributeAnonymizer exact;
  const auto result = exact.Solve(t, 3);
  EXPECT_EQ(result.num_suppressed(), AttributeHardnessThreshold(h));
  const auto extracted =
      ExtractMatchingFromColumns(h, t, result.suppressed);
  ASSERT_TRUE(extracted.has_value());
  EXPECT_TRUE(IsPerfectMatching(h, *extracted));
}

INSTANTIATE_TEST_SUITE_P(Seeds, Theorem32Test,
                         ::testing::Range<uint64_t>(1, 9));

class Theorem32NoTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(Theorem32NoTest, NoInstancesExceedThreshold) {
  Rng rng(GetParam());
  const Hypergraph h = MatchingFreeHypergraph(9, 3, 7, &rng);
  ASSERT_FALSE(HasPerfectMatching(h));
  const Table t = BuildAttributeInstance(h);
  ExactAttributeAnonymizer exact;
  EXPECT_GT(exact.Solve(t, 3).num_suppressed(),
            AttributeHardnessThreshold(h));
}

INSTANTIATE_TEST_SUITE_P(Seeds, Theorem32NoTest,
                         ::testing::Range<uint64_t>(1, 9));

TEST(Theorem32Test, WorksForKFour) {
  Rng rng(55);
  const Hypergraph h = PlantedMatchingHypergraph(
      {.num_vertices = 8, .k = 4, .extra_edges = 3}, &rng);
  const Table t = BuildAttributeInstance(h);
  ExactAttributeAnonymizer exact;
  EXPECT_EQ(exact.Solve(t, 4).num_suppressed(),
            AttributeHardnessThreshold(h));
}

}  // namespace
}  // namespace kanon
