#include "reductions/matching_to_kanon.h"

#include "algo/exact_dp.h"
#include "core/anonymity.h"
#include "gtest/gtest.h"
#include "hypergraph/generators.h"
#include "hypergraph/matching.h"
#include "util/random.h"

namespace kanon {
namespace {

TEST(BuildKAnonInstanceTest, ShapeAndAlphabet) {
  Hypergraph h(6, 3);
  h.AddEdge({0, 1, 2});
  h.AddEdge({3, 4, 5});
  h.AddEdge({0, 3, 4});
  const Table t = BuildKAnonInstance(h);
  EXPECT_EQ(t.num_rows(), 6u);
  EXPECT_EQ(t.num_columns(), 3u);
  // Row 0 is on edges 0 and 2: "0" there, filler "1" on edge 1.
  EXPECT_EQ(t.DecodeRow(0), (std::vector<std::string>{"0", "1", "0"}));
  // Row 5 (vertex 5) lies on edge 1 only; filler is "6" elsewhere.
  EXPECT_EQ(t.DecodeRow(5), (std::vector<std::string>{"6", "0", "6"}));
}

TEST(BuildKAnonInstanceTest, RowsAgreeOnlyOnSharedEdges) {
  Rng rng(1);
  const Hypergraph h = PlantedMatchingHypergraph(
      {.num_vertices = 9, .k = 3, .extra_edges = 4}, &rng);
  const Table t = BuildKAnonInstance(h);
  for (RowId a = 0; a < t.num_rows(); ++a) {
    for (RowId b = a + 1; b < t.num_rows(); ++b) {
      for (ColId j = 0; j < t.num_columns(); ++j) {
        if (t.at(a, j) == t.at(b, j)) {
          EXPECT_TRUE(h.Incident(a, j) && h.Incident(b, j));
        }
      }
    }
  }
}

TEST(MatchingToSuppressorTest, ForwardDirection) {
  Hypergraph h(6, 3);
  h.AddEdge({0, 1, 2});
  h.AddEdge({3, 4, 5});
  h.AddEdge({0, 3, 4});
  const Table t = BuildKAnonInstance(h);
  const Suppressor s = MatchingToSuppressor(h, {0, 1});
  EXPECT_EQ(s.Stars(), KAnonHardnessThreshold(h));  // 6 * 2 = 12
  EXPECT_TRUE(IsKAnonymizer(s, t, 3));
}

TEST(MatchingToSuppressorTest, RoundTripThroughExtraction) {
  Rng rng(2);
  const Hypergraph h = PlantedMatchingHypergraph(
      {.num_vertices = 12, .k = 3, .extra_edges = 5}, &rng);
  const Table t = BuildKAnonInstance(h);
  const auto matching = FindPerfectMatching(h);
  ASSERT_TRUE(matching.has_value());
  const Suppressor s = MatchingToSuppressor(h, *matching);
  const auto extracted = ExtractMatching(h, t, s);
  ASSERT_TRUE(extracted.has_value());
  EXPECT_TRUE(IsPerfectMatching(h, *extracted));
}

TEST(ExtractMatchingTest, RejectsOverBudgetSuppressor) {
  Hypergraph h(6, 3);
  h.AddEdge({0, 1, 2});
  h.AddEdge({3, 4, 5});
  const Table t = BuildKAnonInstance(h);
  Suppressor all(t.num_rows(), t.num_columns());
  for (RowId r = 0; r < t.num_rows(); ++r) {
    for (ColId c = 0; c < t.num_columns(); ++c) all.Suppress(r, c);
  }
  // n*m = 12 stars > threshold n(m-1) = 6.
  EXPECT_FALSE(ExtractMatching(h, t, all).has_value());
}

TEST(ExtractMatchingTest, RejectsNonAnonymizer) {
  Hypergraph h(6, 3);
  h.AddEdge({0, 1, 2});
  h.AddEdge({3, 4, 5});
  const Table t = BuildKAnonInstance(h);
  const Suppressor identity(t.num_rows(), t.num_columns());
  EXPECT_FALSE(ExtractMatching(h, t, identity).has_value());
}

// Theorem 3.1, both directions, via the exact solver:
//   PM exists      => OPT == n(m-1)
//   PM absent      => OPT >  n(m-1)
class Theorem31Test : public ::testing::TestWithParam<uint64_t> {};

TEST_P(Theorem31Test, YesInstancesMeetThresholdExactly) {
  Rng rng(GetParam());
  const Hypergraph h = PlantedMatchingHypergraph(
      {.num_vertices = 9, .k = 3, .extra_edges = 3}, &rng);
  const Table t = BuildKAnonInstance(h);
  ExactDpAnonymizer exact;
  const auto result = exact.Run(t, 3);
  EXPECT_EQ(result.cost, KAnonHardnessThreshold(h));
  // And the optimal anonymizer encodes a perfect matching.
  const auto extracted = ExtractMatching(h, t, result.MakeSuppressor(t));
  ASSERT_TRUE(extracted.has_value());
  EXPECT_TRUE(IsPerfectMatching(h, *extracted));
}

INSTANTIATE_TEST_SUITE_P(Seeds, Theorem31Test,
                         ::testing::Range<uint64_t>(1, 9));

class Theorem31NoTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(Theorem31NoTest, NoInstancesExceedThreshold) {
  Rng rng(GetParam());
  const Hypergraph h = MatchingFreeHypergraph(9, 3, 6, &rng);
  ASSERT_FALSE(HasPerfectMatching(h));
  const Table t = BuildKAnonInstance(h);
  ExactDpAnonymizer exact;
  EXPECT_GT(exact.Run(t, 3).cost, KAnonHardnessThreshold(h));
}

INSTANTIATE_TEST_SUITE_P(Seeds, Theorem31NoTest,
                         ::testing::Range<uint64_t>(1, 9));

TEST(Theorem31Test, WorksForKFive) {
  Rng rng(88);
  const Hypergraph h = PlantedMatchingHypergraph(
      {.num_vertices = 10, .k = 5, .extra_edges = 2}, &rng);
  const Table t = BuildKAnonInstance(h);
  ExactDpAnonymizer exact;
  const auto result = exact.Run(t, 5);
  EXPECT_EQ(result.cost, KAnonHardnessThreshold(h));
  const auto extracted = ExtractMatching(h, t, result.MakeSuppressor(t));
  ASSERT_TRUE(extracted.has_value());
  EXPECT_TRUE(IsPerfectMatching(h, *extracted));
}

TEST(Theorem31Test, WorksForKFour) {
  Rng rng(77);
  const Hypergraph h = PlantedMatchingHypergraph(
      {.num_vertices = 8, .k = 4, .extra_edges = 2}, &rng);
  const Table t = BuildKAnonInstance(h);
  ExactDpAnonymizer exact;
  EXPECT_EQ(exact.Run(t, 4).cost, KAnonHardnessThreshold(h));
}

}  // namespace
}  // namespace kanon
