#include "coreset/sampler.h"

#include <algorithm>
#include <numeric>
#include <vector>

#include "data/generators/synthetic.h"
#include "fault/fault.h"
#include "gtest/gtest.h"
#include "util/run_context.h"

/// \file
/// Sampler-layer contract: deterministic weighted samples whose integer
/// weights always sum to exactly n, typed declines on cancellation /
/// memory budget / injected faults, and the resolved-size clamps the
/// wrapper relies on to pick the direct path.

namespace kanon {
namespace {

Table SmallTable(uint64_t rows, uint64_t seed = 7) {
  SyntheticTableOptions options;
  options.num_rows = rows;
  options.num_columns = 4;
  options.seed = seed;
  return SyntheticTable(options);
}

void CheckSampleInvariants(const CoresetSample& sample, size_t n,
                           size_t max_rows) {
  ASSERT_FALSE(sample.rows.empty());
  ASSERT_EQ(sample.rows.size(), sample.weights.size());
  ASSERT_LE(sample.rows.size(), max_rows);
  size_t total = 0;
  for (size_t i = 0; i < sample.rows.size(); ++i) {
    ASSERT_LT(sample.rows[i], n);
    if (i > 0) ASSERT_LT(sample.rows[i - 1], sample.rows[i]);
    ASSERT_GE(sample.weights[i], 1u);
    total += sample.weights[i];
  }
  EXPECT_EQ(total, n);
}

TEST(ResolveSampleSizeTest, AppliesRateFloorCapAndClamp) {
  CoresetOptions options;
  // Default rate 0.125, cap 2048: big tables hit the cap.
  EXPECT_EQ(ResolveSampleSize(1000000, 5, options), 2048u);
  // Mid-size tables follow the rate.
  EXPECT_EQ(ResolveSampleSize(8000, 5, options), 1000u);
  // The min_sample / 3k floor wins over the rate...
  EXPECT_EQ(ResolveSampleSize(200, 5, options), 32u);
  EXPECT_EQ(ResolveSampleSize(200, 20, options), 60u);
  // ...and everything clamps to n, which signals "solve directly".
  EXPECT_EQ(ResolveSampleSize(20, 5, options), 20u);
  options.sample_rate = 1.0;
  EXPECT_EQ(ResolveSampleSize(100, 2, options), 100u);
}

TEST(CoresetSamplerTest, UniformSampleSatisfiesInvariants) {
  const Table table = SmallTable(500);
  CoresetOptions options;
  options.strategy = CoresetStrategy::kUniform;
  RunContext ctx;
  const auto sample = DrawCoresetSample(table, 4, options, &ctx);
  ASSERT_TRUE(sample.ok()) << sample.status().message();
  const size_t s = ResolveSampleSize(500, 4, options);
  EXPECT_EQ(sample->rows.size(), s);
  CheckSampleInvariants(*sample, 500, s);
}

TEST(CoresetSamplerTest, SensitivitySampleSatisfiesInvariants) {
  const Table table = SmallTable(500);
  CoresetOptions options;
  options.strategy = CoresetStrategy::kSensitivity;
  RunContext ctx;
  const auto sample = DrawCoresetSample(table, 4, options, &ctx);
  ASSERT_TRUE(sample.ok()) << sample.status().message();
  // i.i.d. draws can repeat, so distinct rows <= target size.
  CheckSampleInvariants(*sample, 500, ResolveSampleSize(500, 4, options));
}

TEST(CoresetSamplerTest, DeterministicFromSeedAcrossStrategies) {
  const Table table = SmallTable(400);
  for (const CoresetStrategy strategy :
       {CoresetStrategy::kUniform, CoresetStrategy::kSensitivity}) {
    CoresetOptions options;
    options.strategy = strategy;
    options.seed = 99;
    RunContext ctx_a, ctx_b;
    const auto a = DrawCoresetSample(table, 3, options, &ctx_a);
    const auto b = DrawCoresetSample(table, 3, options, &ctx_b);
    ASSERT_TRUE(a.ok() && b.ok());
    EXPECT_EQ(a->rows, b->rows);
    EXPECT_EQ(a->weights, b->weights);

    options.seed = 100;
    RunContext ctx_c;
    const auto c = DrawCoresetSample(table, 3, options, &ctx_c);
    ASSERT_TRUE(c.ok());
    EXPECT_NE(a->rows, c->rows) << CoresetStrategyName(strategy);
  }
}

TEST(CoresetSamplerTest, SensitivityWeighsOutliersBelowTheBulk) {
  // 399 identical rows plus one far outlier, with a single seed center
  // (which lands in the bulk): the outlier's sensitivity score is high,
  // so when it is drawn its inverse-probability weight must sit well
  // below the bulk rows' (it stands for almost no one but itself). The
  // draw itself is probabilistic per seed, so scan a few deterministic
  // seeds until one includes the outlier — every assertion after that is
  // exact and replays identically.
  Schema schema({"a", "b", "c"});
  Table table(schema);
  for (int r = 0; r < 399; ++r) {
    table.AppendStringRow({"x", "x", "x"});
  }
  table.AppendStringRow({"y", "z", "w"});
  bool found = false;
  for (uint64_t seed = 1; seed <= 20 && !found; ++seed) {
    CoresetOptions options;
    options.strategy = CoresetStrategy::kSensitivity;
    options.seed_centers = 1;
    options.seed = seed;
    RunContext ctx;
    const auto sample = DrawCoresetSample(table, 3, options, &ctx);
    ASSERT_TRUE(sample.ok());
    const auto it =
        std::find(sample->rows.begin(), sample->rows.end(), RowId{399});
    if (it == sample->rows.end()) continue;
    found = true;
    const size_t outlier_index = it - sample->rows.begin();
    size_t max_weight = 0;
    for (const uint32_t w : sample->weights) {
      max_weight = std::max<size_t>(max_weight, w);
    }
    EXPECT_LT(sample->weights[outlier_index], max_weight)
        << "seed " << seed;
  }
  EXPECT_TRUE(found) << "no seed in [1,20] sampled the outlier";
}

TEST(CoresetSamplerTest, CancelledContextDeclinesTyped) {
  const Table table = SmallTable(300);
  RunContext ctx;
  ctx.RequestCancel();
  const auto sample = DrawCoresetSample(table, 3, {}, &ctx);
  ASSERT_FALSE(sample.ok());
  EXPECT_EQ(sample.status().code(), StatusCode::kCancelled);
}

TEST(CoresetSamplerTest, MemoryBudgetDeclinesTyped) {
  const Table table = SmallTable(4096);
  RunContext ctx;
  ctx.set_memory_limit_bytes(64);  // far below the O(n) scratch
  const auto sample = DrawCoresetSample(table, 3, {}, &ctx);
  ASSERT_FALSE(sample.ok());
  EXPECT_EQ(sample.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(ctx.stop_reason(), StopReason::kBudget);
}

TEST(CoresetSamplerTest, FaultSiteFiresTypedDecline) {
  const Table table = SmallTable(300);
  FaultPlan plan;
  plan.seed = 1;
  plan.sites.push_back({.site = "coreset.sample", .first_n = 1});
  ScopedFaultInjection injection(plan);
  RunContext ctx;
  const auto sample = DrawCoresetSample(table, 3, {}, &ctx);
  ASSERT_FALSE(sample.ok());
  EXPECT_EQ(sample.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(ctx.stop_reason(), StopReason::kBudget);
}

TEST(CoresetSamplerTest, EmptyTableIsInvalidArgument) {
  Table table{Schema({"a"})};
  RunContext ctx;
  const auto sample = DrawCoresetSample(table, 1, {}, &ctx);
  ASSERT_FALSE(sample.ok());
  EXPECT_EQ(sample.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace kanon
