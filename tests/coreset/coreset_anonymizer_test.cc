#include "coreset/coreset_anonymizer.h"

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "algo/fallback.h"
#include "algo/registry.h"
#include "core/partition.h"
#include "data/generators/synthetic.h"
#include "fault/fault.h"
#include "gtest/gtest.h"
#include "util/fingerprint.h"
#include "util/run_context.h"

/// \file
/// Wrapper contract: coreset_<inner> always emits a valid k-anonymous
/// partition of the FULL table (or a typed decline — never an invalid
/// partition), is deterministic from the sampler seed, resumes from a
/// wrapper snapshot with the bit-identical answer, survives hostile
/// snapshots, and degrades gracefully inside the fallback chain when a
/// fault fires mid-pipeline.

namespace kanon {
namespace {

/// Canonical content hash (group/row order is presentation).
uint64_t PartitionHash(const Partition& partition) {
  std::vector<Group> groups = partition.groups;
  for (Group& group : groups) std::sort(group.begin(), group.end());
  std::sort(groups.begin(), groups.end());
  uint64_t fp = kFingerprintSeed;
  for (const Group& group : groups) {
    fp = FingerprintInt(fp, group.size());
    for (const RowId row : group) fp = FingerprintInt(fp, row);
  }
  return fp;
}

/// Latest-snapshot-wins in-memory sink.
class MemorySink : public CheckpointSink {
 public:
  Status Persist(std::string_view solver,
                 const std::string& payload) override {
    solver_ = std::string(solver);
    payload_ = payload;
    ++persists_;
    return Status::Ok();
  }

  const std::string& solver() const { return solver_; }
  const std::string& payload() const { return payload_; }
  uint64_t persists() const { return persists_; }

 private:
  std::string solver_;
  std::string payload_;
  uint64_t persists_ = 0;
};

Table TestTable(uint64_t rows, uint64_t seed = 11) {
  SyntheticTableOptions options;
  options.num_rows = rows;
  options.num_columns = 4;
  options.seed = seed;
  return SyntheticTable(options);
}

CoresetAnonymizer MakeWrapper(const std::string& inner = "mdav",
                              CoresetOptions options = {}) {
  return CoresetAnonymizer(MakeAnonymizer(inner), options);
}

TEST(CoresetAnonymizerTest, ProducesValidFullTablePartition) {
  const Table table = TestTable(400);
  CoresetAnonymizer algo = MakeWrapper();
  RunContext ctx;
  const AnonymizationResult result = algo.Run(table, 4, &ctx);
  EXPECT_TRUE(result.completed());
  EXPECT_TRUE(IsValidPartition(result.partition, 400, 4, 400));
  EXPECT_NE(result.notes.find("coreset s="), std::string::npos);
  EXPECT_NE(result.notes.find("inner=mdav"), std::string::npos);
}

TEST(CoresetAnonymizerTest, DeterministicFromSamplerSeed) {
  const Table table = TestTable(350);
  CoresetOptions options;
  options.seed = 1234;
  CoresetAnonymizer a = MakeWrapper("mdav", options);
  CoresetAnonymizer b = MakeWrapper("mdav", options);
  RunContext ctx_a, ctx_b;
  const AnonymizationResult ra = a.Run(table, 3, &ctx_a);
  const AnonymizationResult rb = b.Run(table, 3, &ctx_b);
  ASSERT_TRUE(ra.completed() && rb.completed());
  EXPECT_EQ(ra.cost, rb.cost);
  EXPECT_EQ(PartitionHash(ra.partition), PartitionHash(rb.partition));
}

TEST(CoresetAnonymizerTest, SmallTablesTakeTheDirectPath) {
  const Table table = TestTable(24);
  CoresetAnonymizer algo = MakeWrapper();
  RunContext ctx;
  // n = 24 is below the min_sample floor: the wrapper must run the
  // inner solver directly and say so.
  const AnonymizationResult result = algo.Run(table, 3, &ctx);
  ASSERT_TRUE(result.completed());
  EXPECT_NE(result.notes.find("coreset=direct"), std::string::npos);
  EXPECT_TRUE(IsValidPartition(result.partition, 24, 3, 24));

  std::unique_ptr<Anonymizer> inner = MakeAnonymizer("mdav");
  const AnonymizationResult direct = inner->Run(table, 3);
  EXPECT_EQ(result.cost, direct.cost);
  EXPECT_EQ(PartitionHash(result.partition),
            PartitionHash(direct.partition));
}

TEST(CoresetAnonymizerTest, RegistryBuildsCoresetCompositions) {
  for (const std::string name :
       {"coreset_mdav", "coreset_cluster_greedy", "coreset_ball_cover"}) {
    std::unique_ptr<Anonymizer> algo = MakeAnonymizer(name);
    ASSERT_NE(algo, nullptr) << name;
    EXPECT_EQ(algo->name(), name);
    const auto known = KnownAnonymizers();
    EXPECT_NE(std::find(known.begin(), known.end(), name), known.end());
  }
  // Nesting the chain or another wrapper inside coreset is rejected.
  EXPECT_EQ(MakeAnonymizer("coreset_resilient"), nullptr);
  EXPECT_EQ(MakeAnonymizer("coreset_coreset_mdav"), nullptr);
  EXPECT_EQ(MakeAnonymizer("coreset_nope"), nullptr);
}

TEST(CoresetAnonymizerTest, EndToEndThroughRegistryNames) {
  const Table table = TestTable(300, 21);
  for (const std::string name :
       {"coreset_mdav", "coreset_cluster_greedy", "coreset_ball_cover"}) {
    std::unique_ptr<Anonymizer> algo = MakeAnonymizer(name);
    ASSERT_NE(algo, nullptr);
    RunContext ctx;
    const AnonymizationResult result = algo->Run(table, 4, &ctx);
    EXPECT_TRUE(result.completed()) << name;
    EXPECT_TRUE(IsValidPartition(result.partition, 300, 4, 300)) << name;
  }
}

TEST(CoresetAnonymizerTest, BallCoverInnerIsDeterministicAndDistinct) {
  // The third registered inner wrapper: same contract as the others —
  // deterministic from the sampler seed, valid on the full table, and a
  // genuinely different inner (notes name it).
  const Table table = TestTable(300, 9);
  std::unique_ptr<Anonymizer> a = MakeAnonymizer("coreset_ball_cover");
  std::unique_ptr<Anonymizer> b = MakeAnonymizer("coreset_ball_cover");
  ASSERT_NE(a, nullptr);
  RunContext ctx_a, ctx_b;
  const AnonymizationResult ra = a->Run(table, 3, &ctx_a);
  const AnonymizationResult rb = b->Run(table, 3, &ctx_b);
  ASSERT_TRUE(ra.completed() && rb.completed());
  EXPECT_TRUE(IsValidPartition(ra.partition, 300, 3, 300));
  EXPECT_EQ(ra.cost, rb.cost);
  EXPECT_EQ(PartitionHash(ra.partition), PartitionHash(rb.partition));
  EXPECT_NE(ra.notes.find("inner=ball_cover"), std::string::npos);
}

TEST(CoresetAnonymizerTest, ResumesFromWrapperSnapshotBitIdentical) {
  const Table table = TestTable(400, 33);
  CoresetOptions options;
  options.seed = 77;

  // Golden uninterrupted run with the snapshot cadence armed: the last
  // persisted wrapper snapshot is phase 2 (sample + solved partition).
  MemorySink sink;
  CoresetAnonymizer golden_algo = MakeWrapper("mdav", options);
  RunContext golden_ctx;
  golden_ctx.ArmCheckpoints(&sink, /*every_polls=*/1, 0.0);
  const AnonymizationResult golden = golden_algo.Run(table, 4, &golden_ctx);
  ASSERT_TRUE(golden.completed());
  ASSERT_GE(sink.persists(), 1u);
  EXPECT_EQ(sink.solver(), "coreset_mdav");

  // A fresh incarnation resuming from that snapshot must skip the
  // completed phases and land on the bit-identical answer.
  CoresetAnonymizer resumed_algo = MakeWrapper("mdav", options);
  RunContext resumed_ctx;
  resumed_ctx.SetResume("coreset_mdav", sink.payload());
  const AnonymizationResult resumed = resumed_algo.Run(table, 4, &resumed_ctx);
  ASSERT_TRUE(resumed.completed());
  EXPECT_EQ(resumed.cost, golden.cost);
  EXPECT_EQ(PartitionHash(resumed.partition), PartitionHash(golden.partition));
  EXPECT_NE(resumed.notes.find("resumed=1"), std::string::npos);
}

TEST(CoresetAnonymizerTest, HostileSnapshotColdStartsInsteadOfTrusting) {
  const Table table = TestTable(400, 33);
  CoresetOptions options;
  options.seed = 77;
  CoresetAnonymizer golden_algo = MakeWrapper("mdav", options);
  RunContext golden_ctx;
  const AnonymizationResult golden = golden_algo.Run(table, 4, &golden_ctx);
  ASSERT_TRUE(golden.completed());

  for (const std::string payload :
       {std::string(), std::string("garbage"),
        std::string(200, '\xff')}) {
    CoresetAnonymizer algo = MakeWrapper("mdav", options);
    RunContext ctx;
    ctx.SetResume("coreset_mdav", payload);
    const AnonymizationResult result = algo.Run(table, 4, &ctx);
    ASSERT_TRUE(result.completed());
    EXPECT_EQ(result.cost, golden.cost);
    EXPECT_EQ(PartitionHash(result.partition),
              PartitionHash(golden.partition));
    EXPECT_EQ(result.notes.find("resumed=1"), std::string::npos);
  }
}

TEST(CoresetAnonymizerTest, SamplerFaultDeclinesTypedNeverInvalid) {
  const Table table = TestTable(300);
  FaultPlan plan;
  plan.seed = 5;
  plan.sites.push_back({.site = "coreset.sample", .first_n = 1});
  ScopedFaultInjection injection(plan);
  CoresetAnonymizer algo = MakeWrapper();
  RunContext ctx;
  const AnonymizationResult result = algo.Run(table, 3, &ctx);
  EXPECT_FALSE(result.completed());
  EXPECT_EQ(result.termination, StopReason::kBudget);
  EXPECT_TRUE(result.partition.groups.empty());
  EXPECT_NE(result.notes.find("declined:"), std::string::npos);
}

TEST(CoresetAnonymizerTest, FallbackChainDegradesPastFaultedCoreset) {
  const Table table = TestTable(300);
  FaultPlan plan;
  plan.seed = 5;
  plan.sites.push_back({.site = "coreset.sample", .first_n = 1});
  ScopedFaultInjection injection(plan);

  FallbackOptions options;
  options.stages = {"coreset_mdav", "suppress_all"};
  FallbackAnonymizer chain(options);
  RunContext ctx;
  const AnonymizationResult result = chain.Run(table, 3, &ctx);
  // The chain must absorb the coreset decline and produce a valid
  // answer from the terminal stage.
  EXPECT_TRUE(IsValidPartition(result.partition, 300, 3, 300));
  EXPECT_EQ(result.stage, "suppress_all");
  EXPECT_NE(result.notes.find("coreset_mdav"), std::string::npos);
}

}  // namespace
}  // namespace kanon
