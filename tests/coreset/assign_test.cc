#include "coreset/assign.h"

#include <algorithm>
#include <vector>

#include "core/partition.h"
#include "data/generators/synthetic.h"
#include "fault/fault.h"
#include "gtest/gtest.h"
#include "util/run_context.h"

/// \file
/// Assignment-plane contract: the full-table partition is always valid
/// and k-anonymous, undersized groups are repaired (and counted, with
/// the collapse-to-one-group case flagged as the typed degradation),
/// and stops/faults decline typed instead of emitting a partial result.

namespace kanon {
namespace {

/// Builds the weighted SelectRows view the wrapper hands to assignment.
Table SampleView(const Table& full, std::vector<RowId> rows,
                 std::vector<uint32_t> weights) {
  Table view = full.SelectRows(rows);
  view.SetRowWeights(std::move(weights));
  return view;
}

/// Two well-separated clusters: 6x "x x", then 6x "y y".
Table TwoClusters() {
  Table t{Schema({"a", "b"})};
  for (int i = 0; i < 6; ++i) t.AppendStringRow({"x", "x"});
  for (int i = 0; i < 6; ++i) t.AppendStringRow({"y", "y"});
  return t;
}

TEST(CoresetAssignTest, MapsRowsToNearestGroupWithoutRepair) {
  const Table full = TwoClusters();
  const Table sample = SampleView(full, {0, 6}, {6, 6});
  Partition sample_partition;
  sample_partition.groups = {{0}, {1}};
  RunContext ctx;
  const auto outcome =
      AssignToCoresetGroups(full, sample, sample_partition, 3, &ctx);
  ASSERT_TRUE(outcome.ok()) << outcome.status().message();
  EXPECT_EQ(outcome->repair_merges, 0u);
  EXPECT_FALSE(outcome->repair_suppressed);
  ASSERT_EQ(outcome->partition.num_groups(), 2u);
  EXPECT_TRUE(IsValidPartition(outcome->partition, 12, 3, 12));
  const Group expected_a = {0, 1, 2, 3, 4, 5};
  const Group expected_b = {6, 7, 8, 9, 10, 11};
  Group got_a = outcome->partition.groups[0];
  Group got_b = outcome->partition.groups[1];
  std::sort(got_a.begin(), got_a.end());
  std::sort(got_b.begin(), got_b.end());
  if (got_a != expected_a) std::swap(got_a, got_b);
  EXPECT_EQ(got_a, expected_a);
  EXPECT_EQ(got_b, expected_b);
}

TEST(CoresetAssignTest, RepairsUndersizedGroupAndFlagsCollapse) {
  // 8 identical rows plus one outlier; the outlier's group attracts a
  // single full-table row, which is below k = 2, so repair must merge it
  // away — collapsing to one group, the typed degradation.
  Table full{Schema({"a", "b"})};
  for (int i = 0; i < 8; ++i) full.AppendStringRow({"x", "x"});
  full.AppendStringRow({"y", "z"});
  const Table sample = SampleView(full, {0, 8}, {8, 1});
  Partition sample_partition;
  sample_partition.groups = {{0}, {1}};
  RunContext ctx;
  const auto outcome =
      AssignToCoresetGroups(full, sample, sample_partition, 2, &ctx);
  ASSERT_TRUE(outcome.ok()) << outcome.status().message();
  EXPECT_EQ(outcome->repair_merges, 1u);
  EXPECT_TRUE(outcome->repair_suppressed);
  ASSERT_EQ(outcome->partition.num_groups(), 1u);
  EXPECT_TRUE(IsValidPartition(outcome->partition, 9, 2, 9));
}

TEST(CoresetAssignTest, AlwaysValidOnRandomInstances) {
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    SyntheticTableOptions gen;
    gen.num_rows = 200;
    gen.num_columns = 3;
    gen.seed = seed;
    const Table full = SyntheticTable(gen);
    // A deliberately adversarial sample partition: singleton groups of
    // the first 8 rows (all below any reasonable k).
    std::vector<RowId> rows = {0, 1, 2, 3, 4, 5, 6, 7};
    std::vector<uint32_t> weights(8, 25);
    const Table sample = SampleView(full, rows, weights);
    Partition sample_partition;
    for (RowId r = 0; r < 8; ++r) sample_partition.groups.push_back({r});
    RunContext ctx;
    const size_t k = 1 + seed % 5;
    const auto outcome =
        AssignToCoresetGroups(full, sample, sample_partition, k, &ctx);
    ASSERT_TRUE(outcome.ok()) << outcome.status().message();
    EXPECT_TRUE(
        IsValidPartition(outcome->partition, 200, k, 200))
        << "seed " << seed;
  }
}

TEST(CoresetAssignTest, NoGroupsIsInvalidArgument) {
  const Table full = TwoClusters();
  const Table sample = SampleView(full, {0}, {12});
  RunContext ctx;
  const auto outcome =
      AssignToCoresetGroups(full, sample, Partition{}, 2, &ctx);
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), StatusCode::kInvalidArgument);
}

TEST(CoresetAssignTest, CancelledContextDeclinesTyped) {
  const Table full = TwoClusters();
  const Table sample = SampleView(full, {0, 6}, {6, 6});
  Partition sample_partition;
  sample_partition.groups = {{0}, {1}};
  RunContext ctx;
  ctx.RequestCancel();
  const auto outcome =
      AssignToCoresetGroups(full, sample, sample_partition, 3, &ctx);
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), StatusCode::kCancelled);
}

TEST(CoresetAssignTest, FaultSiteFiresTypedDeadline) {
  const Table full = TwoClusters();
  const Table sample = SampleView(full, {0, 6}, {6, 6});
  Partition sample_partition;
  sample_partition.groups = {{0}, {1}};
  FaultPlan plan;
  plan.seed = 3;
  plan.sites.push_back({.site = "coreset.assign", .first_n = 1});
  ScopedFaultInjection injection(plan);
  RunContext ctx;
  const auto outcome =
      AssignToCoresetGroups(full, sample, sample_partition, 3, &ctx);
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(ctx.stop_reason(), StopReason::kDeadline);
}

}  // namespace
}  // namespace kanon
