#include "generalize/hierarchy.h"

#include "gtest/gtest.h"

namespace kanon {
namespace {

Dictionary MakeDict(const std::vector<std::string>& values) {
  Dictionary d;
  for (const auto& v : values) d.Intern(v);
  return d;
}

TEST(FlatHierarchyTest, TwoLevels) {
  const Dictionary d = MakeDict({"red", "green", "blue"});
  const Hierarchy h = Hierarchy::Flat(d);
  EXPECT_EQ(h.num_levels(), 2u);
  EXPECT_EQ(h.Label(0, 0), "red");
  EXPECT_EQ(h.Label(2, 0), "blue");
  for (ValueCode c = 0; c < 3; ++c) {
    EXPECT_EQ(h.Label(c, 1), "*");
  }
}

TEST(IntervalHierarchyTest, BucketsAlignToWidth) {
  const Dictionary d = MakeDict({"34", "36", "47", "22"});
  const Hierarchy h = Hierarchy::Intervals(d, {10, 20});
  EXPECT_EQ(h.num_levels(), 4u);  // value, 10, 20, *
  EXPECT_EQ(h.Label(d.Lookup("34"), 1), "[30-39]");
  EXPECT_EQ(h.Label(d.Lookup("36"), 1), "[30-39]");
  EXPECT_EQ(h.Label(d.Lookup("47"), 1), "[40-49]");
  EXPECT_EQ(h.Label(d.Lookup("22"), 1), "[20-29]");
  EXPECT_EQ(h.Label(d.Lookup("34"), 2), "[20-39]");
  EXPECT_EQ(h.Label(d.Lookup("22"), 2), "[20-39]");
  EXPECT_EQ(h.Label(d.Lookup("47"), 2), "[40-59]");
  EXPECT_EQ(h.Label(d.Lookup("34"), 3), "*");
}

TEST(IntervalHierarchyTest, NegativeValuesBucketCorrectly) {
  const Dictionary d = MakeDict({"-5", "3"});
  const Hierarchy h = Hierarchy::Intervals(d, {10});
  EXPECT_EQ(h.Label(d.Lookup("-5"), 1), "[-10--1]");
  EXPECT_EQ(h.Label(d.Lookup("3"), 1), "[0-9]");
}

TEST(IntervalHierarchyDeathTest, NonNumericDies) {
  const Dictionary d = MakeDict({"12", "abc"});
  EXPECT_DEATH(Hierarchy::Intervals(d, {10}), "non-numeric");
}

TEST(IntervalHierarchyDeathTest, NonIncreasingWidthsDie) {
  const Dictionary d = MakeDict({"1"});
  EXPECT_DEATH(Hierarchy::Intervals(d, {20, 10}), "Check failed");
}

TEST(PrefixHierarchyTest, PaperIntroLastNames) {
  // The paper's Section 1 example generalizes "reyser"/"ramos" to "r*".
  const Dictionary d = MakeDict({"stone", "reyser", "ramos"});
  const Hierarchy h = Hierarchy::Prefix(d, {1});
  EXPECT_EQ(h.num_levels(), 3u);
  EXPECT_EQ(h.Label(d.Lookup("reyser"), 1), "r*");
  EXPECT_EQ(h.Label(d.Lookup("ramos"), 1), "r*");
  EXPECT_EQ(h.Label(d.Lookup("stone"), 1), "s*");
  EXPECT_EQ(h.Label(d.Lookup("stone"), 2), "*");
}

TEST(PrefixHierarchyTest, MultiplePrefixLevels) {
  const Dictionary d = MakeDict({"alpha", "alpine"});
  const Hierarchy h = Hierarchy::Prefix(d, {3, 2});
  EXPECT_EQ(h.Label(0, 1), "alp*");
  EXPECT_EQ(h.Label(1, 1), "alp*");
  EXPECT_EQ(h.Label(0, 2), "al*");
}

TEST(TaxonomyHierarchyTest, TwoLayerTaxonomy) {
  const Dictionary d = MakeDict({"paris", "lyon", "berlin"});
  const Hierarchy h = Hierarchy::Taxonomy(
      d, {{{"paris", "france"}, {"lyon", "france"}, {"berlin", "germany"}},
          {{"france", "europe"}, {"germany", "europe"}}});
  EXPECT_EQ(h.num_levels(), 4u);
  EXPECT_EQ(h.Label(d.Lookup("paris"), 1), "france");
  EXPECT_EQ(h.Label(d.Lookup("lyon"), 1), "france");
  EXPECT_EQ(h.Label(d.Lookup("berlin"), 1), "germany");
  EXPECT_EQ(h.Label(d.Lookup("paris"), 2), "europe");
  EXPECT_EQ(h.Label(d.Lookup("berlin"), 3), "*");
}

TEST(TaxonomyHierarchyDeathTest, MissingParentDies) {
  const Dictionary d = MakeDict({"x", "y"});
  EXPECT_DEATH(Hierarchy::Taxonomy(d, {{{"x", "letter"}}}),
               "missing parent");
}

TEST(VectorHeightTest, SumsLevels) {
  EXPECT_EQ(VectorHeight({0, 2, 1}), 3u);
  EXPECT_EQ(VectorHeight({}), 0u);
}

TEST(PrecisionTest, EndpointsAndMiddle) {
  const Dictionary d = MakeDict({"10", "20", "35"});
  const std::vector<Hierarchy> hs = {Hierarchy::Intervals(d, {10, 20}),
                                     Hierarchy::Flat(d)};
  // Untouched.
  EXPECT_DOUBLE_EQ(Precision({0, 0}, hs), 1.0);
  // Everything at top: hierarchy 0 max level 3, hierarchy 1 max 1.
  EXPECT_DOUBLE_EQ(Precision({3, 1}, hs), 0.0);
  // Halfway on attribute 0 only: loss = (1/3)/2.
  EXPECT_NEAR(Precision({1, 0}, hs), 1.0 - (1.0 / 3.0) / 2.0, 1e-12);
}

}  // namespace
}  // namespace kanon
