#include "generalize/apply.h"
#include "generalize/optimal_lattice.h"
#include "generalize/samarati.h"

#include "core/anonymity.h"
#include "data/generators/medical.h"
#include "data/generators/uniform.h"
#include "gtest/gtest.h"
#include "util/random.h"

namespace kanon {
namespace {

Table Rows(const std::vector<std::vector<std::string>>& rows,
           std::vector<std::string> names) {
  Schema schema(std::move(names));
  Table t(std::move(schema));
  for (const auto& row : rows) t.AppendStringRow(row);
  return t;
}

std::vector<Hierarchy> PaperHierarchies(const Table& t) {
  // first: flat; last: prefix-1; age: intervals 10/20; race: flat.
  return {Hierarchy::Flat(t.schema().dictionary(0)),
          Hierarchy::Prefix(t.schema().dictionary(1), {1}),
          Hierarchy::Intervals(t.schema().dictionary(2), {10, 20}),
          Hierarchy::Flat(t.schema().dictionary(3))};
}

TEST(ApplyGeneralizationTest, IdentityAtLevelZero) {
  const Table t = PaperIntroTable();
  const auto hs = PaperHierarchies(t);
  const Table out = ApplyGeneralization(t, hs, {0, 0, 0, 0});
  for (RowId r = 0; r < t.num_rows(); ++r) {
    EXPECT_EQ(out.DecodeRow(r), t.DecodeRow(r));
  }
}

TEST(ApplyGeneralizationTest, PaperIntroTwoAnonymization) {
  // The paper's Section 1 generalized release: suppress first name and
  // race fully for the Stones' columns... in full-domain terms: first
  // at *, last at prefix-1?? The paper's exact output mixes levels per
  // group (local recoding); full-domain recoding generalizes every row
  // the same way. Levels (first=*, last=prefix1, age=[x-y] width 20 at
  // level 2, race=*) make rows {0,2} and {1,3} pairwise identical...
  const Table t = PaperIntroTable();
  const auto hs = PaperHierarchies(t);
  // first=*, last=r*/s*, age=[20-39]/[40-59], race=*.
  const Table out = ApplyGeneralization(t, hs, {1, 1, 2, 1});
  // Harry Stone -> (*, s*, [20-39], *); Beatrice Stone -> (*, s*,
  // [40-59], *): note full-domain recoding does NOT make those two
  // identical (ages straddle the bucket), illustrating why the paper's
  // entry-level suppression model is strictly more flexible.
  EXPECT_EQ(out.DecodeRow(1),
            (std::vector<std::string>{"*", "r*", "[20-39]", "*"}));
  EXPECT_EQ(out.DecodeRow(3),
            (std::vector<std::string>{"*", "r*", "[20-39]", "*"}));
  EXPECT_TRUE(out.RowsEqual(1, 3));
}

TEST(ApplyGeneralizationTest, SuppressedRowsAllStars) {
  const Table t = PaperIntroTable();
  const auto hs = PaperHierarchies(t);
  const Table out = ApplyGeneralization(t, hs, {0, 0, 0, 0}, {2});
  EXPECT_EQ(out.DecodeRow(2),
            (std::vector<std::string>{"*", "*", "*", "*"}));
  EXPECT_EQ(out.DecodeRow(0), t.DecodeRow(0));
}

TEST(CheckGeneralizationTest, DetectsOutliers) {
  const Table t = PaperIntroTable();
  const auto hs = PaperHierarchies(t);
  // Identity levels: all four rows distinct -> all outliers for k=2.
  const auto check = CheckGeneralization(t, hs, {0, 0, 0, 0}, 2, 0);
  EXPECT_FALSE(check.feasible);
  EXPECT_EQ(check.outliers.size(), 4u);
  // With budget 4 it becomes feasible (everything withheld).
  EXPECT_TRUE(CheckGeneralization(t, hs, {0, 0, 0, 0}, 2, 4).feasible);
}

TEST(CheckGeneralizationTest, MonotoneAlongLatticeEdges) {
  Rng rng(1);
  const Table t = UniformTable(
      {.num_rows = 20, .num_columns = 3, .alphabet = 4}, &rng);
  const std::vector<Hierarchy> hs = DefaultHierarchies(t);
  // Raising any coordinate never shrinks groups, so outlier counts are
  // monotone non-increasing along lattice edges.
  for (size_t a = 0; a <= hs[0].max_level(); ++a) {
    for (size_t b = 0; b <= hs[1].max_level(); ++b) {
      for (size_t c = 0; c <= hs[2].max_level(); ++c) {
        const auto base = CheckGeneralization(t, hs, {a, b, c}, 3, 999);
        const GeneralizationVector v = {a, b, c};
        for (size_t j = 0; j < 3; ++j) {
          if (v[j] == hs[j].max_level()) continue;
          GeneralizationVector up = v;
          ++up[j];
          const auto coarser = CheckGeneralization(t, hs, up, 3, 999);
          EXPECT_LE(coarser.outliers.size(), base.outliers.size());
        }
      }
    }
  }
}

TEST(SamaratiTest, FindsMinimalHeightOnMedicalData) {
  Rng rng(2);
  const Table t = MedicalTable({.num_rows = 20, .name_pool = 4}, &rng);
  const std::vector<Hierarchy> hs = {
      Hierarchy::Flat(t.schema().dictionary(0)),
      Hierarchy::Prefix(t.schema().dictionary(1), {1}),
      Hierarchy::Flat(t.schema().dictionary(2)),
      Hierarchy::Flat(t.schema().dictionary(3)),
      Hierarchy::Flat(t.schema().dictionary(4))};
  const LatticeResult result = SamaratiAnonymize(t, hs, 3, {});
  // The result is feasible at its height...
  EXPECT_TRUE(CheckGeneralization(t, hs, result.levels, 3, 0).feasible);
  // ...and no vector at a smaller height is feasible.
  if (result.height > 0) {
    for (const auto& v : VectorsAtHeight(hs, result.height - 1)) {
      EXPECT_FALSE(CheckGeneralization(t, hs, v, 3, 0).feasible);
    }
  }
}

TEST(SamaratiTest, BudgetReducesHeight) {
  Rng rng(3);
  const Table t = MedicalTable({.num_rows = 24, .name_pool = 5}, &rng);
  const std::vector<Hierarchy> hs = DefaultHierarchies(t);
  const LatticeResult strict = SamaratiAnonymize(t, hs, 3, {});
  SamaratiOptions relaxed;
  relaxed.max_suppressed = 4;
  const LatticeResult with_budget = SamaratiAnonymize(t, hs, 3, relaxed);
  EXPECT_LE(with_budget.height, strict.height);
  EXPECT_LE(with_budget.suppressed_rows.size(), 4u);
}

TEST(SamaratiTest, TopIsFallbackWhenNothingElseWorks) {
  // All rows distinct on a flat attribute: only "*" works for k = n.
  const Table t = Rows({{"a"}, {"b"}, {"c"}}, {"x"});
  const std::vector<Hierarchy> hs = {
      Hierarchy::Flat(t.schema().dictionary(0))};
  const LatticeResult result = SamaratiAnonymize(t, hs, 3, {});
  EXPECT_EQ(result.levels, GeneralizationVector{1});
  EXPECT_DOUBLE_EQ(result.precision, 0.0);
}

TEST(OptimalLatticeTest, NeverWorsePrecisionThanSamarati) {
  Rng rng(4);
  const Table t = MedicalTable({.num_rows = 30, .name_pool = 5}, &rng);
  const std::vector<Hierarchy> hs = {
      Hierarchy::Flat(t.schema().dictionary(0)),
      Hierarchy::Prefix(t.schema().dictionary(1), {1}),
      Hierarchy::Flat(t.schema().dictionary(2)),
      Hierarchy::Flat(t.schema().dictionary(3)),
      Hierarchy::Flat(t.schema().dictionary(4))};
  for (const size_t k : {2u, 3u, 5u}) {
    const LatticeResult samarati = SamaratiAnonymize(t, hs, k, {});
    OptimalLatticeOptions opt;
    opt.objective = LatticeObjective::kPrecision;
    const LatticeResult optimal = OptimalLatticeAnonymize(t, hs, k, opt);
    EXPECT_GE(optimal.precision, samarati.precision - 1e-12) << "k=" << k;
    // Both must actually be k-anonymous when materialized (withheld
    // rows dropped).
    const auto check =
        CheckGeneralization(t, hs, optimal.levels, k, opt.max_suppressed);
    EXPECT_TRUE(check.feasible);
  }
}

TEST(OptimalLatticeTest, DiscernibilityObjectiveRuns) {
  Rng rng(5);
  const Table t = MedicalTable({.num_rows = 20, .name_pool = 4}, &rng);
  const std::vector<Hierarchy> hs = DefaultHierarchies(t);
  OptimalLatticeOptions opt;
  opt.objective = LatticeObjective::kDiscernibility;
  opt.max_suppressed = 2;
  const LatticeResult result = OptimalLatticeAnonymize(t, hs, 3, opt);
  EXPECT_TRUE(
      CheckGeneralization(t, hs, result.levels, 3, 2).feasible);
  EXPECT_NE(result.notes.find("lattice="), std::string::npos);
}

// Property: the groups reported by CheckGeneralization are exactly the
// identical-row groups of the materialized generalized table (with
// outliers withheld), across random vectors — the two code paths must
// agree.
class ApplyCheckConsistencyTest
    : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ApplyCheckConsistencyTest, MaterializedTableMatchesCheck) {
  Rng rng(GetParam());
  const Table t = UniformTable(
      {.num_rows = 16, .num_columns = 4, .alphabet = 3}, &rng);
  const std::vector<Hierarchy> hs = DefaultHierarchies(t);
  // Random vector in the lattice.
  GeneralizationVector v(t.num_columns());
  for (ColId c = 0; c < t.num_columns(); ++c) {
    v[c] = rng.Uniform(static_cast<uint32_t>(hs[c].num_levels()));
  }
  const auto check = CheckGeneralization(t, hs, v, 3, 99);
  // Materialize without the outliers and group identical rows.
  std::vector<RowId> kept;
  std::vector<bool> is_outlier(t.num_rows(), false);
  for (const RowId r : check.outliers) is_outlier[r] = true;
  for (RowId r = 0; r < t.num_rows(); ++r) {
    if (!is_outlier[r]) kept.push_back(r);
  }
  const Table released =
      ApplyGeneralization(t, hs, v).SelectRows(kept);
  const Partition groups = GroupIdenticalRows(released);
  EXPECT_EQ(groups.num_groups(), check.groups.num_groups());
  for (const Group& g : groups.groups) {
    EXPECT_GE(g.size(), 3u);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ApplyCheckConsistencyTest,
                         ::testing::Range<uint64_t>(1, 11));

TEST(VectorsAtHeightTest, CountsMatchLattice) {
  const Dictionary d = [] {
    Dictionary dict;
    dict.Intern("1");
    dict.Intern("2");
    return dict;
  }();
  // Two attributes with max levels 2 and 1 (interval {10} -> levels 3).
  const std::vector<Hierarchy> hs = {Hierarchy::Intervals(d, {10}),
                                     Hierarchy::Flat(d)};
  // Heights: 0:{(0,0)} 1:{(1,0),(0,1)} 2:{(2,0),(1,1)} 3:{(2,1)}.
  EXPECT_EQ(VectorsAtHeight(hs, 0).size(), 1u);
  EXPECT_EQ(VectorsAtHeight(hs, 1).size(), 2u);
  EXPECT_EQ(VectorsAtHeight(hs, 2).size(), 2u);
  EXPECT_EQ(VectorsAtHeight(hs, 3).size(), 1u);
  EXPECT_TRUE(VectorsAtHeight(hs, 4).empty());
}

TEST(DefaultHierarchiesTest, NumericDetection) {
  const Table t = Rows({{"12", "abc"}, {"30", "def"}}, {"age", "name"});
  const std::vector<Hierarchy> hs = DefaultHierarchies(t);
  EXPECT_EQ(hs[0].num_levels(), 4u);  // intervals 10, 20, *
  EXPECT_EQ(hs[1].num_levels(), 2u);  // flat
}

}  // namespace
}  // namespace kanon
