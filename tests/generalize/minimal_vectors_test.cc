#include "generalize/minimal_vectors.h"

#include "data/generators/medical.h"
#include "data/generators/uniform.h"
#include "generalize/samarati.h"
#include "gtest/gtest.h"
#include "util/random.h"

namespace kanon {
namespace {

TEST(DominatedByTest, ComponentwiseOrder) {
  EXPECT_TRUE(DominatedBy({0, 1}, {0, 1}));
  EXPECT_TRUE(DominatedBy({0, 1}, {1, 1}));
  EXPECT_FALSE(DominatedBy({2, 0}, {1, 1}));
  EXPECT_FALSE(DominatedBy({0, 2}, {1, 1}));
}

/// Brute-force reference: minimal feasible vectors by definition.
std::vector<GeneralizationVector> BruteForceMinimal(
    const Table& t, const std::vector<Hierarchy>& hs, size_t k,
    size_t budget) {
  // Enumerate the full lattice.
  std::vector<GeneralizationVector> feasible;
  GeneralizationVector v(t.num_columns(), 0);
  for (;;) {
    if (CheckGeneralization(t, hs, v, k, budget).feasible) {
      feasible.push_back(v);
    }
    ColId c = 0;
    while (c < t.num_columns()) {
      if (v[c] < hs[c].max_level()) {
        ++v[c];
        break;
      }
      v[c] = 0;
      ++c;
    }
    if (c == t.num_columns()) break;
  }
  std::vector<GeneralizationVector> minimal;
  for (const auto& a : feasible) {
    bool is_minimal = true;
    for (const auto& b : feasible) {
      if (a != b && DominatedBy(b, a)) {
        is_minimal = false;
        break;
      }
    }
    if (is_minimal) minimal.push_back(a);
  }
  return minimal;
}

class MinimalVectorsPropertyTest
    : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MinimalVectorsPropertyTest, MatchesBruteForce) {
  Rng rng(GetParam());
  const Table t = MedicalTable({.num_rows = 18, .name_pool = 4}, &rng);
  const std::vector<Hierarchy> hs = {
      Hierarchy::Flat(t.schema().dictionary(0)),
      Hierarchy::Prefix(t.schema().dictionary(1), {1}),
      Hierarchy::Flat(t.schema().dictionary(2)),
      Hierarchy::Flat(t.schema().dictionary(3)),
      Hierarchy::Flat(t.schema().dictionary(4))};
  for (const size_t k : {2u, 4u}) {
    const MinimalVectorsResult result =
        MinimalFeasibleVectors(t, hs, k, /*max_suppressed=*/1);
    std::vector<GeneralizationVector> expected =
        BruteForceMinimal(t, hs, k, 1);
    std::vector<GeneralizationVector> actual = result.minimal;
    std::sort(expected.begin(), expected.end());
    std::sort(actual.begin(), actual.end());
    EXPECT_EQ(actual, expected) << "k=" << k;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MinimalVectorsPropertyTest,
                         ::testing::Range<uint64_t>(1, 7));

TEST(MinimalVectorsTest, PruningSkipsDominatedVectors) {
  Rng rng(9);
  const Table t = MedicalTable({.num_rows = 20, .name_pool = 4}, &rng);
  const std::vector<Hierarchy> hs = DefaultHierarchies(t);
  const MinimalVectorsResult result =
      MinimalFeasibleVectors(t, hs, 2, 0);
  EXPECT_GT(result.lattice_size, result.vectors_checked);
  EXPECT_FALSE(result.minimal.empty());
}

TEST(MinimalVectorsTest, SamaratiHeightAppearsInAntichain) {
  Rng rng(11);
  const Table t = MedicalTable({.num_rows = 20, .name_pool = 4}, &rng);
  const std::vector<Hierarchy> hs = DefaultHierarchies(t);
  const LatticeResult samarati = SamaratiAnonymize(t, hs, 3, {});
  const MinimalVectorsResult antichain =
      MinimalFeasibleVectors(t, hs, 3, 0);
  // Samarati's minimum feasible height equals the smallest height in
  // the antichain (its vector is minimal-height feasible, and every
  // minimal vector is feasible).
  size_t min_height = static_cast<size_t>(-1);
  for (const auto& v : antichain.minimal) {
    min_height = std::min(min_height, VectorHeight(v));
  }
  EXPECT_EQ(samarati.height, min_height);
}

TEST(MinimalVectorsTest, AlreadyAnonymousHasBottomOnly) {
  Schema schema({"a"});
  Table t(std::move(schema));
  for (int i = 0; i < 4; ++i) t.AppendStringRow({"same"});
  const std::vector<Hierarchy> hs = {
      Hierarchy::Flat(t.schema().dictionary(0))};
  const MinimalVectorsResult result =
      MinimalFeasibleVectors(t, hs, 4, 0);
  ASSERT_EQ(result.minimal.size(), 1u);
  EXPECT_EQ(result.minimal[0], GeneralizationVector{0});
}

}  // namespace
}  // namespace kanon
