#include "core/suppressor.h"

#include "gtest/gtest.h"

namespace kanon {
namespace {

Table TwoByThree() {
  Schema schema({"a", "b", "c"});
  Table t(std::move(schema));
  t.AppendStringRow({"1", "2", "3"});
  t.AppendStringRow({"4", "5", "6"});
  return t;
}

TEST(SuppressorTest, IdentityHasNoStars) {
  const Suppressor t(2, 3);
  EXPECT_EQ(t.Stars(), 0u);
  EXPECT_FALSE(t.IsSuppressed(0, 0));
}

TEST(SuppressorTest, SuppressIsIdempotent) {
  Suppressor t(2, 3);
  t.Suppress(1, 2);
  t.Suppress(1, 2);
  EXPECT_EQ(t.Stars(), 1u);
  EXPECT_TRUE(t.IsSuppressed(1, 2));
}

TEST(SuppressorTest, SuppressColumn) {
  Suppressor t(3, 2);
  t.SuppressColumn(1);
  EXPECT_EQ(t.Stars(), 3u);
  for (RowId r = 0; r < 3; ++r) {
    EXPECT_TRUE(t.IsSuppressed(r, 1));
    EXPECT_FALSE(t.IsSuppressed(r, 0));
  }
}

TEST(SuppressorTest, ApplyReplacesWithSuppressedCode) {
  const Table table = TwoByThree();
  Suppressor t(2, 3);
  t.Suppress(0, 1);
  const Table out = t.Apply(table);
  EXPECT_EQ(out.at(0, 1), kSuppressedCode);
  EXPECT_EQ(out.at(0, 0), table.at(0, 0));
  EXPECT_EQ(out.at(1, 1), table.at(1, 1));
  // Original untouched (Definition 2.1: t maps to a new anonymized set).
  EXPECT_EQ(table.CountSuppressedCells(), 0u);
  EXPECT_EQ(out.CountSuppressedCells(), 1u);
}

TEST(SuppressorTest, ApplyDecodesAsStar) {
  const Table table = TwoByThree();
  Suppressor t(2, 3);
  t.Suppress(0, 0);
  const Table out = t.Apply(table);
  EXPECT_EQ(out.DecodeRow(0)[0], "*");
}

TEST(SuppressorTest, FromAnonymizedRoundTrip) {
  const Table table = TwoByThree();
  Suppressor t(2, 3);
  t.Suppress(0, 2);
  t.Suppress(1, 0);
  const Suppressor back = Suppressor::FromAnonymized(t.Apply(table));
  EXPECT_EQ(back.Stars(), 2u);
  for (RowId r = 0; r < 2; ++r) {
    for (ColId c = 0; c < 3; ++c) {
      EXPECT_EQ(back.IsSuppressed(r, c), t.IsSuppressed(r, c));
    }
  }
}

TEST(SuppressorTest, IsAttributeSuppressorTrueCases) {
  Suppressor none(3, 2);
  EXPECT_TRUE(none.IsAttributeSuppressor());
  Suppressor cols(3, 2);
  cols.SuppressColumn(0);
  EXPECT_TRUE(cols.IsAttributeSuppressor());
}

TEST(SuppressorTest, IsAttributeSuppressorFalseForCellLevel) {
  Suppressor t(3, 2);
  t.Suppress(1, 0);
  EXPECT_FALSE(t.IsAttributeSuppressor());
}

TEST(SuppressorDeathTest, ShapeMismatchDies) {
  const Table table = TwoByThree();
  const Suppressor wrong(5, 3);
  EXPECT_DEATH(wrong.Apply(table), "Check failed");
}

TEST(SuppressorDeathTest, OutOfRangeDies) {
  Suppressor t(2, 3);
  EXPECT_DEATH(t.Suppress(2, 0), "Check failed");
  EXPECT_DEATH(t.Suppress(0, 3), "Check failed");
}

}  // namespace
}  // namespace kanon
