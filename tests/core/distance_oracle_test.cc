#include "core/distance_oracle.h"

#include <vector>

#include "core/bounds.h"
#include "core/distance.h"
#include "data/generators/uniform.h"
#include "gtest/gtest.h"
#include "util/random.h"

namespace kanon {
namespace {

Table MakeTable(RowId n, ColId m, uint64_t seed) {
  Rng rng(seed);
  return UniformTable({.num_rows = n, .num_columns = m, .alphabet = 4},
                      &rng);
}

TEST(DistanceOracleTest, DensePathMatchesMatrix) {
  const Table t = MakeTable(24, 6, 1);
  const DistanceMatrix dm(t);
  RunContext ctx;
  const auto oracle =
      DistanceOracle::Create(t, DistanceOracleOptions{}, &ctx);
  ASSERT_TRUE(oracle.ok()) << oracle.status().ToString();
  EXPECT_TRUE((*oracle)->dense());
  for (RowId a = 0; a < t.num_rows(); ++a) {
    for (RowId b = 0; b < t.num_rows(); ++b) {
      EXPECT_EQ((*oracle)->at(a, b), dm.at(a, b));
    }
  }
}

TEST(DistanceOracleTest, OnDemandPathMatchesMatrixExactly) {
  const Table t = MakeTable(40, 5, 2);
  const DistanceMatrix dm(t);
  // dense_threshold 0 forces the blocked on-demand representation, and
  // a 4-strip cache forces LRU eviction during the sweep.
  const DistanceOracleOptions options{.dense_threshold = 0,
                                      .max_cached_strips = 4};
  RunContext ctx;
  const auto oracle = DistanceOracle::Create(t, options, &ctx);
  ASSERT_TRUE(oracle.ok()) << oracle.status().ToString();
  EXPECT_FALSE((*oracle)->dense());
  for (RowId a = 0; a < t.num_rows(); ++a) {
    for (RowId b = 0; b < t.num_rows(); ++b) {
      EXPECT_EQ((*oracle)->at(a, b), dm.at(a, b));
    }
  }
  // Diameter and k-NN answers agree with the dense matrix too.
  Rng rng(3);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<RowId> rows;
    for (RowId r = 0; r < t.num_rows(); ++r) {
      if (rng.Uniform(3) == 0) rows.push_back(r);
    }
    EXPECT_EQ((*oracle)->Diameter(rows), dm.Diameter(rows));
  }
  for (RowId r = 0; r < t.num_rows(); ++r) {
    for (RowId j = 1; j < 5; ++j) {
      EXPECT_EQ((*oracle)->KthNearestDistance(r, j),
                dm.KthNearestDistance(r, j));
    }
  }
}

TEST(DistanceOracleTest, KnnLowerBoundAgreesAcrossRepresentations) {
  const Table t = MakeTable(30, 6, 4);
  const DistanceMatrix dm(t);
  RunContext ctx;
  const DistanceOracleOptions on_demand{.dense_threshold = 0,
                                        .max_cached_strips = 8};
  const auto oracle = DistanceOracle::Create(t, on_demand, &ctx);
  ASSERT_TRUE(oracle.ok());
  for (const size_t k : {2u, 3u, 5u}) {
    EXPECT_EQ(KnnLowerBound(t, **oracle, k), KnnLowerBound(t, dm, k));
  }
}

// Regression for the historical crash path: a matrix bigger than the
// memory budget must come back as a typed kResourceExhausted status
// (latched on the context), never a bad_alloc or an abort.
TEST(DistanceOracleTest, MatrixOverBudgetIsTypedError) {
  const Table t = MakeTable(64, 4, 5);
  RunContext ctx;
  ctx.set_memory_limit_bytes(1024);  // far below 64*64*4 bytes
  const StatusOr<DistanceMatrix> dm = DistanceMatrix::Create(t, &ctx);
  ASSERT_FALSE(dm.ok());
  EXPECT_EQ(dm.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(ctx.stop_reason(), StopReason::kBudget);
}

TEST(DistanceOracleTest, OracleOverBudgetIsTypedError) {
  const Table t = MakeTable(64, 4, 6);
  RunContext ctx;
  ctx.set_memory_limit_bytes(1024);
  const auto oracle = SharedDistanceOracle(t, &ctx);
  ASSERT_FALSE(oracle.ok());
  EXPECT_EQ(oracle.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(ctx.stop_reason(), StopReason::kBudget);
}

TEST(DistanceOracleTest, MatrixLeaseReleasesOnDestruction) {
  const Table t = MakeTable(32, 4, 7);
  const size_t bytes = 32 * 32 * sizeof(ColId);
  RunContext ctx;
  ctx.set_memory_limit_bytes(bytes);  // exactly one matrix fits
  {
    const StatusOr<DistanceMatrix> dm = DistanceMatrix::Create(t, &ctx);
    ASSERT_TRUE(dm.ok()) << dm.status().ToString();
    EXPECT_EQ(ctx.peak_memory_bytes(), bytes);
    // A second matrix cannot fit while the first holds its lease...
    EXPECT_FALSE(ctx.TryChargeMemory(bytes));
  }
  // ...but fits again once the lease is released. (kBudget stays
  // latched from the probe above; only the accounting is under test.)
  EXPECT_TRUE(ctx.TryChargeMemory(bytes));
  ctx.ReleaseMemory(bytes);
}

TEST(DistanceOracleTest, CancelledBuildReturnsStopStatus) {
  const Table t = MakeTable(48, 4, 8);
  RunContext ctx;
  ctx.RequestCancel();
  const StatusOr<DistanceMatrix> dm = DistanceMatrix::Create(t, &ctx);
  ASSERT_FALSE(dm.ok());
  EXPECT_EQ(dm.status().code(), StatusCode::kCancelled);
}

TEST(DistanceOracleTest, SharedOracleIsReusedAcrossCallers) {
  const Table t = MakeTable(20, 5, 9);
  RunContext ctx;
  const auto first = SharedDistanceOracle(t, &ctx);
  const auto second = SharedDistanceOracle(t, &ctx);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first->get(), second->get()) << "second call must reuse";

  // A child stage context sees work cached on its parent.
  RunContext child(&ctx);
  const auto inherited = SharedDistanceOracle(t, &child);
  ASSERT_TRUE(inherited.ok());
  EXPECT_EQ(inherited->get(), first->get());

  // A different table gets its own oracle.
  const Table other = MakeTable(20, 5, 10);
  const auto fresh = SharedDistanceOracle(other, &ctx);
  ASSERT_TRUE(fresh.ok());
  EXPECT_NE(fresh->get(), first->get());
}

TEST(DistanceOracleTest, StaleScratchSlotIsRebuilt) {
  RunContext ctx;
  Table t = MakeTable(12, 4, 11);
  const auto before = SharedDistanceOracle(t, &ctx);
  ASSERT_TRUE(before.ok());
  const RowId n_before = (*before)->num_rows();
  // Mutating the table changes its shape; the cached slot keyed by the
  // same address must be detected as stale and rebuilt.
  std::vector<ValueCode> row(t.num_columns(), 0);
  t.AppendRow(row);
  const auto after = SharedDistanceOracle(t, &ctx);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(n_before + 1, (*after)->num_rows());
  EXPECT_NE(before->get(), after->get());
}

}  // namespace
}  // namespace kanon
