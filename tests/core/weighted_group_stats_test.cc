#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "algo/registry.h"
#include "core/cost.h"
#include "core/group_stats.h"
#include "core/partition.h"
#include "data/generators/synthetic.h"
#include "gtest/gtest.h"
#include "util/fingerprint.h"
#include "util/random.h"

/// \file
/// Weighted-instance proofs for the coreset solve layer.
///
/// 1. Semantics: a row of weight w must cost exactly what w identical
///    tuples cost, so weighted AnonCost/GroupStats are checked against a
///    physically replicated table.
/// 2. Exactness: incremental GroupStats edits (Add/Remove and the
///    what-if probes) match a from-scratch scalar recompute on weighted
///    tables under randomized edit sequences.
/// 3. Weight-1 equivalence: every solver run on a table whose weights
///    are all 1 is bit-identical (cost + canonical partition hash) to
///    the unweighted golden — the seed's behavior is provably untouched.

namespace kanon {
namespace {

uint64_t PartitionHash(const Partition& partition) {
  std::vector<Group> groups = partition.groups;
  for (Group& group : groups) std::sort(group.begin(), group.end());
  std::sort(groups.begin(), groups.end());
  uint64_t fp = kFingerprintSeed;
  for (const Group& group : groups) {
    fp = FingerprintInt(fp, group.size());
    for (const RowId row : group) fp = FingerprintInt(fp, row);
  }
  return fp;
}

Table WeightedTable(uint64_t rows, uint64_t seed,
                    std::vector<uint32_t>* weights_out) {
  SyntheticTableOptions options;
  options.num_rows = rows;
  options.num_columns = 5;
  options.seed = seed;
  Table table = SyntheticTable(options);
  Rng rng(seed ^ 0xabcd);
  std::vector<uint32_t> weights(rows);
  for (auto& w : weights) w = 1 + rng.Uniform(4);
  *weights_out = weights;
  table.SetRowWeights(std::move(weights));
  return table;
}

/// Physically replicates each row `weights[r]` times.
Table Replicate(const Table& table, const std::vector<uint32_t>& weights) {
  std::vector<RowId> rows;
  for (RowId r = 0; r < table.num_rows(); ++r) {
    for (uint32_t i = 0; i < weights[r]; ++i) rows.push_back(r);
  }
  return table.SelectRows(rows);
}

TEST(WeightedCostTest, WeightedGroupCostsEqualReplicatedCosts) {
  std::vector<uint32_t> weights;
  const Table weighted = WeightedTable(40, 3, &weights);
  // Replicate from an unweighted copy of the same content.
  SyntheticTableOptions options;
  options.num_rows = 40;
  options.num_columns = 5;
  options.seed = 3;
  const Table plain = SyntheticTable(options);
  const Table replicated = Replicate(plain, weights);

  // Map: weighted row r covers replicated rows [offset[r],
  // offset[r] + weights[r]).
  std::vector<RowId> offset(weights.size());
  RowId at = 0;
  for (size_t r = 0; r < weights.size(); ++r) {
    offset[r] = at;
    at += weights[r];
  }

  Rng rng(9);
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<RowId> group, expanded;
    for (RowId r = 0; r < weighted.num_rows(); ++r) {
      if (rng.Uniform(3) != 0) continue;
      group.push_back(r);
      for (uint32_t i = 0; i < weights[r]; ++i) {
        expanded.push_back(offset[r] + i);
      }
    }
    if (group.empty()) continue;
    EXPECT_EQ(GroupWeight(weighted, group), expanded.size());
    EXPECT_EQ(AnonCost(weighted, group), AnonCost(replicated, expanded));
  }
}

TEST(WeightedCostTest, UnweightedTablesKeepSeedSemantics) {
  SyntheticTableOptions options;
  options.num_rows = 30;
  options.seed = 4;
  const Table table = SyntheticTable(options);
  ASSERT_FALSE(table.is_weighted());
  const std::vector<RowId> group = {1, 4, 9, 16, 25};
  EXPECT_EQ(GroupWeight(table, group), group.size());
  EXPECT_EQ(AnonCost(table, group),
            group.size() * NumDisagreeingColumns(table, group));
  EXPECT_EQ(table.total_weight(), table.num_rows());
  EXPECT_EQ(table.row_weight(0), 1u);
}

TEST(WeightedGroupStatsTest, RandomizedEditsMatchScalarRecompute) {
  std::vector<uint32_t> weights;
  const Table table = WeightedTable(30, 5, &weights);
  Rng rng(6);
  GroupStats stats(table);
  std::vector<RowId> members;
  for (int edit = 0; edit < 400; ++edit) {
    if (members.empty() || (members.size() < 20 && rng.Uniform(2) == 0)) {
      // Add a row not yet in the group.
      RowId row;
      do {
        row = static_cast<RowId>(rng.Uniform(30));
      } while (std::find(members.begin(), members.end(), row) !=
               members.end());
      members.push_back(row);
      stats.Add(row);
    } else {
      const size_t i = rng.Uniform(static_cast<uint32_t>(members.size()));
      stats.Remove(members[i]);
      members.erase(members.begin() + static_cast<long>(i));
    }
    ASSERT_EQ(stats.size(), members.size());
    ASSERT_EQ(stats.weight(), GroupWeight(table, members));
    ASSERT_EQ(stats.anon_cost(), AnonCost(table, members));
  }
}

TEST(WeightedGroupStatsTest, WhatIfProbesMatchScalarRecompute) {
  std::vector<uint32_t> weights;
  const Table table = WeightedTable(24, 7, &weights);
  Rng rng(8);
  for (int trial = 0; trial < 40; ++trial) {
    std::vector<RowId> group, outside;
    for (RowId r = 0; r < table.num_rows(); ++r) {
      (rng.Uniform(2) == 0 ? group : outside).push_back(r);
    }
    if (group.empty() || outside.empty()) continue;
    const GroupStats stats(table, group);
    const RowId extra = outside[rng.Uniform(
        static_cast<uint32_t>(outside.size()))];
    const RowId member =
        group[rng.Uniform(static_cast<uint32_t>(group.size()))];

    std::vector<RowId> with = group;
    with.push_back(extra);
    EXPECT_EQ(stats.CostWith(extra), AnonCost(table, with));

    std::vector<RowId> without;
    for (const RowId r : group) {
      if (r != member) without.push_back(r);
    }
    EXPECT_EQ(stats.CostWithout(member), AnonCost(table, without));

    std::vector<RowId> replaced = without;
    replaced.push_back(extra);
    EXPECT_EQ(stats.CostReplacing(member, extra),
              AnonCost(table, replaced));
  }
}

TEST(WeightedTableTest, WeightPlumbingOnAppendAndSelect) {
  Table table{Schema({"a", "b"})};
  table.AppendStringRow({"x", "y"});
  table.AppendStringRow({"x", "z"});
  table.SetRowWeights({3, 4});
  ASSERT_TRUE(table.is_weighted());
  EXPECT_EQ(table.total_weight(), 7u);
  // Appending to a weighted table defaults the new row to weight 1.
  table.AppendStringRow({"w", "w"});
  EXPECT_EQ(table.row_weight(2), 1u);
  EXPECT_EQ(table.total_weight(), 8u);
  // SelectRows carries weights through (with repetition allowed).
  const Table view = table.SelectRows({1, 1, 0});
  ASSERT_TRUE(view.is_weighted());
  EXPECT_EQ(view.row_weight(0), 4u);
  EXPECT_EQ(view.row_weight(1), 4u);
  EXPECT_EQ(view.row_weight(2), 3u);
  // Clearing restores the unweighted fast path.
  Table cleared = table;
  cleared.SetRowWeights({});
  EXPECT_FALSE(cleared.is_weighted());
  EXPECT_EQ(cleared.total_weight(), cleared.num_rows());
}

TEST(WeightOneEquivalenceTest, SolversAreBitIdenticalUnderUnitWeights) {
  SyntheticTableOptions options;
  options.num_rows = 120;
  options.num_columns = 4;
  options.seed = 17;
  const Table plain = SyntheticTable(options);
  Table unit = plain;
  unit.SetRowWeights(std::vector<uint32_t>(plain.num_rows(), 1));
  ASSERT_TRUE(unit.is_weighted());

  for (const std::string name :
       {"mdav", "cluster_greedy", "mondrian", "suppress_all",
        "mdav+local_search"}) {
    std::unique_ptr<Anonymizer> golden_algo = MakeAnonymizer(name);
    std::unique_ptr<Anonymizer> unit_algo = MakeAnonymizer(name);
    ASSERT_NE(golden_algo, nullptr) << name;
    const AnonymizationResult golden = golden_algo->Run(plain, 4);
    const AnonymizationResult weighted = unit_algo->Run(unit, 4);
    EXPECT_EQ(golden.cost, weighted.cost) << name;
    EXPECT_EQ(PartitionHash(golden.partition),
              PartitionHash(weighted.partition))
        << name << ": unit weights changed the solve path";
  }
}

}  // namespace
}  // namespace kanon
