#include "core/cost.h"

#include "core/anonymity.h"
#include "data/generators/uniform.h"
#include "gtest/gtest.h"
#include "util/random.h"

namespace kanon {
namespace {

Table Rows(const std::vector<std::vector<std::string>>& rows) {
  Schema schema;
  for (size_t c = 0; c < rows[0].size(); ++c) {
    schema.AddAttribute("a" + std::to_string(c));
  }
  Table t(std::move(schema));
  for (const auto& row : rows) t.AppendStringRow(row);
  return t;
}

TEST(DisagreeingColumnsTest, Basic) {
  const Table t = Rows({{"a", "b", "c"}, {"a", "x", "c"}, {"a", "b", "y"}});
  const std::vector<bool> d =
      DisagreeingColumns(t, std::vector<RowId>{0, 1, 2});
  EXPECT_EQ(d, (std::vector<bool>{false, true, true}));
  EXPECT_EQ(NumDisagreeingColumns(t, std::vector<RowId>{0, 1, 2}), 2u);
}

TEST(DisagreeingColumnsTest, SingletonHasNone) {
  const Table t = Rows({{"a", "b"}});
  EXPECT_EQ(NumDisagreeingColumns(t, std::vector<RowId>{0}), 0u);
}

TEST(AnonCostTest, PaperSectionFourExample) {
  // V = {1010, 1110, 0110}; the 3-group suppression t(b1 b2 b3 b4) =
  // (*, *, b3, b4) stars 2 columns in 3 rows: ANON = 6.
  const Table t = Rows({{"1", "0", "1", "0"},
                        {"1", "1", "1", "0"},
                        {"0", "1", "1", "0"}});
  EXPECT_EQ(AnonCost(t, std::vector<RowId>{0, 1, 2}), 6u);
}

TEST(AnonCostTest, IdenticalRowsCostZero) {
  const Table t = Rows({{"a", "b"}, {"a", "b"}, {"a", "b"}});
  EXPECT_EQ(AnonCost(t, std::vector<RowId>{0, 1, 2}), 0u);
}

TEST(PartitionCostTest, SumsGroups) {
  const Table t = Rows({{"a", "b"}, {"a", "c"}, {"x", "y"}, {"x", "y"}});
  Partition p;
  p.groups = {{0, 1}, {2, 3}};
  // Group {0,1}: 1 disagreeing col * 2 rows = 2; group {2,3}: 0.
  EXPECT_EQ(PartitionCost(t, p), 2u);
}

TEST(DiameterSumTest, SumsGroupDiameters) {
  const Table t = Rows({{"a", "b"}, {"a", "c"}, {"x", "y"}, {"p", "q"}});
  Partition p;
  p.groups = {{0, 1}, {2, 3}};
  EXPECT_EQ(DiameterSum(t, p), 1u + 2u);
}

TEST(SuppressorForPartitionTest, MakesGroupsIdentical) {
  Rng rng(1);
  const Table t = UniformTable(
      {.num_rows = 9, .num_columns = 5, .alphabet = 3}, &rng);
  Partition p;
  p.groups = {{0, 1, 2}, {3, 4, 5}, {6, 7, 8}};
  const Suppressor s = SuppressorForPartition(t, p);
  EXPECT_TRUE(IsKAnonymizer(s, t, 3));
  EXPECT_EQ(s.Stars(), PartitionCost(t, p));
}

TEST(SuppressorForPartitionTest, StarCountMatchesAnonCost) {
  const Table t = Rows({{"a", "b", "c"}, {"a", "x", "c"}, {"q", "b", "c"}});
  Partition p;
  p.groups = {{0, 1, 2}};
  const Suppressor s = SuppressorForPartition(t, p);
  // Columns 0 and 1 disagree; 2 columns * 3 rows = 6 stars.
  EXPECT_EQ(s.Stars(), 6u);
  EXPECT_EQ(AnonCost(t, p.groups[0]), 6u);
}

TEST(SuppressorForPartitionDeathTest, RejectsNonPartition) {
  const Table t = Rows({{"a"}, {"b"}, {"c"}});
  Partition overlap;
  overlap.groups = {{0, 1}, {1, 2}};
  EXPECT_DEATH(SuppressorForPartition(t, overlap), "Check failed");
}

// Property: cost of the induced anonymization equals PartitionCost and
// the result is k-anonymous, for random partitions of random tables.
class CostPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CostPropertyTest, SuppressorMatchesCost) {
  Rng rng(GetParam());
  const uint32_t n = 12;
  const Table t = UniformTable(
      {.num_rows = n, .num_columns = 6, .alphabet = 4}, &rng);
  // Random partition into groups of size >= 2.
  Group all(n);
  for (RowId r = 0; r < n; ++r) all[r] = r;
  rng.Shuffle(&all);
  Partition p;
  p.groups = {all};
  p = SplitLargeGroups(p, 2 + rng.Uniform(3));
  size_t min_group = n;
  for (const Group& g : p.groups) min_group = std::min(min_group, g.size());
  const Suppressor s = SuppressorForPartition(t, p);
  EXPECT_EQ(s.Stars(), PartitionCost(t, p));
  // Every group becomes identical, so the anonymity level is at least the
  // smallest group size.
  EXPECT_GE(AnonymityLevel(s.Apply(t)), min_group);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CostPropertyTest,
                         ::testing::Range<uint64_t>(1, 9));

}  // namespace
}  // namespace kanon
