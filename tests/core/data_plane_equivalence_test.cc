/// Equivalence suite for the columnar data plane: the packed mirror,
/// the DistanceOracle (both representations), and the incremental
/// GroupStats must agree *exactly* — same integers, not approximately —
/// with the scalar row-major reference implementations, and every
/// registered anonymizer must still produce the partition the seed
/// (pre-refactor) build produced. The golden costs/hashes below were
/// captured from the seed build on the same fixed seeded instances.
#include <algorithm>
#include <string>
#include <vector>

#include "algo/registry.h"
#include "core/cost.h"
#include "core/distance.h"
#include "core/distance_oracle.h"
#include "core/group_stats.h"
#include "data/generators/clustered.h"
#include "data/generators/uniform.h"
#include "data/packed_table.h"
#include "gtest/gtest.h"
#include "util/fingerprint.h"
#include "util/random.h"

namespace kanon {
namespace {

Table MakeTable(RowId n, ColId m, uint64_t seed) {
  Rng rng(seed);
  Table t = UniformTable({.num_rows = n, .num_columns = m, .alphabet = 4},
                         &rng);
  for (RowId r = 0; r < n; ++r) {
    for (ColId c = 0; c < m; ++c) {
      if (rng.Uniform(9) == 0) t.set(r, c, kSuppressedCode);
    }
  }
  return t;
}

std::vector<RowId> RandomRowSet(const Table& t, Rng* rng) {
  std::vector<RowId> rows;
  for (RowId r = 0; r < t.num_rows(); ++r) {
    if (rng->Uniform(3) == 0) rows.push_back(r);
  }
  return rows;
}

TEST(DataPlaneEquivalenceTest, PackedHammingMatchesScalar) {
  for (const uint64_t seed : {1u, 2u, 3u}) {
    const Table t = MakeTable(21, 6, seed);
    const PackedTable packed(t);
    for (RowId a = 0; a < t.num_rows(); ++a) {
      for (RowId b = a; b < t.num_rows(); ++b) {
        EXPECT_EQ(packed.RowHamming(a, b), RowDistance(t, a, b));
      }
    }
  }
}

TEST(DataPlaneEquivalenceTest, OracleDiameterMatchesScalarSetDiameter) {
  const Table t = MakeTable(32, 5, 4);
  RunContext ctx;
  // Exercise both representations against the scalar reference.
  const auto dense =
      DistanceOracle::Create(t, DistanceOracleOptions{}, &ctx);
  const auto blocked = DistanceOracle::Create(
      t, DistanceOracleOptions{.dense_threshold = 0, .max_cached_strips = 4},
      &ctx);
  ASSERT_TRUE(dense.ok());
  ASSERT_TRUE(blocked.ok());
  Rng rng(5);
  for (int trial = 0; trial < 40; ++trial) {
    const std::vector<RowId> rows = RandomRowSet(t, &rng);
    const ColId want = SetDiameter(t, rows);
    EXPECT_EQ((*dense)->Diameter(rows), want);
    EXPECT_EQ((*blocked)->Diameter(rows), want);
  }
}

TEST(DataPlaneEquivalenceTest, IncrementalAnonMatchesScalar) {
  const Table t = MakeTable(24, 6, 6);
  Rng rng(7);
  for (int trial = 0; trial < 40; ++trial) {
    const std::vector<RowId> rows = RandomRowSet(t, &rng);
    EXPECT_EQ(GroupStats(t, rows).anon_cost(), AnonCost(t, rows));
  }
}

// ---------------------------------------------------------------------
// Golden-cost/partition checks: every registered anonymizer (plus the
// post-optimizer compositions) on two fixed seeded instances must
// reproduce the seed build's cost AND the exact partition (order-
// insensitive hash). A cost match with a hash mismatch means a solver
// found a same-cost partition via a different tie-break — that is a
// behavior change and fails here by design.
// ---------------------------------------------------------------------

uint64_t PartitionHash(Partition p) {
  for (auto& g : p.groups) std::sort(g.begin(), g.end());
  std::sort(p.groups.begin(), p.groups.end());
  uint64_t fp = kFingerprintSeed;
  for (const auto& g : p.groups) {
    fp = FingerprintInt(fp, g.size());
    for (RowId r : g) fp = FingerprintInt(fp, r);
  }
  return fp;
}

struct GoldenCase {
  int table;
  const char* name;
  size_t k;
  size_t cost;
  uint64_t hash;
};

// Captured from the seed build (pre data-plane refactor) by running the
// registry on UniformTable({12,5,alphabet=4}, Rng(7)) and
// ClusteredTable({12,6,5,3,1}, Rng(11)).
constexpr GoldenCase kGolden[] = {
    {0, "greedy_cover", 2, 34, 0x1b25f771f0828087ull},
    {0, "greedy_cover", 3, 51, 0xfda66066cc6ea307ull},
    {0, "ball_cover", 2, 44, 0x0c97a3b33aba3ce5ull},
    {0, "ball_cover", 3, 48, 0xb8b5ecefe40cd025ull},
    {0, "ball_cover_radius", 2, 44, 0x0c97a3b33aba3ce5ull},
    {0, "ball_cover_radius", 3, 48, 0xb8b5ecefe40cd025ull},
    {0, "ball_cover_pairwise", 2, 44, 0x0c97a3b33aba3ce5ull},
    {0, "ball_cover_pairwise", 3, 48, 0xb8b5ecefe40cd025ull},
    {0, "exact_dp", 2, 28, 0x8c4a6709f6137a85ull},
    {0, "exact_dp", 3, 39, 0x0cfae9b733d77f65ull},
    {0, "branch_bound", 2, 28, 0x8c4a6709f6137a85ull},
    {0, "branch_bound", 3, 39, 0x0cfae9b733d77f65ull},
    {0, "mondrian", 2, 46, 0x54baa78cbc89e7c3ull},
    {0, "mondrian", 3, 54, 0x9856fe3df3cb5807ull},
    {0, "cluster_greedy", 2, 28, 0x4347083a363bf765ull},
    {0, "cluster_greedy", 3, 39, 0x0cfae9b733d77f65ull},
    {0, "mdav", 2, 30, 0xb2680e8946fbae45ull},
    {0, "mdav", 3, 54, 0xc0df28226f5dbc85ull},
    {0, "random_partition", 2, 50, 0xa5f9ae31d8437b85ull},
    {0, "random_partition", 3, 60, 0x33c13d77e2684e45ull},
    {0, "suppress_all", 2, 60, 0xf406d978d75732c9ull},
    {0, "suppress_all", 3, 60, 0xf406d978d75732c9ull},
    {0, "attribute_greedy", 2, 41, 0x480df7b0458b3f23ull},
    {0, "attribute_greedy", 3, 60, 0xf406d978d75732c9ull},
    {0, "attribute_exact", 2, 42, 0xfdfc8f95e1d09643ull},
    {0, "attribute_exact", 3, 60, 0xf406d978d75732c9ull},
    {0, "resilient", 2, 28, 0x8c4a6709f6137a85ull},
    {0, "resilient", 3, 39, 0x0cfae9b733d77f65ull},
    {0, "mdav+local_search", 2, 30, 0xb2680e8946fbae45ull},
    {0, "mdav+local_search", 3, 45, 0x3d606ebb69e99165ull},
    {0, "mdav+annealing", 2, 28, 0x9906fc7837c15fe5ull},
    {0, "mdav+annealing", 3, 39, 0x0cfae9b733d77f65ull},
    {0, "cluster_greedy+local_search", 2, 28, 0x4347083a363bf765ull},
    {0, "cluster_greedy+local_search", 3, 39, 0x0cfae9b733d77f65ull},
    // n = 12 sits below the coreset min_sample floor, so coreset_<inner>
    // takes the direct path and must match the inner solver bit for bit.
    {0, "coreset_mdav", 2, 30, 0xb2680e8946fbae45ull},
    {0, "coreset_mdav", 3, 54, 0xc0df28226f5dbc85ull},
    {0, "coreset_cluster_greedy", 2, 28, 0x4347083a363bf765ull},
    {0, "coreset_cluster_greedy", 3, 39, 0x0cfae9b733d77f65ull},
    {0, "coreset_ball_cover", 2, 44, 0x0c97a3b33aba3ce5ull},
    {0, "coreset_ball_cover", 3, 48, 0xb8b5ecefe40cd025ull},
    // n = 12 still feeds >= 2 shards at these k, so sharded_<inner>
    // exercises the full plan/solve/merge pipeline here (the shards<=1
    // direct path is golden-tested in tests/algo).
    {0, "sharded_mdav", 2, 57, 0x2f0e1123bb189625ull},
    {0, "sharded_mdav", 3, 51, 0x27c184a1deceebe5ull},
    {0, "sharded_cluster_greedy", 2, 57, 0x2f0e1123bb189625ull},
    {0, "sharded_cluster_greedy", 3, 54, 0xc526ef77922ff185ull},
    {1, "greedy_cover", 2, 16, 0x0b24fe8e431409a5ull},
    {1, "greedy_cover", 3, 32, 0x2daf45f30ab18001ull},
    {1, "ball_cover", 2, 18, 0x8435662d4919c2a5ull},
    {1, "ball_cover", 3, 32, 0x2daf45f30ab18001ull},
    {1, "ball_cover_radius", 2, 18, 0x8435662d4919c2a5ull},
    {1, "ball_cover_radius", 3, 32, 0x2daf45f30ab18001ull},
    {1, "ball_cover_pairwise", 2, 18, 0x8435662d4919c2a5ull},
    {1, "ball_cover_pairwise", 3, 32, 0x2daf45f30ab18001ull},
    {1, "exact_dp", 2, 16, 0xf8b307bbde2f4285ull},
    {1, "exact_dp", 3, 32, 0x2daf45f30ab18001ull},
    {1, "branch_bound", 2, 16, 0xf8b307bbde2f4285ull},
    {1, "branch_bound", 3, 32, 0x2daf45f30ab18001ull},
    {1, "mondrian", 2, 35, 0xdd5c309ec75bfbc3ull},
    {1, "mondrian", 3, 51, 0x5e975159eefe9b83ull},
    {1, "cluster_greedy", 2, 20, 0xd513f467d2eaa345ull},
    {1, "cluster_greedy", 3, 39, 0x13264845a7546485ull},
    {1, "mdav", 2, 18, 0x8e3acac597cf2e25ull},
    {1, "mdav", 3, 45, 0xa7a6d7164f295dc5ull},
    {1, "random_partition", 2, 40, 0xa5f9ae31d8437b85ull},
    {1, "random_partition", 3, 63, 0x33c13d77e2684e45ull},
    {1, "suppress_all", 2, 72, 0xf406d978d75732c9ull},
    {1, "suppress_all", 3, 72, 0xf406d978d75732c9ull},
    {1, "attribute_greedy", 2, 33, 0xb74ae373cd38af27ull},
    {1, "attribute_greedy", 3, 33, 0xb74ae373cd38af27ull},
    {1, "attribute_exact", 2, 33, 0xb74ae373cd38af27ull},
    {1, "attribute_exact", 3, 33, 0xb74ae373cd38af27ull},
    {1, "resilient", 2, 16, 0xf8b307bbde2f4285ull},
    {1, "resilient", 3, 32, 0x2daf45f30ab18001ull},
    {1, "mdav+local_search", 2, 16, 0x6fb4dfa031ba6185ull},
    {1, "mdav+local_search", 3, 33, 0xfc9ee102f8825c25ull},
    {1, "mdav+annealing", 2, 16, 0x6fb4dfa031ba6185ull},
    {1, "mdav+annealing", 3, 32, 0x2daf45f30ab18001ull},
    {1, "cluster_greedy+local_search", 2, 16, 0xf8b307bbde2f4285ull},
    {1, "cluster_greedy+local_search", 3, 33, 0xfc9ee102f8825c25ull},
    {1, "coreset_mdav", 2, 18, 0x8e3acac597cf2e25ull},
    {1, "coreset_mdav", 3, 45, 0xa7a6d7164f295dc5ull},
    {1, "coreset_cluster_greedy", 2, 20, 0xd513f467d2eaa345ull},
    {1, "coreset_cluster_greedy", 3, 39, 0x13264845a7546485ull},
    {1, "coreset_ball_cover", 2, 18, 0x8435662d4919c2a5ull},
    {1, "coreset_ball_cover", 3, 32, 0x2daf45f30ab18001ull},
    {1, "sharded_mdav", 2, 42, 0xefa9e9d8f67d0a65ull},
    {1, "sharded_mdav", 3, 36, 0x712ea24ddb1ba225ull},
    {1, "sharded_cluster_greedy", 2, 42, 0xefa9e9d8f67d0a65ull},
    {1, "sharded_cluster_greedy", 3, 36, 0x712ea24ddb1ba225ull},
};

std::vector<Table> GoldenTables() {
  std::vector<Table> tables;
  {
    Rng rng(7);
    tables.push_back(UniformTable(
        {.num_rows = 12, .num_columns = 5, .alphabet = 4}, &rng));
  }
  {
    Rng rng(11);
    tables.push_back(ClusteredTable({.num_rows = 12,
                                     .num_columns = 6,
                                     .alphabet = 5,
                                     .num_clusters = 3,
                                     .noise_flips = 1},
                                    &rng));
  }
  return tables;
}

TEST(DataPlaneEquivalenceTest, GoldenCoversWholeRegistry) {
  // If a new anonymizer is registered, it must be added to kGolden (and
  // captured), or this guard will point at the gap.
  std::vector<std::string> covered;
  for (const GoldenCase& g : kGolden) {
    if (g.table == 0) covered.emplace_back(g.name);
  }
  for (const std::string& name : KnownAnonymizers()) {
    EXPECT_NE(std::find(covered.begin(), covered.end(), name),
              covered.end())
        << "anonymizer '" << name << "' has no golden entry";
  }
}

TEST(DataPlaneEquivalenceTest, EveryAnonymizerReproducesSeedPartition) {
  const std::vector<Table> tables = GoldenTables();
  for (const GoldenCase& g : kGolden) {
    const auto algo = MakeAnonymizer(g.name);
    ASSERT_NE(algo, nullptr) << g.name;
    const AnonymizationResult r =
        algo->Run(tables[static_cast<size_t>(g.table)], g.k);
    EXPECT_EQ(r.cost, g.cost)
        << g.name << " k=" << g.k << " table=" << g.table;
    EXPECT_EQ(PartitionHash(r.partition), g.hash)
        << g.name << " k=" << g.k << " table=" << g.table
        << ": cost matches but the partition differs (tie-break drift)";
  }
}

TEST(DataPlaneEquivalenceTest, RepeatRunsAreDeterministic) {
  const std::vector<Table> tables = GoldenTables();
  for (const char* name :
       {"mdav", "cluster_greedy+local_search", "mdav+annealing"}) {
    for (const Table& t : tables) {
      const auto a = MakeAnonymizer(name)->Run(t, 2);
      const auto b = MakeAnonymizer(name)->Run(t, 2);
      EXPECT_EQ(a.cost, b.cost) << name;
      EXPECT_EQ(PartitionHash(a.partition), PartitionHash(b.partition))
          << name;
    }
  }
}

}  // namespace
}  // namespace kanon
