#include "core/anonymity.h"

#include "data/generators/medical.h"
#include "gtest/gtest.h"

namespace kanon {
namespace {

Table Rows(const std::vector<std::vector<std::string>>& rows) {
  Schema schema;
  for (size_t c = 0; c < rows[0].size(); ++c) {
    schema.AddAttribute("a" + std::to_string(c));
  }
  Table t(std::move(schema));
  for (const auto& row : rows) t.AppendStringRow(row);
  return t;
}

TEST(IsKAnonymousTest, DuplicatedRows) {
  const Table t = Rows({{"a", "b"}, {"a", "b"}, {"a", "b"}});
  EXPECT_TRUE(IsKAnonymous(t, 1));
  EXPECT_TRUE(IsKAnonymous(t, 2));
  EXPECT_TRUE(IsKAnonymous(t, 3));
  EXPECT_FALSE(IsKAnonymous(t, 4));
}

TEST(IsKAnonymousTest, DistinctRowsOnlyOneAnonymous) {
  const Table t = Rows({{"a"}, {"b"}});
  EXPECT_TRUE(IsKAnonymous(t, 1));
  EXPECT_FALSE(IsKAnonymous(t, 2));
}

TEST(IsKAnonymousTest, EmptyTableIsKAnonymous) {
  Schema schema({"a"});
  const Table t(std::move(schema));
  EXPECT_TRUE(IsKAnonymous(t, 5));
}

TEST(IsKAnonymousTest, MultisetSemantics) {
  // Two pairs: {a,b} twice and {c,d} twice -> 2-anonymous, not 3.
  const Table t = Rows({{"a", "b"}, {"c", "d"}, {"a", "b"}, {"c", "d"}});
  EXPECT_TRUE(IsKAnonymous(t, 2));
  EXPECT_FALSE(IsKAnonymous(t, 3));
}

TEST(AnonymityLevelTest, MinimumMultiplicity) {
  const Table t =
      Rows({{"a"}, {"a"}, {"a"}, {"b"}, {"b"}});
  EXPECT_EQ(AnonymityLevel(t), 2u);
}

TEST(AnonymityLevelTest, StarsMatchOnlyStars) {
  // A starred cell matches only another starred cell, textual
  // indistinguishability as in the paper's Section 1 example.
  Table t = Rows({{"x", "y"}, {"x", "z"}});
  EXPECT_EQ(AnonymityLevel(t), 1u);
  t.set(0, 1, kSuppressedCode);
  EXPECT_EQ(AnonymityLevel(t), 1u);  // ("x", *) vs ("x", z) still differ
  t.set(1, 1, kSuppressedCode);
  EXPECT_EQ(AnonymityLevel(t), 2u);  // both ("x", *)
}

TEST(IsKAnonymizerTest, PaperIntroExample) {
  // The paper's Section 1 2-anonymization: suppress first name and age of
  // the Stones; keep "john" and suppress last-name tail/race columns of
  // the two Johns. In our pure-suppression model: rows 0,2 keep (last,
  // race); rows 1,3 keep (first).
  const Table t = PaperIntroTable();
  Suppressor s(4, 4);
  // Rows 0 and 2 (Stones): suppress first, age.
  for (const RowId r : {0u, 2u}) {
    s.Suppress(r, 0);
    s.Suppress(r, 2);
  }
  // Rows 1 and 3 (Johns): suppress last, age, race.
  for (const RowId r : {1u, 3u}) {
    s.Suppress(r, 1);
    s.Suppress(r, 2);
    s.Suppress(r, 3);
  }
  EXPECT_TRUE(IsKAnonymizer(s, t, 2));
  EXPECT_FALSE(IsKAnonymizer(s, t, 3));
  EXPECT_EQ(s.Stars(), 10u);
}

TEST(InducedPartitionTest, GroupsMadeIdentical) {
  const Table t = Rows({{"a", "p"}, {"a", "q"}, {"b", "p"}});
  Suppressor s(3, 2);
  s.Suppress(0, 1);
  s.Suppress(1, 1);
  const Partition p = InducedPartition(s, t);
  // (a,*), (a,*), (b,p): two groups.
  EXPECT_EQ(p.num_groups(), 2u);
  EXPECT_EQ(p.TotalMembers(), 3u);
}

TEST(InducedPartitionTest, MergesGroupsWithIdenticalAnonymizedRows) {
  // Two planned pairs whose anonymized forms coincide: the induced
  // partition Π(t, V) merges them into one 4-row group, so the release
  // is even more anonymous than the planner's partition suggests.
  const Table t = Rows({{"a", "p"}, {"a", "q"}, {"a", "r"}, {"a", "s"}});
  Suppressor s(4, 2);
  for (RowId r = 0; r < 4; ++r) s.Suppress(r, 1);
  // Planner's intent: pairs {0,1} and {2,3}; anonymized rows are all
  // ("a", *), so the induced partition is a single group.
  const Partition induced = InducedPartition(s, t);
  EXPECT_EQ(induced.num_groups(), 1u);
  EXPECT_EQ(induced.groups[0].size(), 4u);
  EXPECT_TRUE(IsKAnonymizer(s, t, 4));
}

TEST(GroupIdenticalRowsTest, PartitionIsValid) {
  const Table t = Rows({{"a"}, {"b"}, {"a"}, {"a"}});
  const Partition p = GroupIdenticalRows(t);
  EXPECT_TRUE(IsValidPartition(p, 4, 1, 4));
  EXPECT_EQ(p.num_groups(), 2u);
}

}  // namespace
}  // namespace kanon
