#include "core/group_stats.h"

#include <algorithm>
#include <vector>

#include "core/cost.h"
#include "data/generators/uniform.h"
#include "gtest/gtest.h"
#include "util/random.h"

namespace kanon {
namespace {

Table MakeTable(RowId n, ColId m, uint64_t seed) {
  Rng rng(seed);
  Table t = UniformTable({.num_rows = n, .num_columns = m, .alphabet = 3},
                         &rng);
  for (RowId r = 0; r < n; ++r) {
    for (ColId c = 0; c < m; ++c) {
      if (rng.Uniform(8) == 0) t.set(r, c, kSuppressedCode);
    }
  }
  return t;
}

TEST(GroupStatsTest, MatchesScalarAnonCostOnRandomGroups) {
  const Table t = MakeTable(20, 6, 1);
  Rng rng(2);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<RowId> group;
    for (RowId r = 0; r < t.num_rows(); ++r) {
      if (rng.Uniform(3) == 0) group.push_back(r);
    }
    const GroupStats stats(t, group);
    EXPECT_EQ(stats.size(), group.size());
    EXPECT_EQ(stats.num_disagreeing(), NumDisagreeingColumns(t, group));
    EXPECT_EQ(stats.anon_cost(), AnonCost(t, group));
  }
}

TEST(GroupStatsTest, WhatIfProbesMatchScalarRecompute) {
  const Table t = MakeTable(18, 5, 3);
  Rng rng(4);
  for (int trial = 0; trial < 50; ++trial) {
    // A group of at least 1 member plus one outside row.
    std::vector<RowId> group;
    std::vector<RowId> outside;
    for (RowId r = 0; r < t.num_rows(); ++r) {
      (rng.Uniform(2) == 0 ? group : outside).push_back(r);
    }
    if (group.empty() || outside.empty()) continue;
    const GroupStats stats(t, group);
    const RowId in = outside[rng.Uniform(
        static_cast<uint32_t>(outside.size()))];
    const size_t out_idx = rng.Uniform(
        static_cast<uint32_t>(group.size()));
    const RowId out = group[out_idx];

    // CostWith == AnonCost(group + in).
    std::vector<RowId> with = group;
    with.push_back(in);
    EXPECT_EQ(stats.CostWith(in), AnonCost(t, with));

    // CostWithout == AnonCost(group - out).
    std::vector<RowId> without = group;
    without.erase(without.begin() + static_cast<ptrdiff_t>(out_idx));
    EXPECT_EQ(stats.CostWithout(out), AnonCost(t, without));

    // CostReplacing == AnonCost(group with out -> in).
    std::vector<RowId> replaced = group;
    replaced[out_idx] = in;
    EXPECT_EQ(stats.CostReplacing(out, in), AnonCost(t, replaced));
  }
}

TEST(GroupStatsTest, RandomEditSequenceStaysExact) {
  const Table t = MakeTable(16, 4, 5);
  Rng rng(6);
  GroupStats stats(t);
  std::vector<RowId> members;
  for (int step = 0; step < 400; ++step) {
    const bool add = members.empty() || rng.Uniform(2) == 0;
    if (add) {
      // Duplicates are fine: groups are multisets of row ids as far as
      // the counts are concerned.
      const RowId r = rng.Uniform(t.num_rows());
      stats.Add(r);
      members.push_back(r);
    } else {
      const size_t i = rng.Uniform(
          static_cast<uint32_t>(members.size()));
      stats.Remove(members[i]);
      members.erase(members.begin() + static_cast<ptrdiff_t>(i));
    }
    ASSERT_EQ(stats.anon_cost(), AnonCost(t, members)) << "step " << step;
  }
  stats.Clear();
  EXPECT_EQ(stats.size(), 0u);
  EXPECT_EQ(stats.anon_cost(), 0u);
}

TEST(GroupStatsTest, EmptyAndSingletonGroupsCostZero) {
  const Table t = MakeTable(5, 3, 7);
  GroupStats stats(t);
  EXPECT_EQ(stats.anon_cost(), 0u);
  stats.Add(0);
  EXPECT_EQ(stats.anon_cost(), 0u) << "one row disagrees with nothing";
  EXPECT_EQ(stats.num_disagreeing(), 0u);
}

}  // namespace
}  // namespace kanon
