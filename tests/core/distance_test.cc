#include "core/distance.h"

#include <vector>

#include "data/generators/uniform.h"
#include "gtest/gtest.h"
#include "util/random.h"

namespace kanon {
namespace {

Table CodesTable(const std::vector<std::vector<std::string>>& rows) {
  Schema schema;
  for (size_t c = 0; c < rows[0].size(); ++c) {
    schema.AddAttribute("a" + std::to_string(c));
  }
  Table t(std::move(schema));
  for (const auto& row : rows) t.AppendStringRow(row);
  return t;
}

TEST(HammingDistanceTest, PaperExample) {
  // Section 4 example: 1010 and 0110 differ in two coordinates.
  const Table t = CodesTable({{"1", "0", "1", "0"},
                              {"1", "1", "1", "0"},
                              {"0", "1", "1", "0"}});
  EXPECT_EQ(RowDistance(t, 0, 2), 2u);
  EXPECT_EQ(RowDistance(t, 0, 1), 1u);
  EXPECT_EQ(RowDistance(t, 1, 2), 1u);
}

TEST(HammingDistanceTest, IdentityOfIndiscernibles) {
  const Table t = CodesTable({{"a", "b"}, {"a", "b"}, {"x", "b"}});
  EXPECT_EQ(RowDistance(t, 0, 1), 0u);
  EXPECT_GT(RowDistance(t, 0, 2), 0u);
}

TEST(HammingDistanceTest, Symmetry) {
  Rng rng(1);
  const Table t = UniformTable({.num_rows = 10, .num_columns = 6}, &rng);
  for (RowId a = 0; a < t.num_rows(); ++a) {
    for (RowId b = 0; b < t.num_rows(); ++b) {
      EXPECT_EQ(RowDistance(t, a, b), RowDistance(t, b, a));
    }
  }
}

// Property test over random tables: d is a metric (the paper relies on
// the triangle inequality in Lemma 4.2/4.3 and in Reduce).
class MetricPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MetricPropertyTest, TriangleInequality) {
  Rng rng(GetParam());
  const Table t = UniformTable(
      {.num_rows = 12, .num_columns = 7, .alphabet = 3}, &rng);
  for (RowId a = 0; a < t.num_rows(); ++a) {
    for (RowId b = 0; b < t.num_rows(); ++b) {
      for (RowId c = 0; c < t.num_rows(); ++c) {
        EXPECT_LE(RowDistance(t, a, c),
                  RowDistance(t, a, b) + RowDistance(t, b, c));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MetricPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(SetDiameterTest, EmptyAndSingleton) {
  const Table t = CodesTable({{"a", "b"}});
  EXPECT_EQ(SetDiameter(t, std::vector<RowId>{}), 0u);
  EXPECT_EQ(SetDiameter(t, std::vector<RowId>{0}), 0u);
}

TEST(SetDiameterTest, PaperExampleGroupDiameter) {
  // The 3-group {1010, 1110, 0110} of Section 4 has diameter 2.
  const Table t = CodesTable({{"1", "0", "1", "0"},
                              {"1", "1", "1", "0"},
                              {"0", "1", "1", "0"}});
  const std::vector<RowId> all = {0, 1, 2};
  EXPECT_EQ(SetDiameter(t, all), 2u);
}

TEST(DistanceMatrixTest, MatchesDirectComputation) {
  Rng rng(2);
  const Table t = UniformTable({.num_rows = 15, .num_columns = 5}, &rng);
  const DistanceMatrix dm(t);
  EXPECT_EQ(dm.num_rows(), 15u);
  for (RowId a = 0; a < t.num_rows(); ++a) {
    EXPECT_EQ(dm.at(a, a), 0u);
    for (RowId b = 0; b < t.num_rows(); ++b) {
      EXPECT_EQ(dm.at(a, b), RowDistance(t, a, b));
    }
  }
}

TEST(DistanceMatrixTest, DiameterMatchesSetDiameter) {
  Rng rng(3);
  const Table t = UniformTable({.num_rows = 12, .num_columns = 6}, &rng);
  const DistanceMatrix dm(t);
  const std::vector<RowId> rows = {1, 4, 7, 9};
  EXPECT_EQ(dm.Diameter(rows), SetDiameter(t, rows));
}

TEST(DistanceMatrixTest, KthNearestIsMonotone) {
  Rng rng(4);
  const Table t = UniformTable({.num_rows = 10, .num_columns = 8}, &rng);
  const DistanceMatrix dm(t);
  for (RowId r = 0; r < t.num_rows(); ++r) {
    for (RowId j = 1; j + 1 < t.num_rows(); ++j) {
      EXPECT_LE(dm.KthNearestDistance(r, j),
                dm.KthNearestDistance(r, j + 1));
    }
  }
}

TEST(DistanceMatrixTest, FirstNearestOfDuplicateIsZero) {
  const Table t = CodesTable({{"a", "b"}, {"a", "b"}, {"c", "d"}});
  const DistanceMatrix dm(t);
  EXPECT_EQ(dm.KthNearestDistance(0, 1), 0u);  // row 1 is identical
  EXPECT_EQ(dm.KthNearestDistance(2, 1), 2u);  // nearest differs fully
}

}  // namespace
}  // namespace kanon
