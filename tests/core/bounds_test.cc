#include "core/bounds.h"

#include "core/cost.h"
#include "data/generators/clustered.h"
#include "data/generators/uniform.h"
#include "gtest/gtest.h"
#include "util/random.h"

namespace kanon {
namespace {

TEST(KnnLowerBoundTest, ZeroForKOne) {
  Rng rng(1);
  const Table t = UniformTable({.num_rows = 6, .num_columns = 4}, &rng);
  const DistanceMatrix dm(t);
  EXPECT_EQ(KnnLowerBound(t, dm, 1), 0u);
}

TEST(KnnLowerBoundTest, ZeroWhenEveryRowDuplicated) {
  Schema schema({"a", "b"});
  Table t(std::move(schema));
  for (int i = 0; i < 3; ++i) {
    t.AppendStringRow({"x", "y"});
    t.AppendStringRow({"x", "y"});
  }
  const DistanceMatrix dm(t);
  EXPECT_EQ(KnnLowerBound(t, dm, 2), 0u);
}

TEST(KnnLowerBoundTest, PositiveForDistinctRows) {
  Schema schema({"a"});
  Table t(std::move(schema));
  t.AppendStringRow({"p"});
  t.AppendStringRow({"q"});
  t.AppendStringRow({"r"});
  const DistanceMatrix dm(t);
  // Every row's nearest other row differs in the single column.
  EXPECT_EQ(KnnLowerBound(t, dm, 2), 3u);
}

// Property: the kNN bound never exceeds the cost of any valid partition
// (we use chunk partitions as arbitrary feasible solutions).
class KnnBoundPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(KnnBoundPropertyTest, BoundBelowFeasibleCosts) {
  Rng rng(GetParam());
  const uint32_t n = 14;
  const Table t = ClusteredTable(
      {.num_rows = n, .num_columns = 6, .alphabet = 5, .num_clusters = 3,
       .noise_flips = 1},
      &rng);
  const DistanceMatrix dm(t);
  for (const size_t k : {2u, 3u, 4u}) {
    const size_t lb = KnnLowerBound(t, dm, k);
    for (int trial = 0; trial < 5; ++trial) {
      Group all(n);
      for (RowId r = 0; r < n; ++r) all[r] = r;
      rng.Shuffle(&all);
      Partition p;
      p.groups = {all};
      p = SplitLargeGroups(p, k);
      EXPECT_LE(lb, PartitionCost(t, p));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KnnBoundPropertyTest,
                         ::testing::Range<uint64_t>(1, 11));

TEST(HalfDiameterVolumeBoundTest, MatchesLemma41LeftSide) {
  Rng rng(3);
  const Table t = UniformTable(
      {.num_rows = 10, .num_columns = 5, .alphabet = 3}, &rng);
  Partition p;
  p.groups = {{0, 1, 2, 3, 4}, {5, 6, 7, 8, 9}};
  // Lemma 4.1: |S| d(S) / 2 <= ANON(S), summed.
  EXPECT_LE(HalfDiameterVolumeBound(t, p), PartitionCost(t, p));
}

TEST(DiameterVolumeUpperBoundTest, MatchesLemma41RightSide) {
  Rng rng(4);
  const Table t = UniformTable(
      {.num_rows = 12, .num_columns = 6, .alphabet = 3}, &rng);
  Partition p;
  p.groups = {{0, 1, 2}, {3, 4, 5}, {6, 7, 8}, {9, 10, 11}};
  // Corrected Lemma 4.1: ANON(S) <= |S| (|S|-1) d(S), summed.
  EXPECT_GE(DiameterVolumeUpperBound(t, p), PartitionCost(t, p));
}

TEST(AsPrintedDiameterUpperBoundTest, CanBeViolated) {
  // The one-hot counterexample from DESIGN.md: the as-printed bound
  // |S| d(S) falls below the true ANON cost.
  Schema schema({"c0", "c1", "c2"});
  Table t(std::move(schema));
  t.AppendStringRow({"1", "0", "0"});
  t.AppendStringRow({"0", "1", "0"});
  t.AppendStringRow({"0", "0", "1"});
  Partition p;
  p.groups = {{0, 1, 2}};
  EXPECT_LT(AsPrintedDiameterUpperBound(t, p), PartitionCost(t, p));
  EXPECT_GE(DiameterVolumeUpperBound(t, p), PartitionCost(t, p));
}

// Property: the Lemma 4.1 sandwich holds on random partitions.
class Lemma41SandwichTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(Lemma41SandwichTest, HoldsOnRandomPartitions) {
  Rng rng(GetParam());
  const uint32_t n = 12;
  const Table t = UniformTable(
      {.num_rows = n, .num_columns = 7, .alphabet = 4}, &rng);
  Group all(n);
  for (RowId r = 0; r < n; ++r) all[r] = r;
  rng.Shuffle(&all);
  Partition p;
  p.groups = {all};
  p = SplitLargeGroups(p, 3);
  const size_t cost = PartitionCost(t, p);
  EXPECT_LE(HalfDiameterVolumeBound(t, p), cost);
  EXPECT_GE(DiameterVolumeUpperBound(t, p), cost);  // corrected bound
}

INSTANTIATE_TEST_SUITE_P(Seeds, Lemma41SandwichTest,
                         ::testing::Range<uint64_t>(1, 13));

}  // namespace
}  // namespace kanon
