#include "core/partition.h"

#include "gtest/gtest.h"

namespace kanon {
namespace {

Table OneColumn(const std::vector<std::string>& values) {
  Schema schema({"v"});
  Table t(std::move(schema));
  for (const auto& v : values) t.AppendStringRow({v});
  return t;
}

TEST(PartitionTest, TotalMembersAndToString) {
  Partition p;
  p.groups = {{0, 3}, {1, 2, 4}};
  EXPECT_EQ(p.num_groups(), 2u);
  EXPECT_EQ(p.TotalMembers(), 5u);
  EXPECT_EQ(p.ToString(), "{0,3} {1,2,4}");
}

TEST(IsValidCoverTest, AcceptsOverlaps) {
  Partition p;
  p.groups = {{0, 1}, {1, 2}};
  EXPECT_TRUE(IsValidCover(p, 3, 2, 2));
  EXPECT_FALSE(IsValidPartition(p, 3, 2, 2));  // row 1 covered twice
}

TEST(IsValidCoverTest, RejectsUncovered) {
  Partition p;
  p.groups = {{0, 1}};
  EXPECT_FALSE(IsValidCover(p, 3, 2, 2));
}

TEST(IsValidCoverTest, RejectsSizeViolations) {
  Partition p;
  p.groups = {{0}, {1, 2}};
  EXPECT_FALSE(IsValidCover(p, 3, 2, 3));  // {0} too small
  EXPECT_TRUE(IsValidCover(p, 3, 1, 3));
  Partition q;
  q.groups = {{0, 1, 2}};
  EXPECT_FALSE(IsValidCover(q, 3, 1, 2));  // too large
}

TEST(IsValidCoverTest, RejectsOutOfRangeRow) {
  Partition p;
  p.groups = {{0, 7}};
  EXPECT_FALSE(IsValidCover(p, 3, 1, 5));
}

TEST(IsValidPartitionTest, Valid) {
  Partition p;
  p.groups = {{0, 2}, {1, 3}};
  EXPECT_TRUE(IsValidPartition(p, 4, 2, 2));
}

TEST(IsValidPartitionTest, EmptyPartitionOfEmptyUniverse) {
  Partition p;
  EXPECT_TRUE(IsValidPartition(p, 0, 2, 5));
  EXPECT_FALSE(IsValidPartition(p, 1, 1, 5));
}

TEST(SplitLargeGroupsTest, SmallGroupsUntouched) {
  Partition p;
  p.groups = {{0, 1, 2}, {3, 4}};
  const Partition out = SplitLargeGroups(p, 2);
  EXPECT_EQ(out.num_groups(), 2u);
  EXPECT_EQ(out.groups[0], (Group{0, 1, 2}));
}

TEST(SplitLargeGroupsTest, SplitsToWlogRange) {
  Partition p;
  Group big;
  for (RowId r = 0; r < 11; ++r) big.push_back(r);
  p.groups = {big};
  const size_t k = 2;
  const Partition out = SplitLargeGroups(p, k);
  EXPECT_TRUE(IsValidPartition(out, 11, k, 2 * k - 1));
  // 11 = 2+2+2+2+3 -> 5 chunks.
  EXPECT_EQ(out.num_groups(), 5u);
}

TEST(SplitLargeGroupsTest, ExactMultipleOfK) {
  Partition p;
  p.groups = {{0, 1, 2, 3, 4, 5}};
  const Partition out = SplitLargeGroups(p, 3);
  EXPECT_EQ(out.num_groups(), 2u);
  EXPECT_TRUE(IsValidPartition(out, 6, 3, 5));
}

TEST(SplitLargeGroupsTest, ExactlyTwoKMinusOneKept) {
  Partition p;
  p.groups = {{0, 1, 2, 3, 4}};
  const Partition out = SplitLargeGroups(p, 3);
  EXPECT_EQ(out.num_groups(), 1u);  // 5 = 2*3-1 is already in range
}

TEST(GroupIdenticalRowsTest, Multiplicities) {
  const Table t = OneColumn({"a", "b", "a", "c", "b", "a"});
  const Partition p = GroupIdenticalRows(t);
  EXPECT_EQ(p.num_groups(), 3u);
  EXPECT_TRUE(IsValidPartition(p, 6, 1, 6));
  size_t max_size = 0;
  for (const Group& g : p.groups) max_size = std::max(max_size, g.size());
  EXPECT_EQ(max_size, 3u);  // the "a" group
}

}  // namespace
}  // namespace kanon
