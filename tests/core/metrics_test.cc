#include "core/metrics.h"

#include "gtest/gtest.h"

namespace kanon {
namespace {

Table Rows(const std::vector<std::vector<std::string>>& rows) {
  Schema schema;
  for (size_t c = 0; c < rows[0].size(); ++c) {
    schema.AddAttribute("a" + std::to_string(c));
  }
  Table t(std::move(schema));
  for (const auto& row : rows) t.AppendStringRow(row);
  return t;
}

TEST(ComputeMetricsTest, StarsAndFraction) {
  const Table t = Rows({{"a", "b"}, {"a", "c"}, {"x", "y"}, {"x", "y"}});
  Partition p;
  p.groups = {{0, 1}, {2, 3}};
  const AnonymizationMetrics m = ComputeMetrics(t, p, 2);
  EXPECT_EQ(m.stars, 2u);
  EXPECT_DOUBLE_EQ(m.star_fraction, 2.0 / 8.0);
}

TEST(ComputeMetricsTest, Discernibility) {
  const Table t = Rows({{"a"}, {"a"}, {"a"}, {"b"}, {"b"}});
  Partition p;
  p.groups = {{0, 1, 2}, {3, 4}};
  const AnonymizationMetrics m = ComputeMetrics(t, p, 2);
  EXPECT_EQ(m.discernibility, 9u + 4u);
}

TEST(ComputeMetricsTest, GroupSizeRange) {
  const Table t = Rows({{"a"}, {"a"}, {"a"}, {"b"}, {"b"}});
  Partition p;
  p.groups = {{0, 1, 2}, {3, 4}};
  const AnonymizationMetrics m = ComputeMetrics(t, p, 2);
  EXPECT_EQ(m.min_group, 2u);
  EXPECT_EQ(m.max_group, 3u);
}

TEST(ComputeMetricsTest, AvgClassRatioIdealIsOne) {
  const Table t = Rows({{"a"}, {"a"}, {"b"}, {"b"}});
  Partition p;
  p.groups = {{0, 1}, {2, 3}};
  const AnonymizationMetrics m = ComputeMetrics(t, p, 2);
  EXPECT_DOUBLE_EQ(m.avg_class_ratio, 1.0);  // (4/2)/2
}

TEST(ComputeMetricsTest, ToStringMentionsStars) {
  const Table t = Rows({{"a"}, {"b"}});
  Partition p;
  p.groups = {{0, 1}};
  const AnonymizationMetrics m = ComputeMetrics(t, p, 2);
  EXPECT_NE(m.ToString().find("stars=2"), std::string::npos);
}

}  // namespace
}  // namespace kanon
