#include <cstdio>

#include "algo/registry.h"
#include "core/anonymity.h"
#include "core/metrics.h"
#include "data/csv_table.h"
#include "data/generators/census.h"
#include "data/generators/medical.h"
#include "gtest/gtest.h"
#include "util/random.h"

/// \file
/// Integration tests spanning the full pipeline: generate or load data,
/// anonymize with a registry algorithm, export to CSV, re-import, and
/// verify the privacy property end to end.

namespace kanon {
namespace {

TEST(EndToEndTest, CsvInAnonymizeCsvOut) {
  const std::string csv =
      "first,last,age,race\n"
      "harry,stone,34,afr-am\n"
      "john,reyser,36,cauc\n"
      "beatrice,stone,47,afr-am\n"
      "john,ramos,22,hisp\n";
  const StatusOr<Table> table = ParseTableCsv(csv);
  ASSERT_TRUE(table.ok()) << table.status().ToString();

  auto algo = MakeAnonymizer("exact_dp");
  ASSERT_NE(algo, nullptr);
  const auto result = algo->Run(*table, 2);
  const Table anonymized = result.MakeSuppressor(*table).Apply(*table);
  ASSERT_TRUE(IsKAnonymous(anonymized, 2));

  // Round-trip the anonymized table through CSV.
  const std::string out_csv = TableToCsv(anonymized);
  const StatusOr<Table> back = ParseTableCsv(out_csv);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_TRUE(IsKAnonymous(*back, 2));
  EXPECT_EQ(back->CountSuppressedCells(), result.cost);
}

TEST(EndToEndTest, PaperIntroExampleOptimalCost) {
  // The paper's Section 1 relation: the hand 2-anonymization shown in the
  // paper keeps (last, race) for the Stones and (first) for the Johns,
  // i.e. 10 stars under pure suppression. The exact solver must do at
  // least as well.
  const Table t = PaperIntroTable();
  auto exact = MakeAnonymizer("exact_dp");
  const auto result = exact->Run(t, 2);
  EXPECT_LE(result.cost, 10u);
  // Rows must pair as {stone, stone} and {john, john}: verify grouping.
  for (const Group& g : result.partition.groups) {
    ASSERT_EQ(g.size(), 2u);
  }
}

TEST(EndToEndTest, AllAlgorithmsAgreeOnPrivacyGuarantee) {
  Rng rng(1);
  const Table t = CensusTable({.num_rows = 40}, &rng);
  for (const std::string name :
       {"ball_cover", "mondrian", "cluster_greedy", "random_partition",
        "ball_cover+local_search"}) {
    auto algo = MakeAnonymizer(name);
    ASSERT_NE(algo, nullptr) << name;
    for (const size_t k : {2u, 4u}) {
      const auto result = algo->Run(t, k);
      const Table anonymized =
          result.MakeSuppressor(t).Apply(t);
      EXPECT_TRUE(IsKAnonymous(anonymized, k))
          << name << " k=" << k;
      EXPECT_EQ(anonymized.CountSuppressedCells(), result.cost)
          << name << " k=" << k;
    }
  }
}

TEST(EndToEndTest, MetricsConsistentWithAnonymizedTable) {
  Rng rng(2);
  const Table t = MedicalTable({.num_rows = 24, .name_pool = 5}, &rng);
  auto algo = MakeAnonymizer("ball_cover");
  const auto result = algo->Run(t, 3);
  const AnonymizationMetrics metrics =
      ComputeMetrics(t, result.partition, 3);
  EXPECT_EQ(metrics.stars, result.cost);
  EXPECT_GE(metrics.min_group, 3u);
  const Table anonymized = result.MakeSuppressor(t).Apply(t);
  EXPECT_EQ(anonymized.CountSuppressedCells(), metrics.stars);
}

TEST(EndToEndTest, SavedFileLoadsAndStaysAnonymous) {
  Rng rng(3);
  const Table t = CensusTable({.num_rows = 30}, &rng);
  auto algo = MakeAnonymizer("mondrian");
  const auto result = algo->Run(t, 5);
  const Table anonymized = result.MakeSuppressor(t).Apply(t);
  const std::string path = testing::TempDir() + "/kanon_e2e.csv";
  ASSERT_TRUE(WriteTableCsv(anonymized, path).ok());
  const StatusOr<Table> loaded = ReadTableCsv(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(IsKAnonymous(*loaded, 5));
  std::remove(path.c_str());
}

TEST(EndToEndTest, IncreasingKNeverDecreasesCost) {
  Rng rng(4);
  const Table t = CensusTable({.num_rows = 36}, &rng);
  auto algo = MakeAnonymizer("cluster_greedy");
  // Heuristics are not guaranteed monotone, but the trend must hold
  // between k=2 and k=12 on skewed census data.
  const size_t low = algo->Run(t, 2).cost;
  const size_t high = algo->Run(t, 12).cost;
  EXPECT_LE(low, high);
}

}  // namespace
}  // namespace kanon
