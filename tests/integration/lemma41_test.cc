#include <algorithm>
#include <cmath>
#include <functional>

#include "algo/exact_dp.h"
#include "core/cost.h"
#include "core/distance.h"
#include "data/generators/clustered.h"
#include "data/generators/uniform.h"
#include "gtest/gtest.h"
#include "util/random.h"

/// \file
/// Lemma 4.1 verified against true optima, in its PROVABLE form (see
/// DESIGN.md "Lemma 4.1 constants"): for any group S,
///     |S| · d(S)  <=  ANON(S)  <=  |S| · (|S|-1) · d(S),
/// because the number of disagreeing columns D_S satisfies
/// d(S) <= D_S <= (|S|-1) d(S) (union of per-pair difference sets w.r.t.
/// an anchor). Hence for the diameter-sum minimizing (k, 2k-1)-partition
/// Π*:
///     k · dΠ*  <=  OPT(V)  <=  (2k-1)(2k-2) · dΠ*.
/// The paper's as-printed "ANON(S) <= |S| d(S)" is an OCR/typo artifact
/// (one-hot rows are a counterexample); the corrected chain still yields
/// the abstract's O(k log k) ratio with constant 4. We assert the
/// provable sandwich against true optima from exhaustive search, and
/// bench E5 additionally *measures* how often the tighter as-printed
/// bound happens to hold in practice.

namespace kanon {
namespace {

/// Exhaustive minimum diameter sum over all (k, 2k-1)-partitions.
/// Exponential; for n <= 10 only.
size_t MinDiameterSum(const Table& table, size_t k) {
  const RowId n = table.num_rows();
  const DistanceMatrix dm(table);
  std::vector<RowId> unassigned(n);
  for (RowId r = 0; r < n; ++r) unassigned[r] = r;

  size_t best = static_cast<size_t>(-1);
  std::vector<bool> assigned(n, false);
  // Anchored enumeration of all (k, 2k-1)-partitions.
  std::function<void(size_t)> recurse = [&](size_t current_sum) {
    if (current_sum >= best) return;
    RowId anchor = n;
    for (RowId r = 0; r < n; ++r) {
      if (!assigned[r]) {
        anchor = r;
        break;
      }
    }
    if (anchor == n) {
      best = current_sum;
      return;
    }
    std::vector<RowId> candidates;
    for (RowId r = anchor + 1; r < n; ++r) {
      if (!assigned[r]) candidates.push_back(r);
    }
    Group group = {anchor};
    std::function<void(size_t)> extend = [&](size_t pos) {
      if (group.size() >= k) {
        for (const RowId r : group) assigned[r] = true;
        recurse(current_sum + dm.Diameter(group));
        for (const RowId r : group) assigned[r] = false;
      }
      if (group.size() == 2 * k - 1) return;
      for (size_t i = pos; i < candidates.size(); ++i) {
        group.push_back(candidates[i]);
        extend(i + 1);
        group.pop_back();
      }
    };
    extend(0);
  };
  recurse(0);
  return best;
}

struct LemmaCase {
  uint64_t seed;
  uint32_t n;
  uint32_t m;
  uint32_t alphabet;
  size_t k;
  bool clustered;
};

class Lemma41ExactTest : public ::testing::TestWithParam<LemmaCase> {};

TEST_P(Lemma41ExactTest, SandwichHoldsAgainstTrueOptima) {
  const LemmaCase c = GetParam();
  Rng rng(c.seed);
  Table t = [&] {
    if (c.clustered) {
      ClusteredTableOptions opt;
      opt.num_rows = c.n;
      opt.num_columns = c.m;
      opt.alphabet = c.alphabet;
      opt.num_clusters = 3;
      opt.noise_flips = 1;
      return ClusteredTable(opt, &rng);
    }
    UniformTableOptions opt;
    opt.num_rows = c.n;
    opt.num_columns = c.m;
    opt.alphabet = c.alphabet;
    return UniformTable(opt, &rng);
  }();

  ExactDpAnonymizer exact;
  const size_t opt_cost = exact.Run(t, c.k).cost;
  const size_t min_diam = MinDiameterSum(t, c.k);

  // Left inequality: k * dΠ* <= OPT (strictly stronger than the paper's
  // (k/2) form; D_S >= d(S) and |S| >= k).
  EXPECT_LE(c.k * min_diam, opt_cost)
      << "k=" << c.k << " dPi*=" << min_diam << " OPT=" << opt_cost;
  // Right inequality, corrected constants: OPT <= (2k-1)(2k-2) * dΠ*
  // (degenerates to OPT == 0 when dΠ* == 0).
  if (min_diam == 0) {
    EXPECT_EQ(opt_cost, 0u);
  } else {
    EXPECT_LE(opt_cost, (2 * c.k - 1) * (2 * c.k - 2) * min_diam)
        << "k=" << c.k << " dPi*=" << min_diam << " OPT=" << opt_cost;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, Lemma41ExactTest,
    ::testing::Values(LemmaCase{1, 8, 4, 3, 2, false},
                      LemmaCase{2, 8, 5, 2, 2, false},
                      LemmaCase{3, 9, 4, 3, 3, false},
                      LemmaCase{4, 9, 6, 4, 2, false},
                      LemmaCase{5, 10, 4, 2, 2, false},
                      LemmaCase{6, 8, 4, 4, 4, false},
                      LemmaCase{7, 9, 5, 5, 2, true},
                      LemmaCase{8, 10, 5, 4, 3, true},
                      LemmaCase{9, 8, 6, 3, 2, true},
                      LemmaCase{10, 10, 6, 2, 5, false}));

// Per-group sandwich: |S| d(S) <= ANON(S) <= |S| (|S|-1) d(S) on random
// groups (the corrected building block of Lemma 4.1).
class AnonSandwichTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AnonSandwichTest, GroupCostBetweenDiameterBounds) {
  Rng rng(GetParam());
  const uint32_t n = 12;
  const Table t = UniformTable(
      {.num_rows = n, .num_columns = 8, .alphabet = static_cast<uint32_t>(2 + GetParam() % 4)},
      &rng);
  for (int trial = 0; trial < 20; ++trial) {
    const uint32_t size = 2 + rng.Uniform(5);
    const std::vector<uint32_t> picks =
        rng.SampleWithoutReplacement(n, size);
    const Group g(picks.begin(), picks.end());
    const size_t anon = AnonCost(t, g);
    const size_t diam = SetDiameter(t, g);
    EXPECT_GE(anon, g.size() * diam);
    EXPECT_LE(anon, g.size() * (g.size() - 1) * diam);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AnonSandwichTest,
                         ::testing::Range<uint64_t>(1, 13));

TEST(AnonSandwichTest, OneHotCounterexampleToAsPrintedBound) {
  // Three one-hot rows: diameter 2 but three disagreeing columns, so
  // ANON(S) = 9 > |S| d(S) = 6 — the as-printed Lemma 4.1 upper bound
  // fails while the corrected |S|(|S|-1)d(S) = 12 holds.
  Schema schema({"c0", "c1", "c2"});
  Table t(std::move(schema));
  t.AppendStringRow({"1", "0", "0"});
  t.AppendStringRow({"0", "1", "0"});
  t.AppendStringRow({"0", "0", "1"});
  const Group g = {0, 1, 2};
  EXPECT_EQ(SetDiameter(t, g), 2u);
  EXPECT_EQ(AnonCost(t, g), 9u);
  EXPECT_GT(AnonCost(t, g), g.size() * SetDiameter(t, g));
  EXPECT_LE(AnonCost(t, g), g.size() * (g.size() - 1) * SetDiameter(t, g));
}

TEST(Lemma41ZeroTest, ZeroDiameterImpliesZeroCost) {
  // When the min diameter sum is 0 both sides of the sandwich collapse.
  Rng rng(42);
  ClusteredTableOptions opt;
  opt.num_rows = 8;
  opt.num_clusters = 4;
  opt.noise_flips = 0;
  const Table t = ClusteredTable(opt, &rng);
  ExactDpAnonymizer exact;
  EXPECT_EQ(MinDiameterSum(t, 2), 0u);
  EXPECT_EQ(exact.Run(t, 2).cost, 0u);
}

}  // namespace
}  // namespace kanon
