// chaos_service — seeded fault-injection drills against the service
// stack (service/chaos.h). Each schedule derives a fault plan and a
// mixed workload from one seed, runs it on a live queue + worker pool +
// cache + journal + checkpoint store + watchdog, and checks the six
// robustness invariants (every job answered or typed-failed; no
// tainted cache hits; journal replays from any crash prefix; snapshots
// never silently corrupt; resume is deterministic; the watchdog
// preempts exactly the stalled).
//
// Usage:
//   ./chaos_service [--chaos-seed=N] [--schedules=N] [--jobs=N]
//                   [--scratch=DIR] [--no-journal] [--no-checkpoints]
//                   [--no-watchdog] [--verbose] [--version]
//
//   Runs schedules with seeds chaos-seed, chaos-seed+1, ... and exits
//   nonzero if any schedule reports a violation. Schedule 0 of the run
//   is executed twice and its outcome fingerprints compared, so every
//   invocation also proves seed-reproducibility.
//
// Exit codes: 0 all schedules passed, 1 usage error, 3 invariant
// violation, 4 reproducibility failure.

#include <cstdio>
#include <iostream>
#include <limits>

#include "service/chaos.h"
#include "util/build_info.h"
#include "util/cli.h"

int main(int argc, char** argv) {
  using namespace kanon;
  const CommandLine cl = CommandLine::Parse(argc, argv);

  if (cl.GetBool("version", false)) {
    std::cout << "chaos_service " << BuildInfoString() << "\n";
    return 0;
  }

  const StatusOr<long long> seed =
      cl.GetValidatedInt("chaos-seed", 1, 0,
                         std::numeric_limits<long long>::max());
  const StatusOr<long long> schedules =
      cl.GetValidatedInt("schedules", 20, 1, 1000000);
  const StatusOr<long long> jobs = cl.GetValidatedInt("jobs", 24, 1, 4096);
  for (const auto* flag : {&seed, &schedules, &jobs}) {
    if (!flag->ok()) {
      std::cerr << "error: " << flag->status().message() << "\n";
      return 1;
    }
  }

  ChaosScheduleOptions options;
  options.jobs = static_cast<size_t>(*jobs);
  options.with_journal = !cl.GetBool("no-journal", false);
  options.with_checkpoints = !cl.GetBool("no-checkpoints", false);
  options.with_watchdog = !cl.GetBool("no-watchdog", false);
  options.scratch_dir = cl.GetString("scratch", "/tmp");
  options.verbose = cl.GetBool("verbose", false);

  // Reproducibility gate: the first seed, run twice, must produce the
  // same schedule digest bit-for-bit.
  options.seed = static_cast<uint64_t>(*seed);
  const ChaosReport first = RunChaosSchedule(options);
  const ChaosReport again = RunChaosSchedule(options);
  if (first.outcome_fingerprint != again.outcome_fingerprint) {
    std::cerr << "chaos_service: seed " << options.seed
              << " is NOT reproducible: fingerprints "
              << first.outcome_fingerprint << " vs "
              << again.outcome_fingerprint << "\n";
    return 4;
  }

  int failures = 0;
  for (long long i = 0; i < *schedules; ++i) {
    options.seed = static_cast<uint64_t>(*seed + i);
    const ChaosReport report =
        (i == 0) ? first : RunChaosSchedule(options);
    std::printf(
        "seed=%llu submitted=%zu ok=%zu error=%zu rejected=%zu "
        "fires=%llu retries=%llu shed=%llu cache_rejected=%llu "
        "ckpts=%llu snapshots=%llu resumes=%llu preempted=%llu "
        "fingerprint=%016llx %s\n",
        static_cast<unsigned long long>(report.seed), report.submitted,
        report.answered_ok, report.answered_error, report.rejected,
        static_cast<unsigned long long>(report.fires),
        static_cast<unsigned long long>(report.retries),
        static_cast<unsigned long long>(report.shed),
        static_cast<unsigned long long>(report.cache_rejected),
        static_cast<unsigned long long>(report.checkpoints_written),
        static_cast<unsigned long long>(report.snapshots_checked),
        static_cast<unsigned long long>(report.resumes_verified),
        static_cast<unsigned long long>(report.watchdog_preempted),
        static_cast<unsigned long long>(report.outcome_fingerprint),
        report.passed() ? "PASS" : "FAIL");
    if (!report.passed()) {
      ++failures;
      for (const std::string& violation : report.violations) {
        std::cerr << "  violation: " << violation << "\n";
      }
    }
  }
  if (failures > 0) {
    std::cerr << "chaos_service: " << failures << " schedule(s) FAILED\n";
    return 3;
  }
  std::cout << "chaos_service: all " << *schedules
            << " schedule(s) passed\n";
  return 0;
}
