// Scenario: the homogeneity attack, and the fix. A hospital publishes a
// k-anonymous table of (age_band, zip-like quasi-identifiers, diagnosis).
// An adversary who merely locates the victim's k-group learns the
// diagnosis whenever the group is diagnosis-homogeneous — k-anonymity
// (the paper's guarantee) does not forbid that. This example shows the
// attack on a real release of the paper's algorithm and the
// distinct-l-diversity merge that repairs it.
//
// Run:  ./example_diversity_attack [--rows=40] [--k=3] [--seed=5]

#include <iostream>

#include "algo/registry.h"
#include "core/cost.h"
#include "data/generators/medical.h"
#include "privacy/diversity.h"
#include "util/cli.h"
#include "util/random.h"

int main(int argc, char** argv) {
  using namespace kanon;
  const CommandLine cl = CommandLine::Parse(argc, argv);
  const uint32_t rows = static_cast<uint32_t>(cl.GetInt("rows", 40));
  const size_t k = static_cast<size_t>(cl.GetInt("k", 3));
  Rng rng(static_cast<uint64_t>(cl.GetInt("seed", 5)));

  const Table t = MedicalTable({.num_rows = rows, .name_pool = 5}, &rng);
  const ColId sensitive = t.schema().FindAttribute("procedure");

  auto algo = MakeAnonymizer("ball_cover+local_search");
  auto result = algo->Run(t, k);
  std::cout << k << "-anonymous release by '" << algo->name() << "': "
            << result.cost << " stars, "
            << result.partition.num_groups() << " groups\n";

  const double exposure =
      HomogeneityExposure(t, result.partition, sensitive);
  std::cout << "homogeneity attack: " << exposure * 100.0
            << "% of patients are in groups with a single distinct "
            << "procedure\n";
  for (const Group& g : result.partition.groups) {
    if (GroupDiversity(t, g, sensitive) == 1) {
      std::cout << "  leaked group " << "{";
      for (size_t i = 0; i < g.size(); ++i) {
        std::cout << (i ? "," : "") << g[i];
      }
      std::cout << "}: every member had '"
                << t.schema().Decode(sensitive, t.at(g[0], sensitive))
                << "'\n";
    }
  }

  const size_t l = 2;
  Partition upgraded = result.partition;
  if (!MergeForDiversity(t, sensitive, l, &upgraded)) {
    std::cout << "table lacks " << l
              << " distinct sensitive values; cannot diversify\n";
    return 1;
  }
  std::cout << "\nafter the distinct-" << l << "-diversity merge: "
            << upgraded.num_groups() << " groups, "
            << PartitionCost(t, upgraded) << " stars, exposure "
            << HomogeneityExposure(t, upgraded, sensitive) * 100.0
            << "%\n";
  std::cout << "k-anonymity preserved: groups only grew (min size >= "
            << k << ")\n";
  return 0;
}
