// Scenario: a hospital wants to publish yesterday's imaging log for an
// epidemiology study without identifying patients (the paper's
// motivating example, at realistic size). Generates a synthetic log,
// anonymizes it with the paper's strongly polynomial algorithm, and
// shows what a curious reader of the published table actually learns.
//
// Run:  ./example_medical_records [--rows=24] [--k=3] [--seed=7]

#include <iostream>
#include <map>

#include "algo/ball_cover.h"
#include "algo/local_search.h"
#include "core/anonymity.h"
#include "core/metrics.h"
#include "data/generators/medical.h"
#include "util/cli.h"
#include "util/random.h"

int main(int argc, char** argv) {
  using namespace kanon;
  const CommandLine cl = CommandLine::Parse(argc, argv);
  const uint32_t rows = static_cast<uint32_t>(cl.GetInt("rows", 24));
  const size_t k = static_cast<size_t>(cl.GetInt("k", 3));
  Rng rng(static_cast<uint64_t>(cl.GetInt("seed", 7)));

  const Table log = MedicalTable({.num_rows = rows, .name_pool = 6}, &rng);
  std::cout << "Imaging log (" << rows << " visits, PRIVATE):\n\n"
            << log.ToString(10) << "\n";

  // The paper's Theorem 4.2 algorithm with the local-search post-pass.
  LocalSearchAnonymizer algo(std::make_unique<BallCoverAnonymizer>());
  const AnonymizationResult result = algo.Run(log, k);
  const Table published = result.MakeSuppressor(log).Apply(log);

  std::cout << "Published " << k << "-anonymous view ("
            << result.cost << " of "
            << rows * log.num_columns() << " entries suppressed):\n\n"
            << published.ToString(10) << "\n";

  std::cout << "every published record matches at least " << k
            << " patients: "
            << (IsKAnonymous(published, k) ? "yes" : "NO") << "\n";

  // What can an attacker who knows a patient's (age_band, race) learn?
  // Count how many published rows are consistent with each
  // quasi-identifier combination.
  std::map<std::pair<std::string, std::string>, int> candidates;
  for (RowId r = 0; r < published.num_rows(); ++r) {
    const auto decoded = published.DecodeRow(r);
    ++candidates[{decoded[2], decoded[3]}];
  }
  std::cout << "\nre-identification candidates per published "
            << "(age_band, race) combination:\n";
  for (const auto& [key, count] : candidates) {
    std::cout << "  (" << key.first << ", " << key.second
              << "): " << count << " rows\n";
  }
  std::cout << "\nmetrics: "
            << ComputeMetrics(log, result.partition, k).ToString() << "\n";
  return 0;
}
