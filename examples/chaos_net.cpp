// chaos_net — seeded connection-fault drills against the TCP front end
// (net/net_chaos.h). Each schedule derives a transport fault plan
// (net.accept / net.read_torn / net.write_stall / net.close_mid_frame /
// queue.admit) and a concurrent client workload — valid requests,
// pipelined bursts, stats probes, hostile bytes — from one seed, runs
// it against a live NetServer + service stack, optionally drains the
// server mid-flight, and checks invariants 7-9 (typed response or
// clean close, never garbage or a hang; hostile frames corrupt no
// shared state; drain loses no admitted job).
//
// Usage:
//   ./chaos_net [--chaos-seed=N] [--schedules=N] [--sessions=N]
//               [--scratch=DIR] [--no-journal] [--no-drain]
//               [--verbose] [--version]
//
//   Runs schedules with seeds chaos-seed, chaos-seed+1, ... and exits
//   nonzero if any schedule reports a violation. Socket timing is not
//   deterministic, so the reproducibility gate compares the *workload*
//   fingerprints (the generated requests + fault plan) of the first
//   seed run twice.
//
// Exit codes: 0 all schedules passed, 1 usage error, 3 invariant
// violation, 4 reproducibility failure.

#include <cstdio>
#include <iostream>
#include <limits>

#include "net/net_chaos.h"
#include "util/build_info.h"
#include "util/cli.h"

int main(int argc, char** argv) {
  using namespace kanon;
  const CommandLine cl = CommandLine::Parse(argc, argv);

  if (cl.GetBool("version", false)) {
    std::cout << "chaos_net " << BuildInfoString() << "\n";
    return 0;
  }

  const StatusOr<long long> seed =
      cl.GetValidatedInt("chaos-seed", 1, 0,
                         std::numeric_limits<long long>::max());
  const StatusOr<long long> schedules =
      cl.GetValidatedInt("schedules", 20, 1, 1000000);
  const StatusOr<long long> sessions =
      cl.GetValidatedInt("sessions", 6, 1, 256);
  for (const auto* flag : {&seed, &schedules, &sessions}) {
    if (!flag->ok()) {
      std::cerr << "error: " << flag->status().message() << "\n";
      return 1;
    }
  }

  NetChaosOptions options;
  options.sessions = static_cast<size_t>(*sessions);
  options.with_journal = !cl.GetBool("no-journal", false);
  options.with_drain = !cl.GetBool("no-drain", false);
  options.scratch_dir = cl.GetString("scratch", "/tmp");
  options.verbose = cl.GetBool("verbose", false);

  // Reproducibility gate: the generated workload (not the socket
  // interleaving) must be a pure function of the seed.
  options.seed = static_cast<uint64_t>(*seed);
  const NetChaosReport first = RunNetChaosSchedule(options);
  const NetChaosReport again = RunNetChaosSchedule(options);
  if (first.workload_fingerprint != again.workload_fingerprint) {
    std::cerr << "chaos_net: seed " << options.seed
              << " is NOT reproducible: workload fingerprints "
              << first.workload_fingerprint << " vs "
              << again.workload_fingerprint << "\n";
    return 4;
  }

  int failures = 0;
  for (long long i = 0; i < *schedules; ++i) {
    options.seed = static_cast<uint64_t>(*seed + i);
    const NetChaosReport report =
        (i == 0) ? first : RunNetChaosSchedule(options);
    std::printf(
        "seed=%llu sessions=%zu sent=%zu hostile=%zu ok=%zu typed=%zu "
        "closes=%zu fires=%llu submitted=%llu delivered=%llu "
        "dropped=%llu proto_errors=%llu fingerprint=%016llx %s\n",
        static_cast<unsigned long long>(report.seed), report.sessions,
        report.requests_sent, report.hostile_sent, report.ok_responses,
        report.typed_errors, report.transport_closes,
        static_cast<unsigned long long>(report.fault_fires),
        static_cast<unsigned long long>(report.server.jobs_submitted),
        static_cast<unsigned long long>(report.server.responses_delivered),
        static_cast<unsigned long long>(report.server.responses_dropped),
        static_cast<unsigned long long>(report.server.protocol_errors),
        static_cast<unsigned long long>(report.workload_fingerprint),
        report.passed() ? "PASS" : "FAIL");
    if (!report.passed()) {
      ++failures;
      for (const std::string& violation : report.violations) {
        std::cerr << "  violation: " << violation << "\n";
      }
    }
  }
  if (failures > 0) {
    std::cerr << "chaos_net: " << failures << " schedule(s) FAILED\n";
    return 3;
  }
  std::cout << "chaos_net: all " << *schedules << " schedule(s) passed\n";
  return 0;
}
