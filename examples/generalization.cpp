// Reproduces the paper's Section 1 example output with real
// generalization hierarchies: last names generalize to prefixes ("r*"),
// ages to bands ("[20-39]"), and anything else to "*", then contrasts
// full-domain generalization (Samarati) with the paper's entry-level
// suppression model on the same table.
//
// Run:  ./example_generalization

#include <iostream>

#include "algo/registry.h"
#include "data/generators/medical.h"
#include "generalize/apply.h"
#include "generalize/optimal_lattice.h"
#include "generalize/samarati.h"
#include "privacy/linkage.h"

int main() {
  using namespace kanon;
  const Table t = PaperIntroTable();
  std::cout << "The paper's Section 1 relation:\n\n"
            << t.ToString() << "\n";

  // Hierarchies mirroring the paper's example: names generalize by
  // prefix, age by interval, race flat.
  const std::vector<Hierarchy> hs = {
      Hierarchy::Flat(t.schema().dictionary(0)),
      Hierarchy::Prefix(t.schema().dictionary(1), {1}),
      Hierarchy::Intervals(t.schema().dictionary(2), {10, 20}),
      Hierarchy::Flat(t.schema().dictionary(3)),
  };

  std::cout << "hand-picked generalization (first=*, last=prefix, "
            << "age=20-wide bands, race=*), the paper's '" << "John R*"
            << " 0-40' shape:\n\n"
            << ApplyGeneralization(t, hs, {1, 1, 2, 1}).ToString()
            << "\n";

  // Full-domain Samarati for k = 2.
  const LatticeResult samarati = SamaratiAnonymize(t, hs, 2, {});
  std::cout << "Samarati k=2 (minimal lattice height " << samarati.height
            << ", precision " << samarati.precision << "):\n\n"
            << ApplyGeneralization(t, hs, samarati.levels,
                                   samarati.suppressed_rows)
                   .ToString()
            << "\n";

  // The paper's entry-suppression model on the same table.
  auto entry = MakeAnonymizer("exact_dp");
  const auto result = entry->Run(t, 2);
  std::cout << "optimal entry suppression k=2 (" << result.cost
            << " stars) — strictly finer-grained than full-domain "
            << "recoding:\n\n"
            << result.MakeSuppressor(t).Apply(t).ToString() << "\n";

  // Linking attack on each release.
  const std::vector<ColId> qi = {0, 1, 2, 3};
  std::cout << "linking attack (adversary knows all attributes):\n"
            << "  raw release:         "
            << LinkageAttack(t, t, qi).ToString() << "\n"
            << "  generalized release: "
            << LinkageAttackGeneralized(t, hs, samarati.levels,
                                        samarati.suppressed_rows, qi)
                   .ToString()
            << "\n"
            << "  suppressed release:  "
            << LinkageAttack(t, result.MakeSuppressor(t).Apply(t), qi)
                   .ToString()
            << "\n";
  return 0;
}
