// kanon_load — load generator for the kanond TCP front end.
//
// Two traffic shapes:
//   - closed loop (default): N connections each send one request, wait
//     for its response, repeat until the shared budget is spent. The
//     classic throughput benchmark — but offered load is capped by
//     service latency, so it cannot probe overload.
//   - open loop (--target-rps=R[,R2,...]): requests are launched on a
//     Poisson arrival schedule at the *offered* rate regardless of how
//     the service is coping — the arrival process of real clients, and
//     the only shape that can push a server past saturation. Each
//     offered rate becomes one point of a load curve (goodput,
//     latency percentiles, typed-shed breakdown) in the JSON report,
//     so sweeping rates charts goodput/latency vs offered load.
//
// With --deadline-ms=D every request carries deadline D and *goodput*
// counts only OK answers delivered inside D — the metric the overload
// plane's brownout ladder is designed to defend. --overload-target-ms /
// --retry-budget-ratio / --brownout arm the overload plane of the
// hermetic in-process service (same semantics as the kanond flags), so
// A/B-ing `--brownout=off` vs `--brownout=auto` under the same offered
// load measures what the ladder buys.
//
// Modes:
//   - hermetic (default, no --port): spawns the full service stack +
//     NetServer in-process on an ephemeral port — the CI benchmark path,
//     no daemon required;
//   - remote (--port=P [--host=H]): drives an already-running kanond.
//
// The request pool cycles through more table variants than the result
// cache holds, so the measured path is the real queue -> worker ->
// solver pipeline, not a cache echo.
//
// Usage:
//   ./kanon_load [--connections=N] [--requests=N] [--rows=N] [--k=N]
//                [--node-budget=N] [--target-rps=R[,R2,...]]
//                [--deadline-ms=F] [--overload-target-ms=F]
//                [--retry-budget-ratio=F] [--brownout=off|auto]
//                [--host=H] [--port=P] [--out=FILE] [--version]
//
// Exit codes: 0 success, 1 usage/setup error, 2 protocol errors seen.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <limits>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "data/csv_table.h"
#include "data/generators/uniform.h"
#include "net/client.h"
#include "net/tcp_server.h"
#include "service/server.h"
#include "util/build_info.h"
#include "util/cli.h"
#include "util/random.h"
#include "util/stats.h"
#include "util/string_util.h"

namespace {

using namespace kanon;

double NowMs() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Everything the worker threads fold into, merged under one lock at
/// thread exit (per-thread locals while running: no contention inside
/// the measured loop).
struct Totals {
  std::mutex mu;
  std::vector<double> latencies_ms;
  size_t ok = 0;
  /// OK answers delivered inside the request deadline (== ok when no
  /// deadline was set).
  size_t good = 0;
  /// OK answers the brownout ladder degraded to a cheaper backend.
  size_t browned_out = 0;
  size_t typed_errors = 0;
  size_t shed = 0;
  size_t infeasible = 0;
  size_t protocol_errors = 0;
  size_t transport_errors = 0;
};

/// One measured point of the load curve.
struct LoadPoint {
  double offered_rps = 0.0;  // 0 = closed loop
  double duration_ms = 0.0;
  Totals totals;
};

double Percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const size_t index = std::min(
      sorted.size() - 1,
      static_cast<size_t>(p * static_cast<double>(sorted.size())));
  return sorted[index];
}

struct WorkloadConfig {
  std::string host;
  uint16_t port = 0;
  const std::vector<std::string>* pool = nullptr;
  long long connections = 0;
  long long requests = 0;
  size_t k = 0;
  uint64_t node_budget = 0;
  double deadline_ms = 0.0;
};

/// Classifies one answered response into the point's counters.
void CountResponse(const NetResponse& response, double latency_ms,
                   double deadline_ms, Totals* totals) {
  totals->latencies_ms.push_back(latency_ms);
  if (response.ok()) {
    ++totals->ok;
    if (deadline_ms <= 0.0 || latency_ms <= deadline_ms) ++totals->good;
    if (response.brownout > 0) ++totals->browned_out;
    return;
  }
  if (response.error_name == "queue_full" ||
      response.error_name == "shed_low_priority" ||
      response.error_name == "shed_overload") {
    ++totals->shed;
  } else if (response.error_name == "deadline_infeasible") {
    ++totals->infeasible;
  } else {
    ++totals->typed_errors;
  }
}

NetRequest BuildRequest(const WorkloadConfig& config, uint64_t seq,
                        size_t pool_index) {
  NetRequest request;
  request.verb = NetVerb::kAnonymize;
  request.client_seq = seq;
  request.request.algorithm = "resilient";
  request.request.k = config.k;
  request.request.node_budget = config.node_budget;
  request.request.deadline_ms = config.deadline_ms;
  request.request.csv_text =
      (*config.pool)[pool_index % config.pool->size()];
  return request;
}

/// Closed loop: each connection keeps exactly one request in flight.
void RunClosedLoop(const WorkloadConfig& config, LoadPoint* point) {
  std::atomic<long long> budget{config.requests};
  const double start_ms = NowMs();
  std::vector<std::thread> workers;
  workers.reserve(static_cast<size_t>(config.connections));
  for (long long c = 0; c < config.connections; ++c) {
    workers.emplace_back([&, c] {
      NetClient client;
      if (!client.Connect(config.host, config.port, 5000.0).ok()) {
        std::lock_guard<std::mutex> lock(point->totals.mu);
        ++point->totals.transport_errors;
        return;
      }
      Totals local;
      uint64_t seq = 0;
      size_t next = static_cast<size_t>(c);
      while (budget.fetch_sub(1) > 0) {
        const NetRequest request = BuildRequest(config, ++seq, next);
        next += static_cast<size_t>(config.connections);
        const double t0 = NowMs();
        const StatusOr<NetResponse> response =
            client.Call(request, 60000.0);
        const double t1 = NowMs();
        if (!response.ok()) {
          if (response.status().code() == StatusCode::kParseError) {
            ++local.protocol_errors;
          } else {
            ++local.transport_errors;
          }
          break;  // connection is gone either way
        }
        CountResponse(*response, t1 - t0, config.deadline_ms, &local);
      }
      std::lock_guard<std::mutex> lock(point->totals.mu);
      point->totals.latencies_ms.insert(point->totals.latencies_ms.end(),
                                        local.latencies_ms.begin(),
                                        local.latencies_ms.end());
      point->totals.ok += local.ok;
      point->totals.good += local.good;
      point->totals.browned_out += local.browned_out;
      point->totals.typed_errors += local.typed_errors;
      point->totals.shed += local.shed;
      point->totals.infeasible += local.infeasible;
      point->totals.protocol_errors += local.protocol_errors;
      point->totals.transport_errors += local.transport_errors;
    });
  }
  for (std::thread& t : workers) t.join();
  point->duration_ms = NowMs() - start_ms;
}

/// Open loop: requests launch on a precomputed Poisson schedule at the
/// offered rate, whether or not earlier ones have been answered. Each
/// worker claims the next arrival slot, sleeps until its scheduled
/// time (a worker running behind fires immediately — offered load is
/// never throttled by service latency), sends, and waits for that one
/// response.
void RunOpenLoop(const WorkloadConfig& config, double offered_rps,
                 uint64_t seed, LoadPoint* point) {
  point->offered_rps = offered_rps;
  const size_t n = static_cast<size_t>(config.requests);
  std::vector<double> arrivals_ms(n);
  Rng rng(seed, /*stream=*/0x6f70656eull);  // "open"
  const double mean_gap_ms = 1000.0 / offered_rps;
  double clock_ms = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double u = std::min(rng.UniformDouble(), 0.999999);
    clock_ms += -mean_gap_ms * std::log(1.0 - u);
    arrivals_ms[i] = clock_ms;
  }

  std::atomic<size_t> next_slot{0};
  const auto start = std::chrono::steady_clock::now();
  const double start_ms = NowMs();
  std::vector<std::thread> workers;
  workers.reserve(static_cast<size_t>(config.connections));
  for (long long c = 0; c < config.connections; ++c) {
    workers.emplace_back([&] {
      NetClient client;
      if (!client.Connect(config.host, config.port, 5000.0).ok()) {
        std::lock_guard<std::mutex> lock(point->totals.mu);
        ++point->totals.transport_errors;
        return;
      }
      Totals local;
      uint64_t seq = 0;
      bool connected = true;
      while (connected) {
        const size_t slot = next_slot.fetch_add(1);
        if (slot >= n) break;
        std::this_thread::sleep_until(
            start + std::chrono::duration_cast<
                        std::chrono::steady_clock::duration>(
                        std::chrono::duration<double, std::milli>(
                            arrivals_ms[slot])));
        const NetRequest request = BuildRequest(config, ++seq, slot);
        const double t0 = NowMs();
        const StatusOr<NetResponse> response =
            client.Call(request, 60000.0);
        const double t1 = NowMs();
        if (!response.ok()) {
          if (response.status().code() == StatusCode::kParseError) {
            ++local.protocol_errors;
          } else {
            ++local.transport_errors;
          }
          // The connection is gone; reconnect so the schedule's
          // remaining arrivals still launch (open loop never slows).
          client.Close();
          connected = client.Connect(config.host, config.port,
                                     5000.0).ok();
          continue;
        }
        CountResponse(*response, t1 - t0, config.deadline_ms, &local);
      }
      std::lock_guard<std::mutex> lock(point->totals.mu);
      point->totals.latencies_ms.insert(point->totals.latencies_ms.end(),
                                        local.latencies_ms.begin(),
                                        local.latencies_ms.end());
      point->totals.ok += local.ok;
      point->totals.good += local.good;
      point->totals.browned_out += local.browned_out;
      point->totals.typed_errors += local.typed_errors;
      point->totals.shed += local.shed;
      point->totals.infeasible += local.infeasible;
      point->totals.protocol_errors += local.protocol_errors;
      point->totals.transport_errors += local.transport_errors;
    });
  }
  for (std::thread& t : workers) t.join();
  point->duration_ms = NowMs() - start_ms;
}

void AppendPointJson(std::ostringstream& json, const std::string& indent,
                     LoadPoint& point) {
  std::sort(point.totals.latencies_ms.begin(),
            point.totals.latencies_ms.end());
  const size_t answered = point.totals.latencies_ms.size();
  const double throughput =
      point.duration_ms > 0
          ? 1000.0 * static_cast<double>(answered) / point.duration_ms
          : 0.0;
  const double goodput =
      point.duration_ms > 0
          ? 1000.0 * static_cast<double>(point.totals.good) /
                point.duration_ms
          : 0.0;
  const double shed_rate =
      answered > 0 ? static_cast<double>(point.totals.shed) /
                         static_cast<double>(answered)
                   : 0.0;
  json << indent << "\"offered_rps\": " << point.offered_rps << ",\n"
       << indent << "\"requests\": " << answered << ",\n"
       << indent << "\"duration_ms\": " << point.duration_ms << ",\n"
       << indent << "\"throughput_rps\": " << throughput << ",\n"
       << indent << "\"goodput_rps\": " << goodput << ",\n"
       << indent << "\"latency_ms\": {\n"
       << indent << "  \"p50\": "
       << Percentile(point.totals.latencies_ms, 0.50) << ",\n"
       << indent << "  \"p90\": "
       << Percentile(point.totals.latencies_ms, 0.90) << ",\n"
       << indent << "  \"p99\": "
       << Percentile(point.totals.latencies_ms, 0.99) << ",\n"
       << indent << "  \"max\": "
       << (answered ? point.totals.latencies_ms.back() : 0.0) << "\n"
       << indent << "},\n"
       << indent << "\"ok\": " << point.totals.ok << ",\n"
       << indent << "\"good\": " << point.totals.good << ",\n"
       << indent << "\"browned_out\": " << point.totals.browned_out
       << ",\n"
       << indent << "\"typed_errors\": " << point.totals.typed_errors
       << ",\n"
       << indent << "\"shed\": " << point.totals.shed << ",\n"
       << indent << "\"shed_rate\": " << shed_rate << ",\n"
       << indent << "\"deadline_infeasible\": "
       << point.totals.infeasible << ",\n"
       << indent << "\"protocol_errors\": "
       << point.totals.protocol_errors << ",\n"
       << indent << "\"transport_errors\": "
       << point.totals.transport_errors;
}

}  // namespace

int main(int argc, char** argv) {
  const CommandLine cl = CommandLine::Parse(argc, argv);
  if (cl.GetBool("version", false)) {
    std::cout << "kanon_load " << BuildInfoString() << "\n";
    return 0;
  }

  const StatusOr<long long> connections =
      cl.GetValidatedInt("connections", 32, 1, 4096);
  const StatusOr<long long> requests =
      cl.GetValidatedInt("requests", 2000, 1,
                         std::numeric_limits<long long>::max());
  const StatusOr<long long> rows = cl.GetValidatedInt("rows", 24, 4, 4096);
  const StatusOr<long long> k_flag = cl.GetValidatedInt("k", 3, 1, 64);
  // Without a budget the resilient chain is allowed to run its exact
  // stages to completion, which is exponential in the worst case — a
  // benchmark wants the *serving* cost, so bound the solver and let the
  // chain degrade the way production requests do.
  const StatusOr<long long> node_budget =
      cl.GetValidatedInt("node-budget", 2000, 0,
                         std::numeric_limits<long long>::max());
  const StatusOr<long long> port_flag =
      cl.GetValidatedInt("port", 0, 0, 65535);
  for (const auto* flag :
       {&connections, &requests, &rows, &k_flag, &node_budget,
        &port_flag}) {
    if (!flag->ok()) {
      std::cerr << "error: " << flag->status().message() << "\n";
      return 1;
    }
  }
  const std::string host = cl.GetString("host", "127.0.0.1");
  const std::string out_path = cl.GetString("out", "BENCH_service.json");
  const double deadline_ms = cl.GetDouble("deadline-ms", 0.0);
  const double overload_target = cl.GetDouble("overload-target-ms", 0.0);
  const double retry_ratio = cl.GetDouble("retry-budget-ratio", 0.1);
  const std::string brownout = cl.GetString("brownout", "");
  if (deadline_ms < 0.0 || overload_target < 0.0 || retry_ratio < 0.0 ||
      retry_ratio > 1.0) {
    std::cerr << "error: --deadline-ms/--overload-target-ms must be >= 0 "
                 "and --retry-budget-ratio in [0, 1]\n";
    return 1;
  }
  if (!brownout.empty() && brownout != "off" && brownout != "auto") {
    std::cerr << "error: --brownout must be off or auto\n";
    return 1;
  }

  // The offered-rate sweep: each entry becomes one open-loop point.
  std::vector<double> target_rps;
  const std::string rps_spec = cl.GetString("target-rps", "");
  if (!rps_spec.empty()) {
    for (const std::string& piece : Split(rps_spec, ',')) {
      char* end = nullptr;
      const double rate = std::strtod(piece.c_str(), &end);
      if (end == piece.c_str() || *end != '\0' || !(rate > 0.0)) {
        std::cerr << "error: --target-rps wants positive rates, got '"
                  << piece << "'\n";
        return 1;
      }
      target_rps.push_back(rate);
    }
  }

  // Pre-generate the request pool: 256 distinct tables > the default
  // result-cache capacity, so cache hits stay a minority.
  constexpr size_t kPoolSize = 256;
  Rng rng(42, /*stream=*/0x6c6f6164ull);  // "load"
  std::vector<std::string> pool;
  pool.reserve(kPoolSize);
  for (size_t i = 0; i < kPoolSize; ++i) {
    UniformTableOptions table;
    table.num_rows = static_cast<uint32_t>(*rows);
    table.num_columns = 3;
    table.alphabet = 4;
    pool.push_back(TableToCsv(UniformTable(table, &rng)));
  }

  // Hermetic mode: the whole serving stack in-process.
  std::unique_ptr<AnonymizationService> service;
  std::unique_ptr<NetServer> server;
  std::thread server_thread;
  uint16_t port = static_cast<uint16_t>(*port_flag);
  if (port == 0) {
    ServiceOptions service_options;
    service_options.workers =
        std::max(2u, std::thread::hardware_concurrency());
    if (overload_target > 0.0 || !brownout.empty()) {
      service_options.overload_enabled = true;
      if (overload_target > 0.0) {
        service_options.overload.codel.target_ms = overload_target;
      }
      service_options.overload.retry_budget.ratio = retry_ratio;
      service_options.overload.governor_enabled = brownout != "off";
    }
    service = std::make_unique<AnonymizationService>(service_options);
    NetServerOptions server_options;
    server_options.port = 0;
    server_options.max_connections =
        static_cast<size_t>(*connections) + 16;
    NetServer* raw = new NetServer(*service, server_options);
    server.reset(raw);
    const Status started = server->Start();
    if (!started.ok()) {
      std::cerr << "error: server start failed: " << started.ToString()
                << "\n";
      return 1;
    }
    port = server->port();
    server_thread = std::thread([raw] { raw->Run(); });
  }

  WorkloadConfig config;
  config.host = host;
  config.port = port;
  config.pool = &pool;
  config.connections = *connections;
  config.requests = *requests;
  config.k = static_cast<size_t>(*k_flag);
  config.node_budget = static_cast<uint64_t>(*node_budget);
  config.deadline_ms = deadline_ms;

  std::vector<std::unique_ptr<LoadPoint>> points;
  if (target_rps.empty()) {
    points.push_back(std::make_unique<LoadPoint>());
    RunClosedLoop(config, points.back().get());
  } else {
    for (size_t i = 0; i < target_rps.size(); ++i) {
      points.push_back(std::make_unique<LoadPoint>());
      RunOpenLoop(config, target_rps[i], /*seed=*/42 + i,
                  points.back().get());
    }
  }

  if (server) {
    server->RequestDrain();
    server_thread.join();
  }
  if (service) service->Shutdown();

  size_t protocol_errors = 0;
  std::ostringstream json;
  json.precision(3);
  json << std::fixed;
  json << "{\n"
       << "  \"connections\": " << *connections << ",\n"
       << "  \"mode\": \""
       << (target_rps.empty() ? "closed_loop" : "open_loop") << "\",\n"
       << "  \"deadline_ms\": " << deadline_ms << ",\n";
  // The first point doubles as the top-level summary (keeps the
  // closed-loop JSON shape stable for existing consumers).
  AppendPointJson(json, "  ", *points.front());
  protocol_errors += points.front()->totals.protocol_errors;
  if (!target_rps.empty()) {
    json << ",\n  \"load_curve\": [\n";
    for (size_t i = 0; i < points.size(); ++i) {
      json << "    {\n";
      AppendPointJson(json, "      ", *points[i]);
      json << "\n    }" << (i + 1 < points.size() ? "," : "") << "\n";
      if (i > 0) protocol_errors += points[i]->totals.protocol_errors;
    }
    json << "  ]";
  }
  json << "\n}\n";

  std::cout << json.str();
  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "error: cannot write " << out_path << "\n";
    return 1;
  }
  out << json.str();
  out.close();
  std::cerr << "kanon_load: wrote " << out_path << "\n";
  return protocol_errors == 0 ? 0 : 2;
}
