// kanon_load — closed-loop load generator for the kanond TCP front end.
//
// Opens N concurrent connections, each running a closed loop (send one
// anonymize request, wait for its response, repeat) until the shared
// request budget is spent, then reports throughput, the latency
// distribution and the typed-error / shed breakdown as JSON.
//
// Two modes:
//   - hermetic (default, no --port): spawns the full service stack +
//     NetServer in-process on an ephemeral port — the CI benchmark path,
//     no daemon required;
//   - remote (--port=P [--host=H]): drives an already-running kanond.
//
// The request pool cycles through more table variants than the result
// cache holds, so the measured path is the real queue -> worker ->
// solver pipeline, not a cache echo.
//
// Usage:
//   ./kanon_load [--connections=N] [--requests=N] [--rows=N] [--k=N]
//                [--node-budget=N] [--host=H] [--port=P] [--out=FILE]
//                [--version]
//
// Exit codes: 0 success, 1 usage/setup error, 2 protocol errors seen.

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <limits>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "data/csv_table.h"
#include "data/generators/uniform.h"
#include "net/client.h"
#include "net/tcp_server.h"
#include "service/server.h"
#include "util/build_info.h"
#include "util/cli.h"
#include "util/random.h"
#include "util/stats.h"

namespace {

using namespace kanon;

double NowMs() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Everything the worker threads fold into, merged under one lock at
/// thread exit (per-thread locals while running: no contention inside
/// the measured loop).
struct Totals {
  std::mutex mu;
  std::vector<double> latencies_ms;
  size_t ok = 0;
  size_t typed_errors = 0;
  size_t shed = 0;
  size_t protocol_errors = 0;
  size_t transport_errors = 0;
};

double Percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const size_t index = std::min(
      sorted.size() - 1,
      static_cast<size_t>(p * static_cast<double>(sorted.size())));
  return sorted[index];
}

}  // namespace

int main(int argc, char** argv) {
  const CommandLine cl = CommandLine::Parse(argc, argv);
  if (cl.GetBool("version", false)) {
    std::cout << "kanon_load " << BuildInfoString() << "\n";
    return 0;
  }

  const StatusOr<long long> connections =
      cl.GetValidatedInt("connections", 32, 1, 4096);
  const StatusOr<long long> requests =
      cl.GetValidatedInt("requests", 2000, 1,
                         std::numeric_limits<long long>::max());
  const StatusOr<long long> rows = cl.GetValidatedInt("rows", 24, 4, 4096);
  const StatusOr<long long> k_flag = cl.GetValidatedInt("k", 3, 1, 64);
  // Without a budget the resilient chain is allowed to run its exact
  // stages to completion, which is exponential in the worst case — a
  // benchmark wants the *serving* cost, so bound the solver and let the
  // chain degrade the way production requests do.
  const StatusOr<long long> node_budget =
      cl.GetValidatedInt("node-budget", 2000, 0,
                         std::numeric_limits<long long>::max());
  const StatusOr<long long> port_flag =
      cl.GetValidatedInt("port", 0, 0, 65535);
  for (const auto* flag :
       {&connections, &requests, &rows, &k_flag, &node_budget,
        &port_flag}) {
    if (!flag->ok()) {
      std::cerr << "error: " << flag->status().message() << "\n";
      return 1;
    }
  }
  const std::string host = cl.GetString("host", "127.0.0.1");
  const std::string out_path = cl.GetString("out", "BENCH_service.json");

  // Pre-generate the request pool: 256 distinct tables > the default
  // result-cache capacity, so cache hits stay a minority.
  constexpr size_t kPoolSize = 256;
  Rng rng(42, /*stream=*/0x6c6f6164ull);  // "load"
  std::vector<std::string> pool;
  pool.reserve(kPoolSize);
  for (size_t i = 0; i < kPoolSize; ++i) {
    UniformTableOptions table;
    table.num_rows = static_cast<uint32_t>(*rows);
    table.num_columns = 3;
    table.alphabet = 4;
    pool.push_back(TableToCsv(UniformTable(table, &rng)));
  }

  // Hermetic mode: the whole serving stack in-process.
  std::unique_ptr<AnonymizationService> service;
  std::unique_ptr<NetServer> server;
  std::thread server_thread;
  uint16_t port = static_cast<uint16_t>(*port_flag);
  if (port == 0) {
    ServiceOptions service_options;
    service_options.workers =
        std::max(2u, std::thread::hardware_concurrency());
    service = std::make_unique<AnonymizationService>(service_options);
    NetServerOptions server_options;
    server_options.port = 0;
    server_options.max_connections =
        static_cast<size_t>(*connections) + 16;
    NetServer* raw = new NetServer(*service, server_options);
    server.reset(raw);
    const Status started = server->Start();
    if (!started.ok()) {
      std::cerr << "error: server start failed: " << started.ToString()
                << "\n";
      return 1;
    }
    port = server->port();
    server_thread = std::thread([raw] { raw->Run(); });
  }

  std::atomic<long long> budget{*requests};
  Totals totals;
  const double start_ms = NowMs();

  std::vector<std::thread> workers;
  workers.reserve(static_cast<size_t>(*connections));
  for (long long c = 0; c < *connections; ++c) {
    workers.emplace_back([&, c] {
      NetClient client;
      if (!client.Connect(host, port, 5000.0).ok()) {
        std::lock_guard<std::mutex> lock(totals.mu);
        ++totals.transport_errors;
        return;
      }
      std::vector<double> latencies;
      size_t ok = 0, typed = 0, shed = 0, proto = 0, transport = 0;
      uint64_t seq = 0;
      size_t next = static_cast<size_t>(c);
      while (budget.fetch_sub(1) > 0) {
        NetRequest request;
        request.verb = NetVerb::kAnonymize;
        request.client_seq = ++seq;
        request.request.algorithm = "resilient";
        request.request.k = static_cast<size_t>(*k_flag);
        request.request.node_budget = static_cast<uint64_t>(*node_budget);
        request.request.csv_text = pool[next % kPoolSize];
        next += static_cast<size_t>(*connections);
        const double t0 = NowMs();
        const StatusOr<NetResponse> response =
            client.Call(request, 60000.0);
        const double t1 = NowMs();
        if (!response.ok()) {
          if (response.status().code() == StatusCode::kParseError) {
            ++proto;
          } else {
            ++transport;
          }
          break;  // connection is gone either way
        }
        latencies.push_back(t1 - t0);
        if (response->ok()) {
          ++ok;
        } else if (response->error_name == "queue_full" ||
                   response->error_name == "shed_low_priority") {
          ++shed;
        } else {
          ++typed;
        }
      }
      std::lock_guard<std::mutex> lock(totals.mu);
      totals.latencies_ms.insert(totals.latencies_ms.end(),
                                 latencies.begin(), latencies.end());
      totals.ok += ok;
      totals.typed_errors += typed;
      totals.shed += shed;
      totals.protocol_errors += proto;
      totals.transport_errors += transport;
    });
  }
  for (std::thread& t : workers) t.join();
  const double duration_ms = NowMs() - start_ms;

  if (server) {
    server->RequestDrain();
    server_thread.join();
  }
  if (service) service->Shutdown();

  std::sort(totals.latencies_ms.begin(), totals.latencies_ms.end());
  const size_t answered = totals.latencies_ms.size();
  const double throughput =
      duration_ms > 0 ? 1000.0 * static_cast<double>(answered) / duration_ms
                      : 0.0;
  const double shed_rate =
      answered > 0 ? static_cast<double>(totals.shed) /
                         static_cast<double>(answered)
                   : 0.0;

  std::ostringstream json;
  json.precision(3);
  json << std::fixed;
  json << "{\n"
       << "  \"connections\": " << *connections << ",\n"
       << "  \"requests\": " << answered << ",\n"
       << "  \"duration_ms\": " << duration_ms << ",\n"
       << "  \"throughput_rps\": " << throughput << ",\n"
       << "  \"latency_ms\": {\n"
       << "    \"p50\": " << Percentile(totals.latencies_ms, 0.50) << ",\n"
       << "    \"p90\": " << Percentile(totals.latencies_ms, 0.90) << ",\n"
       << "    \"p99\": " << Percentile(totals.latencies_ms, 0.99) << ",\n"
       << "    \"max\": "
       << (answered ? totals.latencies_ms.back() : 0.0) << "\n"
       << "  },\n"
       << "  \"ok\": " << totals.ok << ",\n"
       << "  \"typed_errors\": " << totals.typed_errors << ",\n"
       << "  \"shed\": " << totals.shed << ",\n"
       << "  \"shed_rate\": " << shed_rate << ",\n"
       << "  \"protocol_errors\": " << totals.protocol_errors << ",\n"
       << "  \"transport_errors\": " << totals.transport_errors << "\n"
       << "}\n";

  std::cout << json.str();
  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "error: cannot write " << out_path << "\n";
    return 1;
  }
  out << json.str();
  out.close();
  std::cerr << "kanon_load: wrote " << out_path << "\n";
  return totals.protocol_errors == 0 ? 0 : 2;
}
