// chaos_overload — seeded drills for the adaptive overload-control
// plane (service/overload_chaos.h). Each schedule runs three legs from
// one seed and checks invariants 11-13:
//
//   11. a live queue + worker pool with forced sheds, forced brownouts
//       and a drained retry budget still answers every admitted job
//       with a valid k-anonymous result or a typed error, and forced
//       sheds reconcile exactly with typed shed_overload rejections;
//   12. two governors fed the same seeded signal stream make
//       bit-identical brownout decisions;
//   13. a virtual-time goodput simulation never does worse with the
//       governor on than off.
//
// Usage:
//   ./chaos_overload [--chaos-seed=N] [--schedules=N] [--jobs=N]
//                    [--sim-arrivals=N] [--signals=N] [--no-service]
//                    [--verbose] [--version]
//
//   Runs schedules with seeds chaos-seed, chaos-seed+1, ... and exits
//   nonzero if any schedule reports a violation. Schedule 0 of the run
//   is executed twice and its outcome fingerprints compared, so every
//   invocation also proves seed-reproducibility.
//
// Exit codes: 0 all schedules passed, 1 usage error, 3 invariant
// violation, 4 reproducibility failure.

#include <cstdio>
#include <iostream>
#include <limits>

#include "service/overload_chaos.h"
#include "util/build_info.h"
#include "util/cli.h"

int main(int argc, char** argv) {
  using namespace kanon;
  const CommandLine cl = CommandLine::Parse(argc, argv);

  if (cl.GetBool("version", false)) {
    std::cout << "chaos_overload " << BuildInfoString() << "\n";
    return 0;
  }

  const StatusOr<long long> seed =
      cl.GetValidatedInt("chaos-seed", 1, 0,
                         std::numeric_limits<long long>::max());
  const StatusOr<long long> schedules =
      cl.GetValidatedInt("schedules", 20, 1, 1000000);
  const StatusOr<long long> jobs = cl.GetValidatedInt("jobs", 24, 1, 4096);
  const StatusOr<long long> sim_arrivals =
      cl.GetValidatedInt("sim-arrivals", 400, 1, 1000000);
  const StatusOr<long long> signals =
      cl.GetValidatedInt("signals", 256, 1, 1000000);
  for (const auto* flag :
       {&seed, &schedules, &jobs, &sim_arrivals, &signals}) {
    if (!flag->ok()) {
      std::cerr << "error: " << flag->status().message() << "\n";
      return 1;
    }
  }

  OverloadChaosOptions options;
  options.jobs = static_cast<size_t>(*jobs);
  options.sim_arrivals = static_cast<size_t>(*sim_arrivals);
  options.governor_signals = static_cast<size_t>(*signals);
  options.with_service = !cl.GetBool("no-service", false);
  options.verbose = cl.GetBool("verbose", false);

  // Reproducibility gate: the first seed, run twice, must produce the
  // same three-leg digest bit-for-bit (this is invariant 12 writ large:
  // every decision the plane makes replays from the seed).
  options.seed = static_cast<uint64_t>(*seed);
  const OverloadChaosReport first = RunOverloadChaosSchedule(options);
  const OverloadChaosReport again = RunOverloadChaosSchedule(options);
  if (first.outcome_fingerprint != again.outcome_fingerprint) {
    std::cerr << "chaos_overload: seed " << options.seed
              << " is NOT reproducible: fingerprints "
              << first.outcome_fingerprint << " vs "
              << again.outcome_fingerprint << "\n";
    return 4;
  }

  int failures = 0;
  for (long long i = 0; i < *schedules; ++i) {
    options.seed = static_cast<uint64_t>(*seed + i);
    const OverloadChaosReport report =
        (i == 0) ? first : RunOverloadChaosSchedule(options);
    std::printf(
        "seed=%llu decisions=%zu transitions=%llu goodput=%zu/%zu/%zu "
        "submitted=%zu ok=%zu error=%zu rejected=%zu shed=%llu "
        "brownouts=%llu retry_degraded=%llu fires=%llu "
        "fingerprint=%016llx %s\n",
        static_cast<unsigned long long>(report.seed),
        report.decisions_checked,
        static_cast<unsigned long long>(report.governor_transitions),
        report.goodput_on, report.goodput_off, report.sim_arrivals,
        report.submitted, report.answered_ok, report.answered_error,
        report.rejected,
        static_cast<unsigned long long>(report.shed_typed),
        static_cast<unsigned long long>(report.pool_brownouts),
        static_cast<unsigned long long>(report.retry_degraded),
        static_cast<unsigned long long>(report.fires),
        static_cast<unsigned long long>(report.outcome_fingerprint),
        report.passed() ? "PASS" : "FAIL");
    if (!report.passed()) {
      ++failures;
      for (const std::string& violation : report.violations) {
        std::cerr << "  violation: " << violation << "\n";
      }
    }
  }
  if (failures > 0) {
    std::cerr << "chaos_overload: " << failures << " schedule(s) FAILED\n";
    return 3;
  }
  std::cout << "chaos_overload: all " << *schedules
            << " schedule(s) passed\n";
  return 0;
}
