// Command-line anonymizer: reads a CSV relation (first record = header),
// k-anonymizes it with a chosen algorithm, and writes the anonymized CSV
// (suppressed entries as "*"). The file-facing entry point a downstream
// user would script against.
//
// Usage:
//   ./example_anonymize_csv <input.csv> <output.csv>
//       [--k=3] [--algo=ball_cover] [--local_search]
//   ./example_anonymize_csv --demo     # run on a built-in demo table
//
// Exit codes: 0 ok, 1 usage error, 2 I/O or data error.

#include <iostream>

#include "algo/registry.h"
#include "core/anonymity.h"
#include "core/metrics.h"
#include "data/csv_table.h"
#include "data/generators/census.h"
#include "util/cli.h"
#include "util/random.h"

int main(int argc, char** argv) {
  using namespace kanon;
  const CommandLine cl = CommandLine::Parse(argc, argv);
  const size_t k = static_cast<size_t>(cl.GetInt("k", 3));
  std::string algo_name = cl.GetString("algo", "ball_cover");
  if (cl.GetBool("local_search", false)) algo_name += "+local_search";

  Table input = [&] {
    if (cl.GetBool("demo", false) || cl.positional().empty()) {
      Rng rng(1);
      return CensusTable({.num_rows = 40}, &rng);
    }
    std::string error;
    auto loaded = LoadTableCsv(cl.positional()[0], &error);
    if (!loaded.has_value()) {
      std::cerr << "error: " << error << "\n";
      std::exit(2);
    }
    return *std::move(loaded);
  }();

  if (input.num_rows() < k) {
    std::cerr << "error: relation has " << input.num_rows()
              << " rows; cannot " << k << "-anonymize fewer than k rows\n";
    return 2;
  }

  auto algo = MakeAnonymizer(algo_name);
  if (algo == nullptr) {
    std::cerr << "error: unknown algorithm '" << algo_name
              << "'. known algorithms:";
    for (const auto& name : KnownAnonymizers()) std::cerr << " " << name;
    std::cerr << " (append +local_search for the post-optimizer)\n";
    return 1;
  }

  const AnonymizationResult result = algo->Run(input, k);
  const Table anonymized = result.MakeSuppressor(input).Apply(input);
  if (!IsKAnonymous(anonymized, k)) {
    std::cerr << "internal error: output not k-anonymous\n";
    return 2;
  }

  std::cerr << "algorithm: " << algo->name() << "\n"
            << "rows: " << input.num_rows()
            << ", attributes: " << input.num_columns() << ", k: " << k
            << "\n"
            << ComputeMetrics(input, result.partition, k).ToString()
            << "\n"
            << "time: " << result.seconds * 1e3 << " ms\n";

  if (cl.positional().size() >= 2) {
    if (!SaveTableCsv(anonymized, cl.positional()[1])) {
      std::cerr << "error: cannot write " << cl.positional()[1] << "\n";
      return 2;
    }
    std::cerr << "wrote " << cl.positional()[1] << "\n";
  } else {
    std::cout << TableToCsv(anonymized);
  }
  return 0;
}
