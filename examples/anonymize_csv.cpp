// Command-line anonymizer: reads a CSV relation (first record = header),
// k-anonymizes it with a chosen algorithm, and writes the anonymized CSV
// (suppressed entries as "*"). The file-facing entry point a downstream
// user would script against.
//
// Usage:
//   ./example_anonymize_csv <input.csv> <output.csv>
//       [--k=3] [--algo=ball_cover] [--local_search] [--deadline-ms=N]
//   ./example_anonymize_csv --demo     # run on a built-in demo table
//   ./example_anonymize_csv --version  # print build provenance, exit
//
// --deadline-ms bounds the run's wall clock; pair it with
// --algo=resilient to degrade across the fallback chain instead of
// timing out empty-handed. The run's termination status and (for the
// resilient chain) producing stage are reported on stderr.
//
// Exit codes: 0 ok, 1 usage error, 2 I/O or data error.

#include <iostream>
#include <limits>

#include "algo/registry.h"
#include "core/anonymity.h"
#include "core/metrics.h"
#include "data/csv_table.h"
#include "data/generators/census.h"
#include "util/build_info.h"
#include "util/cli.h"
#include "util/random.h"
#include "util/run_context.h"

int main(int argc, char** argv) {
  using namespace kanon;
  const CommandLine cl = CommandLine::Parse(argc, argv);

  if (cl.HasFlag("version")) {
    std::cout << "anonymize_csv " << BuildInfoString() << "\n";
    return 0;
  }

  const StatusOr<long long> k_flag = cl.GetValidatedInt(
      "k", 3, 1, std::numeric_limits<long long>::max());
  if (!k_flag.ok()) {
    std::cerr << "error: " << k_flag.status().message() << "\n";
    return 1;
  }
  const size_t k = static_cast<size_t>(*k_flag);

  const StatusOr<long long> deadline_flag = cl.GetValidatedInt(
      "deadline-ms", 0, 0, std::numeric_limits<long long>::max());
  if (!deadline_flag.ok()) {
    std::cerr << "error: " << deadline_flag.status().message() << "\n";
    return 1;
  }

  std::string algo_name = cl.GetString("algo", "ball_cover");
  if (cl.GetBool("local_search", false)) algo_name += "+local_search";

  Table input = [&] {
    if (cl.GetBool("demo", false) || cl.positional().empty()) {
      Rng rng(1);
      return CensusTable({.num_rows = 40}, &rng);
    }
    StatusOr<Table> loaded = ReadTableCsv(cl.positional()[0]);
    if (!loaded.ok()) {
      std::cerr << "error: " << loaded.status().ToString() << "\n";
      std::exit(2);
    }
    return *std::move(loaded);
  }();

  if (input.num_rows() < k) {
    std::cerr << "error: relation has " << input.num_rows()
              << " rows; cannot " << k << "-anonymize fewer than k rows\n";
    return 2;
  }

  StatusOr<std::unique_ptr<Anonymizer>> algo_or =
      MakeAnonymizerOr(algo_name);
  if (!algo_or.ok()) {
    std::cerr << "error: " << algo_or.status().message() << "\n";
    return 1;
  }
  const std::unique_ptr<Anonymizer> algo = *std::move(algo_or);

  RunContext ctx;
  if (*deadline_flag > 0) {
    ctx.set_deadline_after_millis(static_cast<double>(*deadline_flag));
  }
  const AnonymizationResult result = algo->Run(input, k, &ctx);
  if (result.partition.groups.empty()) {
    // A bare solver hit its deadline/budget before producing anything;
    // --algo=resilient always degrades to a valid partition instead.
    std::cerr << "error: run stopped ("
              << StopReasonName(result.termination)
              << ") before producing a partition; try --algo=resilient\n";
    return 2;
  }
  const Table anonymized = result.MakeSuppressor(input).Apply(input);
  if (!IsKAnonymous(anonymized, k)) {
    std::cerr << "internal error: output not k-anonymous\n";
    return 2;
  }

  std::cerr << "algorithm: " << algo->name() << "\n"
            << "rows: " << input.num_rows()
            << ", attributes: " << input.num_columns() << ", k: " << k
            << "\n"
            << ComputeMetrics(input, result.partition, k).ToString()
            << "\n"
            << "termination: " << StopReasonName(result.termination);
  if (!result.stage.empty()) std::cerr << ", stage: " << result.stage;
  std::cerr << "\ntime: " << result.seconds * 1e3 << " ms\n";

  if (cl.positional().size() >= 2) {
    const Status written = WriteTableCsv(anonymized, cl.positional()[1]);
    if (!written.ok()) {
      std::cerr << "error: " << written.ToString() << "\n";
      return 2;
    }
    std::cerr << "wrote " << cl.positional()[1] << "\n";
  } else {
    std::cout << TableToCsv(anonymized);
  }
  return 0;
}
