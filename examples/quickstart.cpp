// Quickstart: k-anonymize the paper's Section 1 hospital relation.
//
// Builds the 4-row table from the introduction ("Who had an X-ray at
// this hospital yesterday?"), runs the exact optimal suppressor for
// k = 2, and prints the before/after tables plus the objective value —
// the smallest possible number of suppressed entries.
//
// Run:  ./example_quickstart [--k=2] [--algo=exact_dp]

#include <iostream>

#include "algo/registry.h"
#include "core/anonymity.h"
#include "core/metrics.h"
#include "data/generators/medical.h"
#include "util/cli.h"

int main(int argc, char** argv) {
  using namespace kanon;
  const CommandLine cl = CommandLine::Parse(argc, argv);
  const size_t k = static_cast<size_t>(cl.GetInt("k", 2));
  const std::string algo_name = cl.GetString("algo", "exact_dp");

  const Table table = PaperIntroTable();
  std::cout << "Original relation (paper, Section 1):\n\n"
            << table.ToString() << "\n";

  auto algo = MakeAnonymizer(algo_name);
  if (algo == nullptr) {
    std::cerr << "unknown algorithm '" << algo_name << "'; options:";
    for (const auto& name : KnownAnonymizers()) std::cerr << " " << name;
    std::cerr << "\n";
    return 1;
  }

  const AnonymizationResult result = algo->Run(table, k);
  const Table anonymized = result.MakeSuppressor(table).Apply(table);

  std::cout << k << "-anonymized with '" << algo->name() << "' ("
            << result.cost << " entries suppressed):\n\n"
            << anonymized.ToString() << "\n";

  std::cout << "k-anonymity verified: "
            << (IsKAnonymous(anonymized, k) ? "yes" : "NO") << "\n";
  std::cout << "groups: " << result.partition.ToString() << "\n";
  std::cout << "metrics: "
            << ComputeMetrics(table, result.partition, k).ToString()
            << "\n";
  return 0;
}
