// kanond — the k-anonymization daemon: a long-running service speaking
// the newline-delimited line protocol (service/server.h) over
// stdin/stdout. Each `anonymize` line is validated, admitted through
// the bounded job queue, executed on the worker pool inside the
// resilient fallback chain, and answered from the LRU result cache when
// the same (table, algorithm, k) instance was already solved.
//
// Usage:
//   ./kanond [--workers=N] [--queue-capacity=N] [--cache-capacity=N]
//            [--journal=PATH] [--checkpoint-dir=PATH]
//            [--checkpoint-every=N] [--checkpoint-ms=F]
//            [--watchdog-ms=F] [--faults=SPEC] [--once]
//            [--tcp-port=N] [--tcp-max-conns=N] [--tcp-idle-ms=F]
//            [--tcp-drain-ms=F] [--overload-target-ms=F]
//            [--retry-budget-ratio=F] [--brownout=off|auto]
//            [--help] [--version]
//
//   --once suppresses the interactive banner: batch mode for piped
//   scripts (the serving loop itself is identical — read lines until
//   EOF or `shutdown`).
//
//   --tcp-port=N switches the transport from stdin/stdout lines to the
//   binary TCP protocol (net/tcp_server.h): an epoll front end on
//   127.0.0.1:N (0 picks an ephemeral port, announced on stderr as
//   `kanond: tcp listening on 127.0.0.1:PORT`). SIGTERM/SIGINT trigger
//   a graceful drain — stop accepting, deliver every admitted job's
//   response (or a typed cancellation past --tcp-drain-ms), flush the
//   journal, exit 0.
//
//   --journal=PATH arms the crash-consistent job journal: every
//   admitted job is recorded (fsync'd) before it can run, and at
//   startup an existing journal is replayed — jobs that never started
//   are re-run and answered as `ok verb=replay old_id=...` lines on
//   stdout; a job that was on a worker when the previous incarnation
//   died is answered `error verb=replay ... error=interrupted`. A
//   journal corrupt beyond a torn tail aborts startup (exit 2).
//
//   --checkpoint-dir=PATH arms durable solver checkpoints: running jobs
//   periodically snapshot their state there (every --checkpoint-every
//   cadence polls, default 256, and/or every --checkpoint-ms
//   milliseconds), and a journal replay *continues* a started job from
//   its snapshot (`ok verb=replay old_id=... resumed=1`) instead of
//   degrading it to the interrupted error — which remains the typed
//   fallback when the snapshot is missing, stale or corrupt.
//
//   --watchdog-ms=F arms the stall watchdog: a job whose progress
//   counters flat-line for F milliseconds is preempted and answered
//   with the typed watchdog_preempted error.
//
//   --overload-target-ms=F arms the adaptive overload-control plane
//   (service/overload/overload.h) with F as the CoDel queue-delay
//   target: sustained delay above the target sheds arrivals with the
//   typed shed_overload error, jobs whose deadline cannot fit even the
//   optimistic solve estimate are rejected deadline_infeasible at
//   dispatch, and worker retries draw from a pool-wide budget
//   (--retry-budget-ratio=F, tokens refilled as a fraction of
//   successes, default 0.1). --brownout=auto (the default once the
//   plane is armed) additionally lets the health governor rewrite
//   admissible jobs to cheaper sharded/coreset backends under
//   pressure; --brownout=off keeps admission control without
//   degradation. Responses carry `effective=`/`brownout=` when a job
//   was degraded; `stats` reports the overload_* counters and level.
//
//   --version prints build provenance (git hash, build type,
//   sanitizer) and exits; the same token rides in every stats reply.
//
//   --faults=SPEC arms deterministic fault injection (fault/fault.h),
//   e.g. --faults="seed=42 p=0.01 worker.dispatch=0.5" — for chaos
//   drills against a live daemon.
//
// Protocol (one request per line, one response line per request):
//   anonymize algo=<name> k=<int> [deadline_ms=<f>] [budget=<int>]
//             [priority=<int>] [emit=0|1] csv=<inline>|file=<path>
//   stats
//   shutdown
// Inline CSV uses ';' as the record separator:
//   csv=age,zip;30,10001;30,10001
// Responses are `ok ...` / `error code=<CODE> error=<taxonomy> ...`
// key=value lines; errors never stop the serving loop.
//
// Exit codes: 0 clean shutdown/EOF, 1 usage error, 2 unreplayable
// journal.

#include <csignal>
#include <iostream>
#include <limits>
#include <memory>

#include "ckpt/checkpoint.h"
#include "fault/fault.h"
#include "net/tcp_server.h"
#include "service/journal.h"
#include "service/server.h"
#include "util/build_info.h"
#include "util/cli.h"

namespace {

// The signal handler must be async-signal-safe: RequestDrain is a
// relaxed atomic store plus an eventfd write, nothing else.
kanon::NetServer* g_tcp_server = nullptr;

void HandleDrainSignal(int) {
  if (g_tcp_server != nullptr) g_tcp_server->RequestDrain();
}

constexpr char kUsage[] =
    "usage: kanond [--workers=N] [--queue-capacity=N] [--cache-capacity=N]\n"
    "              [--journal=PATH] [--checkpoint-dir=PATH]\n"
    "              [--checkpoint-every=N] [--checkpoint-ms=F]\n"
    "              [--watchdog-ms=F] [--faults=SPEC] [--once]\n"
    "              [--tcp-port=N] [--tcp-max-conns=N] [--tcp-idle-ms=F]\n"
    "              [--tcp-drain-ms=F] [--overload-target-ms=F]\n"
    "              [--retry-budget-ratio=F] [--brownout=off|auto]\n"
    "              [--help] [--version]\n";

}  // namespace

int main(int argc, char** argv) {
  using namespace kanon;
  const CommandLine cl = CommandLine::Parse(argc, argv);

  // A typo'd flag must not silently run with defaults: a daemon started
  // with --watchdog-sm=500 and no watchdog is a misconfiguration that
  // only surfaces during the outage it was meant to contain.
  const std::vector<std::string> unknown = cl.UnknownFlags({
      "workers", "queue-capacity", "cache-capacity", "journal",
      "checkpoint-dir", "checkpoint-every", "checkpoint-ms",
      "watchdog-ms", "faults", "once", "tcp-port", "tcp-max-conns",
      "tcp-idle-ms", "tcp-drain-ms", "overload-target-ms",
      "retry-budget-ratio", "brownout", "help", "version",
  });
  if (!unknown.empty()) {
    for (const std::string& flag : unknown) {
      std::cerr << "kanond: unknown flag --" << flag << "\n";
    }
    std::cerr << kUsage;
    return 1;
  }
  if (cl.GetBool("help", false)) {
    std::cout << kUsage;
    return 0;
  }
  if (cl.GetBool("version", false)) {
    std::cout << "kanond " << BuildInfoString() << "\n";
    return 0;
  }

  ServiceOptions options;
  const struct {
    const char* flag;
    long long min;
    long long fallback;
  } int_flags[] = {
      {"workers", 0, 0},
      {"queue-capacity", 1, 64},
      {"cache-capacity", 0, 64},
      {"checkpoint-every", 1, 256},
  };
  long long values[4];
  for (int i = 0; i < 4; ++i) {
    const StatusOr<long long> flag =
        cl.GetValidatedInt(int_flags[i].flag, int_flags[i].fallback,
                           int_flags[i].min,
                           std::numeric_limits<int>::max());
    if (!flag.ok()) {
      std::cerr << "error: --" << int_flags[i].flag << ": "
                << flag.status().message() << "\n";
      return 1;
    }
    values[i] = *flag;
  }
  options.workers = static_cast<unsigned>(values[0]);
  options.queue_capacity = static_cast<size_t>(values[1]);
  options.cache_capacity = static_cast<size_t>(values[2]);
  options.checkpoint_every_polls = static_cast<uint64_t>(values[3]);
  options.checkpoint_every_ms = cl.GetDouble("checkpoint-ms", 0.0);
  options.watchdog_stall_ms = cl.GetDouble("watchdog-ms", 0.0);
  if (options.checkpoint_every_ms < 0.0 || options.watchdog_stall_ms < 0.0) {
    std::cerr << "error: --checkpoint-ms and --watchdog-ms must be >= 0 "
                 "(0 disarms)\n";
    return 1;
  }

  // Overload plane: --overload-target-ms (or an explicit --brownout)
  // arms it; --brownout=off keeps admission control but pins the
  // governor so no job is ever rewritten.
  const std::string brownout = cl.GetString("brownout", "");
  if (!brownout.empty() && brownout != "off" && brownout != "auto") {
    std::cerr << "error: --brownout must be off or auto\n";
    return 1;
  }
  const double overload_target = cl.GetDouble("overload-target-ms", 0.0);
  const double retry_ratio = cl.GetDouble("retry-budget-ratio", 0.1);
  if (overload_target < 0.0) {
    std::cerr << "error: --overload-target-ms must be >= 0 (0 disarms)\n";
    return 1;
  }
  if (retry_ratio < 0.0 || retry_ratio > 1.0) {
    std::cerr << "error: --retry-budget-ratio must be in [0, 1]\n";
    return 1;
  }
  if (overload_target > 0.0 || !brownout.empty()) {
    options.overload_enabled = true;
    if (overload_target > 0.0) {
      options.overload.codel.target_ms = overload_target;
    }
    options.overload.retry_budget.ratio = retry_ratio;
    options.overload.governor_enabled = brownout != "off";
  }

  const std::string fault_spec = cl.GetString("faults", "");
  if (!fault_spec.empty()) {
    const StatusOr<FaultPlan> plan = ParseFaultPlan(fault_spec);
    if (!plan.ok()) {
      std::cerr << "error: --faults: " << plan.status().message() << "\n";
      return 1;
    }
    FaultRegistry::Instance().Arm(*plan);
  }

  // Checkpoint store bring-up happens before the journal replay is
  // applied: the replay needs the *previous* incarnation's snapshots,
  // and ApplyReplayToService clears the store before resubmitting so
  // this incarnation's ids (restarting at 1) never collide with them.
  std::unique_ptr<CheckpointStore> checkpoints;
  const std::string checkpoint_dir = cl.GetString("checkpoint-dir", "");
  if (!checkpoint_dir.empty()) {
    checkpoints = std::make_unique<CheckpointStore>(checkpoint_dir);
    options.checkpoints = checkpoints.get();
  }

  // Journal bring-up: read the previous incarnation's records, wipe the
  // file, and only then arm a fresh journal — replayed jobs are
  // re-journaled under this incarnation's ids, so old and new records
  // must never share a file.
  const std::string journal_path = cl.GetString("journal", "");
  StatusOr<JournalReplay> replayed = JournalReplay{};
  std::unique_ptr<JobJournal> journal;
  if (!journal_path.empty()) {
    replayed = JobJournal::ReplayFile(journal_path);
    if (!replayed.ok()) {
      std::cerr << "kanond: cannot replay journal: "
                << replayed.status().message() << "\n";
      return 2;
    }
    const Status reset = JobJournal::Reset(journal_path);
    if (!reset.ok()) {
      std::cerr << "kanond: " << reset.message() << "\n";
      return 2;
    }
    journal = std::make_unique<JobJournal>(journal_path);
    const Status open = journal->Open();
    if (!open.ok()) {
      std::cerr << "kanond: " << open.message() << "\n";
      return 2;
    }
    options.observer = journal.get();
  }

  AnonymizationService service(options);
  std::cerr << "kanond: " << BuildInfoString() << "\n";
  if (!journal_path.empty()) {
    ReplayOptions replay_options;
    replay_options.checkpoints = checkpoints.get();
    const JournalReplayReport report = ApplyReplayToService(
        *std::move(replayed), service, replay_options);
    for (const std::string& line : report.lines) {
      std::cout << line << "\n";
    }
    std::cout.flush();
    std::cerr << "kanond: journal replay: resubmitted="
              << report.resubmitted << " resumed=" << report.resumed
              << " resume_degraded=" << report.resume_degraded
              << " interrupted=" << report.interrupted
              << " completed=" << report.completed
              << " torn=" << report.torn_records << "\n";
  }
  if (cl.HasFlag("tcp-port")) {
    const StatusOr<long long> tcp_port =
        cl.GetValidatedInt("tcp-port", 0, 0, 65535);
    const StatusOr<long long> tcp_max_conns =
        cl.GetValidatedInt("tcp-max-conns", 1024, 1, 1 << 20);
    if (!tcp_port.ok() || !tcp_max_conns.ok()) {
      std::cerr << "error: "
                << (tcp_port.ok() ? tcp_max_conns : tcp_port)
                       .status()
                       .message()
                << "\n";
      return 1;
    }
    NetServerOptions net;
    net.port = static_cast<uint16_t>(*tcp_port);
    net.max_connections = static_cast<size_t>(*tcp_max_conns);
    net.idle_timeout_ms = cl.GetDouble("tcp-idle-ms", 0.0);
    net.drain_grace_ms = cl.GetDouble("tcp-drain-ms", 2000.0);
    if (net.idle_timeout_ms < 0.0 || net.drain_grace_ms < 0.0) {
      std::cerr << "error: --tcp-idle-ms and --tcp-drain-ms must be >= 0\n";
      return 1;
    }
    NetServer tcp(service, net);
    const Status started = tcp.Start();
    if (!started.ok()) {
      std::cerr << "kanond: tcp start failed: " << started.ToString()
                << "\n";
      return 1;
    }
    g_tcp_server = &tcp;
    std::signal(SIGTERM, HandleDrainSignal);
    std::signal(SIGINT, HandleDrainSignal);
    std::cerr << "kanond: tcp listening on 127.0.0.1:" << tcp.port()
              << " (workers=" << service.Stats().workers
              << ", queue=" << options.queue_capacity
              << ", max_conns=" << net.max_connections
              << (journal_path.empty() ? "" : ", journal=" + journal_path)
              << ")\n";
    const size_t connections = tcp.Run();
    std::signal(SIGTERM, SIG_DFL);
    std::signal(SIGINT, SIG_DFL);
    g_tcp_server = nullptr;
    // Run() returning means the drain finished: every admitted job's
    // completion was observed. Shutdown flushes the workers + journal.
    service.Shutdown();
    std::cerr << "kanond: drained; served " << connections
              << " connection(s)\n";
    return 0;
  }
  if (!cl.GetBool("once", false)) {
    std::cerr << "kanond serving on stdin (workers="
              << service.Stats().workers
              << ", queue=" << options.queue_capacity
              << ", cache=" << options.cache_capacity
              << (journal_path.empty() ? ""
                                       : ", journal=" + journal_path)
              << (checkpoint_dir.empty()
                      ? ""
                      : ", checkpoints=" + checkpoint_dir)
              << (options.watchdog_stall_ms > 0.0 ? ", watchdog=on" : "")
              << (options.overload_enabled
                      ? (options.overload.governor_enabled
                             ? ", overload=on brownout=auto"
                             : ", overload=on brownout=off")
                      : "")
              << "); verbs: anonymize stats shutdown\n";
  }
  const size_t served = ServeLines(service, std::cin, std::cout);
  std::cerr << "kanond: served " << served << " request(s)\n";
  return 0;
}
