// kanond — the k-anonymization daemon: a long-running service speaking
// the newline-delimited line protocol (service/server.h) over
// stdin/stdout. Each `anonymize` line is validated, admitted through
// the bounded job queue, executed on the worker pool inside the
// resilient fallback chain, and answered from the LRU result cache when
// the same (table, algorithm, k) instance was already solved.
//
// Usage:
//   ./kanond [--workers=N] [--queue-capacity=N] [--cache-capacity=N]
//            [--once]
//
//   --once suppresses the interactive banner: batch mode for piped
//   scripts (the serving loop itself is identical — read lines until
//   EOF or `shutdown`).
//
// Protocol (one request per line, one response line per request):
//   anonymize algo=<name> k=<int> [deadline_ms=<f>] [budget=<int>]
//             [priority=<int>] [emit=0|1] csv=<inline>|file=<path>
//   stats
//   shutdown
// Inline CSV uses ';' as the record separator:
//   csv=age,zip;30,10001;30,10001
// Responses are `ok ...` / `error code=<CODE> error=<taxonomy> ...`
// key=value lines; errors never stop the serving loop.
//
// Exit codes: 0 clean shutdown/EOF, 1 usage error.

#include <iostream>
#include <limits>

#include "service/server.h"
#include "util/cli.h"

int main(int argc, char** argv) {
  using namespace kanon;
  const CommandLine cl = CommandLine::Parse(argc, argv);

  ServiceOptions options;
  const struct {
    const char* flag;
    long long min;
    long long fallback;
  } int_flags[] = {
      {"workers", 0, 0},
      {"queue-capacity", 1, 64},
      {"cache-capacity", 0, 64},
  };
  long long values[3];
  for (int i = 0; i < 3; ++i) {
    const StatusOr<long long> flag =
        cl.GetValidatedInt(int_flags[i].flag, int_flags[i].fallback,
                           int_flags[i].min,
                           std::numeric_limits<int>::max());
    if (!flag.ok()) {
      std::cerr << "error: --" << int_flags[i].flag << ": "
                << flag.status().message() << "\n";
      return 1;
    }
    values[i] = *flag;
  }
  options.workers = static_cast<unsigned>(values[0]);
  options.queue_capacity = static_cast<size_t>(values[1]);
  options.cache_capacity = static_cast<size_t>(values[2]);

  AnonymizationService service(options);
  if (!cl.GetBool("once", false)) {
    std::cerr << "kanond serving on stdin (workers="
              << service.Stats().workers
              << ", queue=" << options.queue_capacity
              << ", cache=" << options.cache_capacity
              << "); verbs: anonymize stats shutdown\n";
  }
  const size_t served = ServeLines(service, std::cin, std::cout);
  std::cerr << "kanond: served " << served << " request(s)\n";
  return 0;
}
