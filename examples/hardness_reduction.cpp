// Walkthrough of the paper's NP-hardness proof (Theorem 3.1) on a
// concrete instance: builds a 3-uniform hypergraph, shows the database
// the reduction constructs, solves both the matching problem and the
// anonymization problem exactly, and demonstrates the cost threshold
// n(m-1) separating YES from NO instances.
//
// Run:  ./example_hardness_reduction [--seed=1]

#include <iostream>

#include "algo/exact_dp.h"
#include "hypergraph/generators.h"
#include "hypergraph/matching.h"
#include "reductions/matching_to_kanon.h"
#include "util/cli.h"
#include "util/random.h"

int main(int argc, char** argv) {
  using namespace kanon;
  const CommandLine cl = CommandLine::Parse(argc, argv);
  Rng rng(static_cast<uint64_t>(cl.GetInt("seed", 1)));

  std::cout << "=== Theorem 3.1: PERFECT MATCHING -> 3-ANONYMITY ===\n\n";

  // YES instance: a hypergraph with a planted perfect matching.
  const Hypergraph yes = PlantedMatchingHypergraph(
      {.num_vertices = 9, .k = 3, .extra_edges = 3}, &rng);
  std::cout << "hypergraph H (YES instance): " << yes.ToString() << "\n";
  const auto matching = FindPerfectMatching(yes);
  std::cout << "perfect matching found: edges";
  for (const uint32_t e : *matching) std::cout << " e" << e;
  std::cout << "\n\n";

  const Table v = BuildKAnonInstance(yes);
  std::cout << "reduction database V (row i = vertex u_i; '0' on "
            << "incident edges, row-unique filler elsewhere):\n\n"
            << v.ToString() << "\n";

  const size_t threshold = KAnonHardnessThreshold(yes);
  std::cout << "cost threshold n(m-1) = " << threshold << "\n";

  ExactDpAnonymizer exact;
  const auto result = exact.Run(v, 3);
  std::cout << "optimal 3-anonymization cost = " << result.cost
            << (result.cost == threshold ? "  (== threshold)" : "")
            << "\n";

  const Table anonymized = result.MakeSuppressor(v).Apply(v);
  std::cout << "\noptimal anonymized view (each row keeps exactly its "
            << "matched edge's '0'):\n\n"
            << anonymized.ToString() << "\n";

  const auto extracted = ExtractMatching(yes, v, result.MakeSuppressor(v));
  std::cout << "matching extracted back from the anonymizer: edges";
  for (const uint32_t e : *extracted) std::cout << " e" << e;
  std::cout << "\n\n";

  // NO instance: vertex 0 is isolated, so no perfect matching exists.
  const Hypergraph no = MatchingFreeHypergraph(9, 3, 6, &rng);
  std::cout << "hypergraph H' (NO instance, vertex 0 isolated): "
            << no.ToString() << "\n";
  const Table v2 = BuildKAnonInstance(no);
  const auto result2 = exact.Run(v2, 3);
  std::cout << "threshold n(m-1) = " << KAnonHardnessThreshold(no)
            << ", optimal cost = " << result2.cost << "  (> threshold: "
            << (result2.cost > KAnonHardnessThreshold(no) ? "yes" : "no")
            << ")\n\n";

  std::cout << "=> deciding 'cost <= n(m-1)?' decides PERFECT MATCHING, "
            << "so optimal k-anonymity is NP-hard for k >= 3.\n";
  return 0;
}
