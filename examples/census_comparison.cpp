// Scenario: a statistics office must choose an anonymization algorithm
// before releasing census microdata. Runs every registered algorithm on
// the same synthetic census extract and prints a side-by-side comparison
// of suppression cost, information-loss metrics and runtime — the
// decision table a practitioner would actually want.
//
// Run:  ./example_census_comparison [--rows=80] [--k=4] [--seed=3]

#include <iomanip>
#include <iostream>

#include "algo/registry.h"
#include "core/bounds.h"
#include "core/distance.h"
#include "core/metrics.h"
#include "data/generators/census.h"
#include "util/cli.h"
#include "util/random.h"

int main(int argc, char** argv) {
  using namespace kanon;
  const CommandLine cl = CommandLine::Parse(argc, argv);
  const uint32_t rows = static_cast<uint32_t>(cl.GetInt("rows", 80));
  const size_t k = static_cast<size_t>(cl.GetInt("k", 4));
  Rng rng(static_cast<uint64_t>(cl.GetInt("seed", 3)));

  const Table census = CensusTable({.num_rows = rows}, &rng);
  std::cout << "Synthetic census extract, first rows:\n\n"
            << census.ToString(8) << "\n";

  const DistanceMatrix dm(census);
  const size_t lower_bound = KnnLowerBound(census, dm, k);
  std::cout << "certified lower bound on OPT (k-NN argument): "
            << lower_bound << " stars\n\n";

  std::cout << std::left << std::setw(28) << "algorithm" << std::right
            << std::setw(8) << "stars" << std::setw(9) << "star%"
            << std::setw(10) << "discern" << std::setw(9) << "groups"
            << std::setw(10) << "time ms" << "\n";
  std::cout << std::string(74, '-') << "\n";

  for (const std::string name :
       {"ball_cover", "ball_cover+local_search", "mondrian",
        "cluster_greedy", "random_partition", "suppress_all"}) {
    auto algo = MakeAnonymizer(name);
    if (algo == nullptr) continue;
    const AnonymizationResult result = algo->Run(census, k);
    const AnonymizationMetrics metrics =
        ComputeMetrics(census, result.partition, k);
    std::cout << std::left << std::setw(28) << name << std::right
              << std::setw(8) << result.cost << std::setw(8)
              << std::fixed << std::setprecision(1)
              << metrics.star_fraction * 100.0 << "%" << std::setw(10)
              << metrics.discernibility << std::setw(9)
              << result.partition.num_groups() << std::setw(10)
              << std::setprecision(2) << result.seconds * 1e3 << "\n";
  }

  std::cout << "\n(lower stars = more data utility at the same privacy "
            << "level k = " << k << ")\n";
  return 0;
}
