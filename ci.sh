#!/usr/bin/env bash
# CI entry point: tier-1 build + tests, then the same suite under
# AddressSanitizer + UBSanitizer (-DKANON_SANITIZE=ON).
#
# Usage: ./ci.sh [--skip-sanitizers]
set -euo pipefail
cd "$(dirname "$0")"

JOBS="$(nproc 2>/dev/null || echo 4)"

echo "=== tier-1: default build ==="
cmake -B build -S . >/dev/null
cmake --build build -j"${JOBS}"
ctest --test-dir build --output-on-failure -j"${JOBS}"

if [[ "${1:-}" == "--skip-sanitizers" ]]; then
  echo "=== sanitizer pass skipped ==="
  exit 0
fi

echo "=== tier-1 under ASan+UBSan ==="
cmake -B build-asan -S . -DKANON_SANITIZE=ON >/dev/null
cmake --build build-asan -j"${JOBS}"
# abort_on_error makes sanitizer findings fail the death tests' parent
# process visibly instead of being swallowed by the fork.
ASAN_OPTIONS="abort_on_error=1" UBSAN_OPTIONS="halt_on_error=1" \
  ctest --test-dir build-asan --output-on-failure -j"${JOBS}"

echo "=== ci.sh: all green ==="
