#!/usr/bin/env bash
# CI entry point: tier-1 build + tests, then the same suite under
# AddressSanitizer + UBSanitizer (-DKANON_SANITIZE=ON).
#
# Usage: ./ci.sh [--skip-sanitizers]
set -euo pipefail
cd "$(dirname "$0")"

JOBS="$(nproc 2>/dev/null || echo 4)"

echo "=== tier-1: default build ==="
cmake -B build -S . >/dev/null
cmake --build build -j"${JOBS}"
ctest --test-dir build --output-on-failure -j"${JOBS}"

echo "=== service smoke: kanond --once ==="
# A scripted session through the daemon binary itself: a cold solve, an
# identical repeat that must be served from the cache, and a malformed
# request that must produce a typed error without killing the loop.
SMOKE_OUT="$(printf '%s\n' \
  'anonymize algo=resilient k=2 csv=age;30;30;31;31' \
  'anonymize algo=resilient k=2 csv=age;30;30;31;31' \
  'anonymize algo=nope k=2 csv=a;1;2' \
  'stats' \
  | ./build/examples/kanond --once)"
echo "${SMOKE_OUT}"
echo "${SMOKE_OUT}" | sed -n 1p | grep -q 'ok verb=anonymize .*cache=miss' \
  || { echo "smoke FAIL: cold request not served" >&2; exit 1; }
echo "${SMOKE_OUT}" | sed -n 2p | grep -q 'ok verb=anonymize .*cache=hit' \
  || { echo "smoke FAIL: repeat not served from cache" >&2; exit 1; }
echo "${SMOKE_OUT}" | sed -n 3p | grep -q 'error .*error=unknown_algorithm' \
  || { echo "smoke FAIL: malformed request not a typed error" >&2; exit 1; }
echo "${SMOKE_OUT}" | sed -n 4p | grep -q 'ok verb=stats .*cache_hits=1' \
  || { echo "smoke FAIL: daemon stopped serving after the error" >&2; exit 1; }

if [[ "${1:-}" == "--skip-sanitizers" ]]; then
  echo "=== sanitizer pass skipped ==="
  exit 0
fi

echo "=== tier-1 under ASan+UBSan ==="
cmake -B build-asan -S . -DKANON_SANITIZE=ON >/dev/null
cmake --build build-asan -j"${JOBS}"
# abort_on_error makes sanitizer findings fail the death tests' parent
# process visibly instead of being swallowed by the fork.
ASAN_OPTIONS="abort_on_error=1" UBSAN_OPTIONS="halt_on_error=1" \
  ctest --test-dir build-asan --output-on-failure -j"${JOBS}"

echo "=== service smoke under ASan ==="
printf '%s\n' \
  'anonymize algo=resilient k=2 csv=age;30;30;31;31' \
  'anonymize algo=resilient k=2 csv=age;30;30;31;31' \
  | ASAN_OPTIONS="abort_on_error=1" ./build-asan/examples/kanond --once \
  | grep -q 'cache=hit' \
  || { echo "smoke FAIL: ASan kanond session" >&2; exit 1; }

echo "=== ci.sh: all green ==="
