#!/usr/bin/env bash
# CI entry point: tier-1 build + tests, chaos schedules and the crash/
# replay drill, then the same suites under ASan+UBSan
# (-DKANON_SANITIZE=address) and the concurrency tests under TSan
# (-DKANON_SANITIZE=thread).
#
# Usage: ./ci.sh [--skip-sanitizers]
set -euo pipefail
cd "$(dirname "$0")"

JOBS="$(nproc 2>/dev/null || echo 4)"

# Chaos sweep: seeded fault-injection schedules against the live
# queue/pool/cache/journal stack (examples/chaos_service.cpp). Each
# invocation also proves seed-reproducibility by running its first seed
# twice. $1 = binary, $2 = base seed, $3 = schedule count.
run_chaos() {
  local scratch
  scratch="$(mktemp -d)"
  "$1" --chaos-seed="$2" --schedules="$3" --jobs=16 --scratch="${scratch}" \
    | tail -3
  rm -rf "${scratch}"
}

# Connection-fault chaos against the live TCP front end
# (examples/chaos_net.cpp): same contract as run_chaos, with the
# workload-fingerprint reproducibility gate built into the binary.
# $1 = binary, $2 = base seed, $3 = schedule count.
run_net_chaos() {
  local scratch
  scratch="$(mktemp -d)"
  "$1" --chaos-seed="$2" --schedules="$3" --sessions=6 \
    --scratch="${scratch}" | tail -3
  rm -rf "${scratch}"
}

# Overload-control chaos (examples/chaos_overload.cpp): seeded
# schedules drilling invariants 11-13 — valid-or-typed under forced
# sheds/brownouts/drained retry budget, bit-identical governor replay,
# and goodput-monotone governor simulation. Reproducibility of the
# first seed is built into the binary. $1 = binary, $2 = base seed,
# $3 = schedule count.
run_overload_chaos() {
  "$1" --chaos-seed="$2" --schedules="$3" --jobs=16 | tail -3
}

# Graceful-drain drill: SIGTERM a TCP kanond while kanon_load is
# hammering it. The daemon must exit 0 with every admitted job
# accounted for, and a journal restart must find *zero* pending jobs
# (drain lost nothing). $1 = kanond binary, $2 = kanon_load binary.
run_tcp_drain_drill() {
  local dir
  dir="$(mktemp -d)"
  "$1" --tcp-port=0 --workers=2 --journal="${dir}/kanond.journal" \
    2>"${dir}/kanond.err" &
  local pid=$!
  for _ in $(seq 1 100); do
    grep -q 'tcp listening' "${dir}/kanond.err" 2>/dev/null && break
    sleep 0.05
  done
  local port
  port="$(grep -o '127.0.0.1:[0-9]*' "${dir}/kanond.err" | cut -d: -f2)"
  [ -n "${port}" ] \
    || { echo "drain drill FAIL: no listening port" >&2; exit 1; }
  "$2" --connections=8 --requests=4000 --port="${port}" \
    --out="${dir}/load.json" >/dev/null 2>&1 &
  local load_pid=$!
  sleep 1
  kill -TERM "${pid}"
  wait "${pid}" \
    || { echo "drain drill FAIL: kanond exited nonzero on SIGTERM" >&2
         exit 1; }
  grep -q 'kanond: drained' "${dir}/kanond.err" \
    || { echo "drain drill FAIL: no drain confirmation" >&2; exit 1; }
  wait "${load_pid}" 2>/dev/null || true
  # Restart on the same journal: a clean drain leaves no pending jobs,
  # so the replay must not resubmit or interrupt anything.
  local replay
  replay="$(printf 'stats\nshutdown\n' \
    | "$1" --once --workers=1 --journal="${dir}/kanond.journal")"
  echo "${replay}" | grep -q 'verb=replay' \
    && { echo "drain drill FAIL: drain left pending jobs in journal" >&2
         exit 1; }
  echo "drain drill: daemon drained under load, journal replay empty"
  rm -rf "${dir}"
}

# TCP crash drill: SIGKILL a TCP kanond mid-load, restart on the same
# journal, and demand the admitted-but-unanswered jobs are *recovered*
# (replayed to an outcome and counted). $1 = kanond, $2 = kanon_load.
run_tcp_crash_drill() {
  local dir
  dir="$(mktemp -d)"
  "$1" --tcp-port=0 --workers=1 --queue-capacity=128 \
    --journal="${dir}/kanond.journal" 2>"${dir}/kanond.err" &
  local pid=$!
  for _ in $(seq 1 100); do
    grep -q 'tcp listening' "${dir}/kanond.err" 2>/dev/null && break
    sleep 0.05
  done
  local port
  port="$(grep -o '127.0.0.1:[0-9]*' "${dir}/kanond.err" | cut -d: -f2)"
  [ -n "${port}" ] \
    || { echo "tcp crash drill FAIL: no listening port" >&2; exit 1; }
  "$2" --connections=8 --requests=4000 --port="${port}" \
    --out="${dir}/load.json" >/dev/null 2>&1 &
  local load_pid=$!
  # Wait until the journal proves jobs were admitted, then pull the rug.
  for _ in $(seq 1 200); do
    grep -q ' admit ' "${dir}/kanond.journal" 2>/dev/null && break
    sleep 0.05
  done
  grep -q ' admit ' "${dir}/kanond.journal" \
    || { echo "tcp crash drill FAIL: no job journaled before kill" >&2
         exit 1; }
  kill -9 "${pid}"
  wait "${pid}" 2>/dev/null || true
  wait "${load_pid}" 2>/dev/null || true
  local replay
  replay="$(printf 'stats\nshutdown\n' \
    | "$1" --once --workers=1 --journal="${dir}/kanond.journal")"
  echo "${replay}" | grep -q 'verb=replay' \
    || { echo "tcp crash drill FAIL: admitted jobs not replayed" >&2
         exit 1; }
  echo "${replay}" | grep -Eq ' journal_replays=[1-9]' \
    || { echo "tcp crash drill FAIL: replays not counted in stats" >&2
         exit 1; }
  echo "tcp crash drill: killed under load, journal recovered admitted jobs"
  rm -rf "${dir}"
}

# A branch_bound instance hard enough to run for seconds: the SIGKILL
# drills kill the daemon mid-solve and must find checkpoints on disk.
HARD_BB_CSV="$(python3 - <<'EOF'
import random
random.seed(11)
rows = [",".join(str(random.randrange(3)) for _ in range(5))
        for _ in range(18)]
print(",".join(f"c{i}" for i in range(5)) + ";" + ";".join(rows))
EOF
)"

# Checkpointed crash drill: start the hard branch_bound job with
# --checkpoint-dir armed, SIGKILL the daemon once the journal records a
# `ckpt` line, restart on the same journal + store, and demand the job
# is *continued* from its snapshot (`resumed=1`) to a valid completion —
# not degraded to the interrupted error. $1 = kanond binary.
run_ckpt_drill() {
  local dir
  dir="$(mktemp -d)"
  ( printf 'anonymize algo=branch_bound k=3 wait=0 csv=%s\n' \
      "${HARD_BB_CSV}"; sleep 60 ) \
    | "$1" --once --workers=1 --journal="${dir}/kanond.journal" \
        --checkpoint-dir="${dir}/ckpt" --checkpoint-every=64 \
        >"${dir}/first.out" 2>"${dir}/first.err" &
  local pid=$!
  for _ in $(seq 1 400); do
    grep -q ' ckpt ' "${dir}/kanond.journal" 2>/dev/null && break
    sleep 0.05
  done
  grep -q ' ckpt ' "${dir}/kanond.journal" \
    || { echo "ckpt drill FAIL: no checkpoint journaled before kill" >&2
         exit 1; }
  kill -9 "${pid}"
  wait "${pid}" 2>/dev/null || true
  local out
  out="$(printf 'stats\nshutdown\n' \
    | "$1" --once --workers=1 --journal="${dir}/kanond.journal" \
        --checkpoint-dir="${dir}/ckpt" --checkpoint-every=64)"
  echo "${out}" | head -2
  echo "${out}" \
    | grep -q 'ok verb=replay old_id=1 resumed=1 .*termination=completed' \
    || { echo "ckpt drill FAIL: killed job not resumed to completion" >&2
         exit 1; }
  echo "${out}" | grep -q ' resumed=1 .*resume_degraded=0 ' \
    || { echo "ckpt drill FAIL: resume not counted in stats" >&2; exit 1; }
  rm -rf "${dir}"
}

echo "=== tier-1: default build ==="
cmake -B build -S . >/dev/null
cmake --build build -j"${JOBS}"
ctest --test-dir build --output-on-failure -j"${JOBS}"

echo "=== service smoke: kanond --once ==="
# A scripted session through the daemon binary itself: a cold solve, an
# identical repeat that must be served from the cache, and a malformed
# request that must produce a typed error without killing the loop.
SMOKE_OUT="$(printf '%s\n' \
  'anonymize algo=resilient k=2 csv=age;30;30;31;31' \
  'anonymize algo=resilient k=2 csv=age;30;30;31;31' \
  'anonymize algo=nope k=2 csv=a;1;2' \
  'stats' \
  | ./build/examples/kanond --once)"
echo "${SMOKE_OUT}"
echo "${SMOKE_OUT}" | sed -n 1p | grep -q 'ok verb=anonymize .*cache=miss' \
  || { echo "smoke FAIL: cold request not served" >&2; exit 1; }
echo "${SMOKE_OUT}" | sed -n 2p | grep -q 'ok verb=anonymize .*cache=hit' \
  || { echo "smoke FAIL: repeat not served from cache" >&2; exit 1; }
echo "${SMOKE_OUT}" | sed -n 3p | grep -q 'error .*error=unknown_algorithm' \
  || { echo "smoke FAIL: malformed request not a typed error" >&2; exit 1; }
echo "${SMOKE_OUT}" | sed -n 4p | grep -q 'ok verb=stats .*cache_hits=1' \
  || { echo "smoke FAIL: daemon stopped serving after the error" >&2; exit 1; }

echo "=== cli smoke: unknown flag is a usage error ==="
# A typo'd flag must exit nonzero with a usage message, not run a
# daemon silently misconfigured.
if ./build/examples/kanond --workres=4 >/dev/null 2>"${TMPDIR:-/tmp}/kanond_flag.err"; then
  echo "smoke FAIL: kanond accepted an unknown flag" >&2; exit 1
fi
grep -q 'unknown flag --workres' "${TMPDIR:-/tmp}/kanond_flag.err" \
  || { echo "smoke FAIL: no unknown-flag diagnostic" >&2; exit 1; }
grep -q 'usage: kanond' "${TMPDIR:-/tmp}/kanond_flag.err" \
  || { echo "smoke FAIL: no usage message on unknown flag" >&2; exit 1; }
rm -f "${TMPDIR:-/tmp}/kanond_flag.err"

echo "=== robustness smoke: injected worker fault + stats counters ==="
# A deterministic first:1 dispatch fault kills the worker on its first
# attempt; the retry must answer the request anyway, and the stats line
# must surface every robustness counter.
FAULT_OUT="$(printf '%s\n' \
  'anonymize algo=resilient k=2 csv=age;30;30;31;31' \
  'stats' \
  | ./build/examples/kanond --once --workers=1 \
      --faults='seed=7 worker.dispatch=first:1')"
echo "${FAULT_OUT}"
echo "${FAULT_OUT}" | sed -n 1p | grep -q 'ok verb=anonymize' \
  || { echo "smoke FAIL: faulted request not answered" >&2; exit 1; }
echo "${FAULT_OUT}" | sed -n 2p | grep -q ' retries=1 ' \
  || { echo "smoke FAIL: retry not counted in stats" >&2; exit 1; }
for key in shed= retries_exhausted= journal_replays= breakers= \
           cache_rejected=; do
  echo "${FAULT_OUT}" | sed -n 2p | grep -q " ${key}" \
    || { echo "smoke FAIL: stats missing ${key}" >&2; exit 1; }
done

echo "=== crash drill: SIGKILL mid-job, replay from --journal ==="
# Two fire-and-forget jobs on a single worker: a hard exact_dp instance
# (22 distinct rows — minutes of DP) that the worker starts, and an easy
# one that stays queued. SIGKILL the daemon once the journal shows the
# hard job started; the restarted daemon must answer the queued job from
# the journal and mark the started one with the typed interrupted error.
CRASH_DIR="$(mktemp -d)"
CRASH_JOURNAL="${CRASH_DIR}/kanond.journal"
HARD_CSV="a$(for i in $(seq 0 21); do printf ';r%d' "${i}"; done)"
( printf '%s\n' \
    "anonymize algo=exact_dp k=2 wait=0 csv=${HARD_CSV}" \
    'anonymize algo=resilient k=2 wait=0 csv=b;1;1;2;2'; \
  sleep 15 ) \
  | ./build/examples/kanond --once --workers=1 \
      --journal="${CRASH_JOURNAL}" \
      >"${CRASH_DIR}/first.out" 2>"${CRASH_DIR}/first.err" &
KANOND_PID=$!
for _ in $(seq 1 200); do
  grep -q ' start ' "${CRASH_JOURNAL}" 2>/dev/null && break
  sleep 0.05
done
grep -q ' start ' "${CRASH_JOURNAL}" \
  || { echo "crash drill FAIL: hard job never started" >&2; exit 1; }
kill -9 "${KANOND_PID}"
wait "${KANOND_PID}" 2>/dev/null || true
REPLAY_OUT="$(printf 'stats\nshutdown\n' \
  | ./build/examples/kanond --once --workers=1 \
      --journal="${CRASH_JOURNAL}")"
echo "${REPLAY_OUT}"
echo "${REPLAY_OUT}" | grep -q 'error verb=replay .*error=interrupted' \
  || { echo "crash drill FAIL: started job not marked interrupted" >&2
       exit 1; }
echo "${REPLAY_OUT}" | grep -q 'ok verb=replay old_id=' \
  || { echo "crash drill FAIL: queued job not replayed" >&2; exit 1; }
echo "${REPLAY_OUT}" | grep -q ' journal_replays=2 ' \
  || { echo "crash drill FAIL: replays not counted in stats" >&2; exit 1; }
rm -rf "${CRASH_DIR}"

echo "=== crash drill: SIGKILL with checkpointing armed, resume ==="
run_ckpt_drill ./build/examples/kanond

echo "=== chaos: 100 seeded schedules (default build) ==="
run_chaos ./build/examples/chaos_service 1000 100

echo "=== net chaos: 100 connection-fault schedules (default build) ==="
run_net_chaos ./build/examples/chaos_net 1000 100

echo "=== overload chaos: 100 seeded schedules (default build) ==="
run_overload_chaos ./build/examples/chaos_overload 1000 100

echo "=== tcp drain drill: SIGTERM under load loses nothing ==="
run_tcp_drain_drill ./build/examples/kanond ./build/examples/kanon_load

echo "=== tcp crash drill: SIGKILL under load, journal recovers ==="
run_tcp_crash_drill ./build/examples/kanond ./build/examples/kanon_load

echo "=== perf smoke: TCP serving throughput vs committed baseline ==="
# The closed-loop load harness against the in-process stack. The gate
# is deliberately loose (4x) — shared-runner noise — but catches a
# serializing regression in the event loop, and requires a clean
# protocol ledger: every request answered, zero protocol errors.
./build/examples/kanon_load --connections=16 --requests=400 \
  --out=BENCH_service.json >/dev/null
python3 - <<'EOF'
import json

with open("BENCH_service.json") as f:
    run = json.load(f)
with open("bench/BENCH_service_baseline.json") as f:
    baseline = json.load(f)

print(f"throughput {run['throughput_rps']:.1f} rps "
      f"(baseline {baseline['throughput_rps']:.1f}), "
      f"p50 {run['latency_ms']['p50']:.1f} ms, "
      f"p99 {run['latency_ms']['p99']:.1f} ms, "
      f"shed {run['shed']}")
assert run["protocol_errors"] == 0, "protocol errors under load"
assert run["transport_errors"] == 0, "transport errors under load"
assert run["ok"] + run["typed_errors"] + run["shed"] == run["requests"], (
    "request ledger does not reconcile")
assert run["throughput_rps"] >= baseline["throughput_rps"] / 4, (
    f"TCP throughput regressed: {run['throughput_rps']:.1f} rps vs "
    f"baseline {baseline['throughput_rps']:.1f} (>4x)")
EOF

echo "=== overload goodput gate: open-loop brownout vs committed baseline ==="
# Open-loop Poisson arrivals push the in-process service past
# saturation while the overload plane (CoDel admission + brownout
# ladder) defends goodput: answers delivered inside the deadline. The
# gate is loose (4x, shared-runner noise) but catches the plane
# silently stopping to degrade — goodput under overload collapses
# without it. The ledger must stay clean: every launched request is
# answered ok or typed, zero protocol errors.
./build/examples/kanon_load --connections=16 --requests=300 \
  --target-rps=400 --deadline-ms=500 --overload-target-ms=25 \
  --brownout=auto --out=BENCH_overload.json >/dev/null
python3 - <<'EOF'
import json

with open("BENCH_overload.json") as f:
    run = json.load(f)
with open("bench/BENCH_overload_baseline.json") as f:
    baseline = json.load(f)

print(f"offered {run['offered_rps']:.0f} rps: "
      f"goodput {run['goodput_rps']:.1f} rps "
      f"(baseline {baseline['goodput_rps']:.1f}), "
      f"good {run['good']}/{run['requests']}, shed {run['shed']}, "
      f"browned_out {run['browned_out']}, "
      f"p99 {run['latency_ms']['p99']:.1f} ms")
assert run["mode"] == "open_loop", "expected an open-loop run"
assert run["protocol_errors"] == 0, "protocol errors under overload"
assert run["transport_errors"] == 0, "transport errors under overload"
answered = (run["ok"] + run["typed_errors"] + run["shed"]
            + run["deadline_infeasible"])
assert answered == run["requests"], (
    "overload request ledger does not reconcile")
assert run["good"] > 0, "no request finished inside its deadline"
assert run["goodput_rps"] >= baseline["goodput_rps"] / 4, (
    f"goodput under overload regressed: {run['goodput_rps']:.1f} rps vs "
    f"baseline {baseline['goodput_rps']:.1f} (>4x)")
EOF

echo "=== perf smoke: tiled distance build vs scalar seed ==="
# The columnar data plane's headline win: the tiled parallel matrix
# fill must beat the seed's serial row-major double loop at n = 2048.
# The raw google-benchmark numbers land in BENCH_distance.json.
./build/bench/bench_micro_distance \
  --benchmark_filter='DistanceMatrixBuild' \
  --benchmark_out=BENCH_distance.json --benchmark_out_format=json \
  >/dev/null
python3 - <<'EOF'
import json

def load(path):
    with open(path) as f:
        return {b["name"]: b for b in json.load(f)["benchmarks"]
                if b.get("run_type") == "iteration"}

runs = load("BENCH_distance.json")
scalar = runs["BM_DistanceMatrixBuildScalarSeed/2048"]["real_time"]
tiled = runs["BM_DistanceMatrixBuildTiled/2048"]["real_time"]
print(f"n=2048: scalar seed {scalar:.1f} ms, tiled {tiled:.1f} ms "
      f"({scalar / tiled:.2f}x)")
assert tiled < scalar, "tiled distance build no faster than scalar seed"

# Regression gate against the committed baseline: the tiled build may
# drift up to 25% (shared-runner noise) before CI goes red.
baseline = load("bench/BENCH_distance_baseline.json")
ref = baseline["BM_DistanceMatrixBuildTiled/2048"]["real_time"]
print(f"n=2048: tiled baseline {ref:.1f} ms, now {tiled:.1f} ms "
      f"({tiled / ref:.2f}x of baseline)")
assert tiled <= 1.25 * ref, (
    f"tiled distance build regressed: {tiled:.1f} ms vs "
    f"baseline {ref:.1f} ms (>25%)")
EOF

echo "=== coreset quality gate: sample-solve-assign gap vs direct ==="
# E16 at n = 2048: the coreset pipeline (sample at the default rate,
# solve the weighted coreset, assign the full table) must stay within
# 1.5x of the direct solver's cost, and every partition in the rate
# sweep must be a valid k-anonymous partition of the FULL table. The
# run is seeded end to end, so the gap is deterministic, not noise.
./build/bench/exp_e16_coreset --n=2048 --k=5 --out=BENCH_coreset.json \
  >/dev/null
python3 - <<'EOF'
import json

with open("BENCH_coreset.json") as f:
    run = json.load(f)

print(f"n={run['n']} k={run['k']} inner={run['inner']}: "
      f"direct cost {run['direct_cost']}, "
      f"default-rate gap {run['default_gap']:.3f}x")
for point in run["sweep"]:
    print(f"  rate {point['rate']:.3f}: cost {point['cost']}, "
          f"gap {point['gap']:.3f}x")
assert run["all_valid"], "coreset sweep emitted an invalid partition"
assert run["default_gap"] <= 1.5, (
    f"coreset cost gap regressed: {run['default_gap']:.3f}x vs "
    "direct (gate 1.5x)")
for shape in run["shapes"]:
    print(f"  shape {shape['shape']}: rows {shape['rows']}, "
          f"gap {shape['gap']:.3f}x, "
          f"valid {shape['valid']}")
assert run["shapes_valid"], (
    "coreset shape sweep emitted an invalid partition")
EOF

echo "=== shard speedup gate: plan/solve/merge vs direct solve ==="
# E17 at n = 65536: the shard pipeline (median-cut plan, per-shard inner
# solve, merge-repair) must beat the unsharded inner on wall-clock —
# MDAV is superlinear, so S solves of n/S rows win even run serially —
# and stay within 1.5x of its suppression cost. Seeded end to end.
./build/bench/exp_e17_shard --n=65536 --k=5 --shards=8 \
  --out=BENCH_shard.json >/dev/null
python3 - <<'EOF'
import json

with open("BENCH_shard.json") as f:
    run = json.load(f)

print(f"n={run['n']} k={run['k']} inner={run['inner']} "
      f"shards={run['shards']}: direct {run['direct_seconds']:.2f}s "
      f"cost {run['direct_cost']}, sharded {run['sharded_seconds']:.2f}s "
      f"cost {run['sharded_cost']} -> speedup {run['speedup']:.2f}x, "
      f"gap {run['gap']:.3f}x")
assert run["valid"], "sharded pipeline emitted an invalid partition"
assert run["sharded_seconds"] < run["direct_seconds"], (
    f"sharded solve ({run['sharded_seconds']:.2f}s) did not beat the "
    f"direct solve ({run['direct_seconds']:.2f}s)")
assert run["gap"] <= 1.5, (
    f"shard cost gap regressed: {run['gap']:.3f}x vs direct (gate 1.5x)")
EOF

if [[ "${1:-}" == "--skip-sanitizers" ]]; then
  echo "=== sanitizer pass skipped ==="
  exit 0
fi

echo "=== tier-1 under ASan+UBSan ==="
cmake -B build-asan -S . -DKANON_SANITIZE=address >/dev/null
cmake --build build-asan -j"${JOBS}"
# abort_on_error makes sanitizer findings fail the death tests' parent
# process visibly instead of being swallowed by the fork.
ASAN_OPTIONS="abort_on_error=1" UBSAN_OPTIONS="halt_on_error=1" \
  ctest --test-dir build-asan --output-on-failure -j"${JOBS}"

echo "=== service smoke under ASan ==="
printf '%s\n' \
  'anonymize algo=resilient k=2 csv=age;30;30;31;31' \
  'anonymize algo=resilient k=2 csv=age;30;30;31;31' \
  | ASAN_OPTIONS="abort_on_error=1" ./build-asan/examples/kanond --once \
  | grep -q 'cache=hit' \
  || { echo "smoke FAIL: ASan kanond session" >&2; exit 1; }

echo "=== crash drill under ASan: SIGKILL with checkpointing armed ==="
ASAN_OPTIONS="abort_on_error=1" UBSAN_OPTIONS="halt_on_error=1" \
  run_ckpt_drill ./build-asan/examples/kanond

echo "=== chaos: 100 seeded schedules under ASan ==="
ASAN_OPTIONS="abort_on_error=1" UBSAN_OPTIONS="halt_on_error=1" \
  run_chaos ./build-asan/examples/chaos_service 2000 100

echo "=== net chaos: 100 connection-fault schedules under ASan ==="
ASAN_OPTIONS="abort_on_error=1" UBSAN_OPTIONS="halt_on_error=1" \
  run_net_chaos ./build-asan/examples/chaos_net 2000 100

echo "=== overload chaos: 100 seeded schedules under ASan ==="
ASAN_OPTIONS="abort_on_error=1" UBSAN_OPTIONS="halt_on_error=1" \
  run_overload_chaos ./build-asan/examples/chaos_overload 2000 100

echo "=== concurrency tests under TSan ==="
# The service stack is where threads actually interleave (queue, worker
# pool, breakers, journal, cancellation) — run those suites plus the
# parallel-utility tests under -fsanitize=thread.
cmake -B build-tsan -S . -DKANON_SANITIZE=thread >/dev/null
cmake --build build-tsan -j"${JOBS}"
TSAN_OPTIONS="halt_on_error=1" \
  ctest --test-dir build-tsan --output-on-failure -j"${JOBS}" \
    -R 'QueueTest|WorkerPoolTest|CancelRaceTest|ServerTest|ServerFuzzTest|BreakerTest|StageBreakerTest|JournalTest|JournalCheckpoint|WatchdogTest|WatchdogPoolTest|CheckpointStoreTest|FaultRegistryTest|ChaosTest|Parallel|DataPlaneEquivalenceTest|DistanceOracleTest|GroupStatsTest|PackedTableTest|TcpServerTest|NetChaosTest|FrameEnvelope|NetCodec|FrameFuzz|CoresetSamplerTest|CoresetAssignTest|CoresetAnonymizerTest|WeightedGroupStatsTest|ShardPlanTest|ShardMergeTest|ShardedAnonymizerTest|SolveTimeEstimatorTest|CoDelAdmissionTest|RetryBudgetTest|HealthGovernorTest|OverloadControlTest|OverloadIntegrationTest'

echo "=== chaos: 100 seeded schedules under TSan ==="
TSAN_OPTIONS="halt_on_error=1" \
  run_chaos ./build-tsan/examples/chaos_service 3000 100

echo "=== net chaos: 100 connection-fault schedules under TSan ==="
TSAN_OPTIONS="halt_on_error=1" \
  run_net_chaos ./build-tsan/examples/chaos_net 3000 100

echo "=== overload chaos: 100 seeded schedules under TSan ==="
TSAN_OPTIONS="halt_on_error=1" \
  run_overload_chaos ./build-tsan/examples/chaos_overload 3000 100

echo "=== ci.sh: all green ==="
